"""Tests for the workload base machinery (generator module)."""

import pytest

from repro.common.errors import DejaViewError
from repro.common.units import ms, seconds
from repro.desktop.dejaview import RecordingConfig
from repro.workloads.generator import (
    ScenarioRun,
    Workload,
    baseline_config,
    register,
)


class _TickingWorkload(Workload):
    name = "_ticking"
    default_units = 5

    def __init__(self, unit_cost_us=ms(100)):
        self.unit_cost_us = unit_cost_us
        self.units_run = 0
        self.setup_calls = 0
        self.teardown_calls = 0

    def setup(self, run):
        self.setup_calls += 1
        run.app = run.session.launch("ticker")

    def unit(self, run, index):
        self.units_run += 1
        run.session.clock.advance_us(self.unit_cost_us)
        return {}

    def teardown(self, run):
        self.teardown_calls += 1


class TestWorkloadRun:
    def test_lifecycle_hooks_called(self):
        workload = _TickingWorkload()
        run = workload.run(recording=baseline_config())
        assert workload.setup_calls == 1
        assert workload.teardown_calls == 1
        assert workload.units_run == 5

    def test_units_override(self):
        workload = _TickingWorkload()
        run = workload.run(recording=baseline_config(), units=2)
        assert workload.units_run == 2
        assert run.units == 2

    def test_duration_measured_after_setup(self):
        workload = _TickingWorkload(unit_cost_us=ms(100))
        run = workload.run(recording=baseline_config())
        # 5 units x 100 ms; setup costs excluded.
        assert ms(500) <= run.duration_us < ms(600)

    def test_unnamed_workload_rejected(self):
        class Nameless(Workload):
            def unit(self, run, index):
                return {}

        with pytest.raises(DejaViewError):
            Nameless().run()

    def test_paced_workload_idles_to_deadline(self):
        workload = _TickingWorkload(unit_cost_us=ms(10))
        workload.pace_us = ms(200)
        run = workload.run(recording=baseline_config(), units=4)
        assert run.overran_units == 0
        assert run.duration_us >= 4 * ms(200)

    def test_paced_workload_detects_overruns(self):
        workload = _TickingWorkload(unit_cost_us=ms(500))
        workload.pace_us = ms(200)
        run = workload.run(recording=baseline_config(), units=4)
        assert run.overran_units == 4

    def test_default_recording_used_when_none(self):
        class PolicyWorkload(_TickingWorkload):
            name = "_policy_ticking"

            def default_recording(self):
                return RecordingConfig(use_policy=True)

        workload = PolicyWorkload()
        run = workload.run()
        assert run.dejaview.policy is not None

    def test_explicit_recording_overrides_default(self):
        workload = _TickingWorkload()
        run = workload.run(recording=baseline_config())
        assert run.dejaview.engine is None
        assert run.dejaview.recorder is None

    def test_storage_growth_rates_keys(self):
        workload = _TickingWorkload()
        run = workload.run()
        rates = run.storage_growth_rates()
        assert set(rates) == {
            "display", "index", "checkpoint", "checkpoint_compressed",
            "fs", "fs_total",
        }
        assert all(v >= 0 for v in rates.values())

    def test_register_decorator(self):
        from repro.workloads.generator import SCENARIOS

        @register
        class Extra(_TickingWorkload):
            name = "_extra_registered"

        try:
            assert SCENARIOS["_extra_registered"] is Extra
        finally:
            del SCENARIOS["_extra_registered"]
