"""Deterministic execution replay: framing, oracle, and mutation tests.

Four layers:

* **Framing** — event-log round trips through the v2 CRC-framed TLV
  codec, torn tails are tolerated on read and truncated by
  ``EventLog.recover`` / ``EventLog.resume``.
* **Golden fixture** — ``tests/data/replay_log_v1.bin`` pins the on-disk
  format (like the ``ckpt_v2``/``ckpt_v3`` goldens): the committed bytes
  must parse forever and today's writer must still produce them.
* **Oracle** — a short recorded scenario replays clean, in full and from
  every checkpoint anchor; recording on/off leaves the session
  bit-identical (taps live outside the cost model).
* **Mutation** — flipping one logged event must produce a divergence
  report naming exactly that sequence number and site; this is the
  proof that the oracle can actually localize a determinism bug.
"""

import io
import os
import random

import pytest

from repro.common.faults import FaultPlan, InjectedCrash
from repro.replay import (
    EV_ANCHOR,
    EV_BEGIN,
    EV_CLOCK,
    EV_END,
    EV_RNG,
    NULL_TAP,
    EventLog,
    RecordingTap,
    ReplayError,
    anchor_ids,
    assert_replays_clean,
    prepare_events,
    read_events,
    record_scenario,
    replay,
    write_events,
)

from tests.faulthelpers import (
    assert_recovered_run_replays,
    build_session,
    drive,
    summarize,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN = "replay_log_v1.bin"


def _fixture(name):
    with open(os.path.join(DATA_DIR, name), "rb") as handle:
        return handle.read()


def golden_log():
    """A small deterministic log touching every event type the format
    defines (regenerate the fixture by writing these bytes).  The clock
    batch of 4 exercises both a full-batch flush and a partial batch
    flushed by the next non-clock event."""
    tap = RecordingTap(meta={"scenario": "golden", "units": 2,
                             "name": "gold"}, clock_batch=4)
    now = 0
    for delta in (100, 250, 50, 600):  # full batch -> one EV_CLOCK
        now += delta
        tap.clock(delta, now)
    tap.signal(3, 19, now, True)
    tap.socket("web", "tcp", "10.0.0.1:3000", "93.184.216.34:80", False)
    tap.sched("gold", 0, flags=["display"])
    tap.rng("web", "page", 0x12345678, 4096)
    tap.input_event("key", {"app": "editor", "text": "hi", "combo": None})
    now += 40
    tap.clock(40, now)  # partial batch, flushed by the anchor below
    tap.anchor(1, now, "a" * 40, "b" * 40)
    tap.close(now)
    return tap.getvalue()


class TestEventLogFraming:
    def _random_events(self, seed, count=40):
        rng = random.Random(seed)
        log = EventLog()
        expected = []
        for index in range(count):
            etype = rng.choice([EV_CLOCK, EV_RNG, EV_ANCHOR])
            data = {"k": rng.randrange(1 << 30), "index": index,
                    "tag": "t%d" % rng.randrange(9)}
            expected.append((index, etype, dict(data)))
            log.append(etype, data)
        return log, expected

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_round_trip(self, seed):
        log, expected = self._random_events(seed)
        events, torn = read_events(log.getvalue())
        assert torn == 0
        assert [(e.seq, e.etype, e.data) for e in events] == expected
        # Re-serializing the decoded events is byte-identical: the
        # payload encoding is canonical (sorted keys).
        assert write_events(events).getvalue() == log.getvalue()

    def test_torn_tail_tolerated_on_read(self):
        log, expected = self._random_events(21, count=10)
        clean = log.getvalue()
        events, torn = read_events(clean + b"\x07garbage-torn-tail")
        assert torn == len(b"\x07garbage-torn-tail")
        assert len(events) == len(expected)

    def test_recover_truncates_and_rewinds_seq(self):
        log, _ = self._random_events(31, count=6)
        clean_len = log.bytes_written
        # Die mid-append, as an injected crash at replay.log.append does.
        log._writer.write_torn(EV_RNG, b"[6,{\"partial\":")
        report = log.recover()
        assert report["torn_bytes_dropped"] > 0
        assert report["events"] == 6
        assert log.bytes_written == clean_len
        assert log.next_seq == 6
        log.append(EV_RNG, {"after": "recover"})
        events, torn = read_events(log.getvalue())
        assert torn == 0
        assert [e.seq for e in events] == list(range(7))

    def test_resume_reopens_torn_stream(self):
        log, _ = self._random_events(41, count=5)
        log._writer.write_torn(EV_RNG, b"[5,{\"parti")
        torn_bytes = log.getvalue()
        reopened, dropped, count = EventLog.resume(io.BytesIO(torn_bytes))
        assert dropped > 0
        assert count == 5
        reopened.append(EV_RNG, {"resumed": True})
        events, torn = read_events(reopened.getvalue())
        assert torn == 0
        assert [e.seq for e in events] == list(range(6))
        assert events[-1].data == {"resumed": True}

    def test_crash_at_append_site_tears_the_tail(self):
        plan = FaultPlan()
        plan.add("replay.log.append", mode="crash", after=4)
        log = EventLog(faults=plan)
        with pytest.raises(InjectedCrash):
            for index in range(10):
                log.append(EV_RNG, {"index": index})
        events, torn = read_events(log.getvalue())
        assert torn > 0  # header + partial payload, no checksum
        assert len(events) == 3
        report = log.recover()
        assert report["torn_bytes_dropped"] == torn
        assert read_events(log.getvalue())[1] == 0


class TestGoldenFixture:
    """Committed on-disk blob: the format must stay readable forever."""

    def test_fixture_matches_current_writer(self):
        assert golden_log() == _fixture(GOLDEN)

    def test_fixture_parses(self):
        meta, events, torn, stopped = prepare_events(_fixture(GOLDEN))
        assert torn == 0 and not stopped
        assert meta["scenario"] == "golden"
        assert meta["clock_batch"] == 4
        assert [e.type_name for e in events] == [
            "clock", "signal", "socket", "sched", "rng", "input",
            "clock", "anchor", "end"]
        assert [e.seq for e in events] == list(range(1, 10))
        anchor = events[-2]
        assert anchor.data["checkpoint_id"] == 1
        assert anchor.data["framebuffer_sha1"] == "a" * 40

    def test_fixture_reserializes_byte_identical(self):
        data = _fixture(GOLDEN)
        events, _ = read_events(data)
        assert events[0].etype == EV_BEGIN
        assert write_events(events).getvalue() == data


@pytest.fixture(scope="module")
def recorded_web():
    """One short clean scenario recording shared by the oracle tests."""
    recorded = record_scenario("web", units=4)
    assert recorded.crashed is None
    return recorded.log_bytes


class TestReplayOracle:
    def test_full_replay_is_clean(self, recorded_web):
        report = assert_replays_clean(recorded_web)
        assert report.events_verified == report.events_total > 0
        assert report.anchors_verified == report.anchors_total >= 1
        assert not report.stopped_at_recover
        assert not report.log_exhausted

    def test_replay_from_every_anchor(self, recorded_web):
        anchors = anchor_ids(recorded_web)
        assert anchors, "short web run anchored no checkpoints"
        for checkpoint_id in anchors:
            report = assert_replays_clean(recorded_web,
                                          from_checkpoint=checkpoint_id)
            assert report.from_checkpoint == checkpoint_id
            assert report.events_verified == report.events_total > 0
            assert report.anchors_verified >= 1

    def test_unknown_anchor_raises_with_catalog(self, recorded_web):
        with pytest.raises(ReplayError) as excinfo:
            replay(recorded_web, from_checkpoint=999)
        message = str(excinfo.value)
        assert "999" in message
        for checkpoint_id in anchor_ids(recorded_web):
            assert str(checkpoint_id) in message

    def test_crash_truncated_prefix_replays(self):
        plan = FaultPlan(seed=5)
        plan.add("replay.log.append", mode="crash", after=100)
        holder = {}
        with pytest.raises(InjectedCrash):
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview)
        session, dejaview = holder["session"], holder["dejaview"]
        _, torn_before = read_events(session.replay.getvalue())
        assert torn_before > 0
        recovery = dejaview.recover()
        assert recovery["replay_log"]["torn_bytes_dropped"] == torn_before
        report = assert_recovered_run_replays(session, plan)
        assert report.stopped_at_recover
        assert report.replay_crashed
        assert report.crash_site == "replay.log.append"


class TestMutationPinpointsDivergence:
    """Seeded single-event corruption: the report must name the exact
    first bad event, not just "diverged"."""

    def _mutate(self, data, seed, etype, field, flip):
        events, _ = read_events(data)
        rng = random.Random(seed)
        victim = rng.choice([e for e in events if e.etype == etype])
        victim.data[field] = flip(victim.data[field])
        return write_events(events).getvalue(), victim

    def test_flipped_rng_draw(self, recorded_web):
        mutated, victim = self._mutate(recorded_web, 7, EV_RNG, "crc",
                                       lambda crc: crc ^ 1)
        report = replay(mutated)
        assert not report.ok
        divergence = report.divergence
        assert divergence.seq == victim.seq
        assert divergence.site == "rng"
        assert "seq %d" % victim.seq in divergence.describe()

    def test_flipped_anchor_fingerprint(self, recorded_web):
        mutated, victim = self._mutate(
            recorded_web, 9, EV_ANCHOR, "framebuffer_sha1",
            lambda sha: ("f" if sha[0] != "f" else "0") + sha[1:])
        report = replay(mutated)
        assert not report.ok
        assert report.divergence.seq == victim.seq
        assert report.divergence.site == "anchor"

    def test_flipped_clock_batch(self, recorded_web):
        mutated, victim = self._mutate(recorded_web, 13, EV_CLOCK, "crc",
                                       lambda crc: crc ^ 0x80)
        report = replay(mutated)
        assert not report.ok
        assert report.divergence.seq == victim.seq
        assert report.divergence.site == "clock"


class TestRecordingTransparency:
    """Recording on or off must not perturb the session: taps never
    charge the virtual clock, so the recorded facts are bit-identical."""

    def test_tap_on_off_bit_identical(self):
        tapped_session, tapped_dv = build_session()
        drive(tapped_session, tapped_dv, units=4)
        bare_session, bare_dv = build_session(replay_tap=NULL_TAP)
        drive(bare_session, bare_dv, units=4)

        assert tapped_session.replay.active
        assert not bare_session.replay.active
        assert summarize(tapped_session, tapped_dv) == \
            summarize(bare_session, bare_dv)
        assert tapped_session.clock.now_us == bare_session.clock.now_us
        assert tapped_session.driver.framebuffer.checksum() == \
            bare_session.driver.framebuffer.checksum()
        last = tapped_dv.engine.history[-1].checkpoint_id
        assert tapped_dv.storage.blob_fingerprint(last) == \
            bare_dv.storage.blob_fingerprint(last)

    def test_end_event_carries_final_clock(self, recorded_web):
        _, events, _, _ = prepare_events(recorded_web)
        assert events[-1].etype == EV_END
        assert events[-1].data["clock_us"] > 0
