"""Tests for the THINC video primitive (VideoFrameCmd)."""

import numpy as np
import pytest

from repro.common.errors import DisplayError
from repro.display.commands import Region, VideoFrameCmd
from repro.display.framebuffer import Framebuffer
from repro.display.protocol import decode_command, encode_command


def _frame(w=16, h=12, seed=0):
    rng = np.random.default_rng(seed)
    luma = rng.integers(0, 256, size=(h, w), dtype=np.uint8)
    return VideoFrameCmd(Region(0, 0, w, h), luma)


class TestVideoFrameCmd:
    def test_apply_expands_luma_to_gray(self):
        fb = Framebuffer(16, 12)
        luma = np.full((12, 16), 0x7F, dtype=np.uint8)
        VideoFrameCmd(Region(0, 0, 16, 12), luma).apply(fb)
        assert int(fb.pixels[0, 0]) == 0x7F7F7F

    def test_payload_is_12_bits_per_pixel(self):
        """YUV 4:2:0: 1 byte luma + 0.5 byte chroma per pixel — the reason
        video recording costs ~4 MB/s rather than raw 32-bpp rates."""
        cmd = _frame(32, 32)
        region_header = 16
        assert cmd.payload_size == region_header + 32 * 32 * 3 // 2

    def test_roundtrip(self):
        cmd = _frame(seed=3)
        decoded = VideoFrameCmd.decode_payload(cmd.encode_payload())
        assert decoded == cmd
        assert np.array_equal(decoded.luma, cmd.luma)

    def test_protocol_roundtrip_with_timestamp(self):
        cmd = _frame(seed=5)
        tag, payload = encode_command(cmd, 777)
        decoded, ts = decode_command(tag, payload)
        assert ts == 777
        assert decoded == cmd

    def test_luma_shape_mismatch_rejected(self):
        with pytest.raises(DisplayError):
            VideoFrameCmd(Region(0, 0, 8, 8),
                          np.zeros((4, 4), dtype=np.uint8))

    def test_chroma_size_validated(self):
        luma = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(DisplayError):
            VideoFrameCmd(Region(0, 0, 8, 8), luma, chroma=b"short")

    def test_scaled_halves_payload(self):
        cmd = _frame(32, 32)
        small = cmd.scaled(0.5)
        assert small.region.w == 16 and small.region.h == 16
        assert small.payload_size < cmd.payload_size

    def test_scaled_keeps_even_dimensions(self):
        """4:2:0 chroma subsampling needs even plane dimensions."""
        cmd = _frame(30, 22)
        small = cmd.scaled(0.37)
        assert small.region.w % 2 == 0
        assert small.region.h % 2 == 0

    def test_is_opaque_for_pruning(self):
        assert VideoFrameCmd.OPAQUE

    def test_full_screen_video_prunes_to_last_frame(self):
        from repro.display.playback import prune_commands

        frames = [_frame(seed=i) for i in range(10)]
        kept = prune_commands(frames)
        assert kept == [frames[-1]]
