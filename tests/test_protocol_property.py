"""Property test: the display-command wire codec is lossless for arbitrary
command sequences (the record log and the viewer stream share it)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display.commands import (
    BitmapCmd,
    CopyCmd,
    PatternFillCmd,
    RawCmd,
    Region,
    SolidFillCmd,
    VideoFrameCmd,
)
from repro.display.protocol import CommandLogReader, CommandLogWriter

_regions = st.builds(
    Region,
    x=st.integers(0, 100),
    y=st.integers(0, 100),
    w=st.integers(2, 16).map(lambda v: v & ~1),
    h=st.integers(2, 16).map(lambda v: v & ~1),
)


def _cmd_from(seed, kind, region):
    rng = np.random.default_rng(seed)
    if kind == 0:
        return SolidFillCmd(region, int(rng.integers(0, 2**32)))
    if kind == 1:
        pixels = rng.integers(0, 2**32, size=(region.h, region.w),
                              dtype=np.uint32)
        return RawCmd(region, pixels)
    if kind == 2:
        bits = rng.random((region.h, region.w)) > 0.5
        return BitmapCmd(region, bits, int(rng.integers(0, 2**32)),
                         int(rng.integers(0, 2**32)))
    if kind == 3:
        pattern = rng.integers(0, 2**32, size=(2, 2), dtype=np.uint32)
        return PatternFillCmd(region, pattern)
    if kind == 4:
        src = Region(region.x + 1, region.y + 1, region.w, region.h)
        return CopyCmd(region, src)
    luma = rng.integers(0, 256, size=(region.h, region.w), dtype=np.uint8)
    return VideoFrameCmd(region, luma)


@settings(max_examples=50, deadline=None)
@given(
    spec=st.lists(
        st.tuples(st.integers(0, 2**31), st.integers(0, 5), _regions,
                  st.integers(0, 10**9)),
        max_size=20,
    )
)
def test_property_command_log_roundtrip(spec):
    commands = [(_cmd_from(seed, kind, region), ts)
                for seed, kind, region, ts in spec]
    writer = CommandLogWriter()
    offsets = [writer.append(cmd, ts) for cmd, ts in commands]
    decoded = list(CommandLogReader(writer.getvalue()))
    assert len(decoded) == len(commands)
    for (cmd, ts), (out_cmd, out_ts, out_off), offset in zip(
            commands, decoded, offsets):
        assert out_cmd == cmd
        assert out_ts == ts
        assert out_off == offset


@settings(max_examples=50, deadline=None)
@given(
    spec=st.lists(
        st.tuples(st.integers(0, 2**31), st.integers(0, 5), _regions),
        min_size=1, max_size=15,
    ),
    scale=st.sampled_from([0.25, 0.5, 1.0]),
)
def test_property_scaled_commands_still_roundtrip(spec, scale):
    """Reduced-resolution recording (section 4.1) feeds scaled commands
    through the same codec; they must survive it too."""
    writer = CommandLogWriter()
    originals = []
    for seed, kind, region in spec:
        cmd = _cmd_from(seed, kind, region).scaled(scale)
        originals.append(cmd)
        writer.append(cmd, 0)
    decoded = [cmd for cmd, _ts, _off in CommandLogReader(writer.getvalue())]
    assert decoded == originals
