"""Unit tests for union mounts and branchable stores (section 5.2)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import FileSystemError
from repro.fs.branch import BranchableStore
from repro.fs.lfs import LogStructuredFS
from repro.fs.union import UnionMount


def _mount():
    clock = VirtualClock()
    lower_fs = LogStructuredFS(clock=clock)
    lower_fs.makedirs("/home/user")
    lower_fs.create("/home/user/notes.txt", b"original notes")
    lower_fs.create("/home/user/big.bin", b"B" * 10_000)
    snap = lower_fs.snapshot()
    mount = UnionMount(lower_fs.view_at(snap), clock=clock)
    return mount, lower_fs


class TestVisibility:
    def test_lower_files_visible(self):
        mount, _ = _mount()
        assert mount.exists("/home/user/notes.txt")
        assert mount.read_file("/home/user/notes.txt") == b"original notes"

    def test_upper_shadows_lower(self):
        mount, _ = _mount()
        mount.write_file("/home/user/notes.txt", b"edited")
        assert mount.read_file("/home/user/notes.txt") == b"edited"

    def test_listdir_merges_layers(self):
        mount, _ = _mount()
        mount.write_file("/home/user/new.txt", b"")
        names = mount.listdir("/home/user")
        assert set(names) == {"notes.txt", "big.bin", "new.txt"}

    def test_missing_path_errors(self):
        mount, _ = _mount()
        with pytest.raises(FileSystemError):
            mount.read_file("/nope")
        with pytest.raises(FileSystemError):
            mount.stat("/nope")
        with pytest.raises(FileSystemError):
            mount.listdir("/nope")

    def test_stat_prefers_upper(self):
        mount, _ = _mount()
        mount.write_file("/home/user/notes.txt", b"four")
        assert mount.stat("/home/user/notes.txt")["size"] == 4

    def test_is_dir(self):
        mount, _ = _mount()
        assert mount.is_dir("/home/user")
        assert not mount.is_dir("/home/user/notes.txt")
        assert not mount.is_dir("/absent")


class TestCopyUp:
    def test_whole_file_rewrite_skips_copy_up(self):
        """Desktop apps overwrite files completely, "which obviates the
        need to copy the file between the layers" (section 5.2)."""
        mount, _ = _mount()
        mount.write_file("/home/user/big.bin", b"tiny")
        assert mount.copy_up_count == 0

    def test_append_triggers_copy_up(self):
        mount, _ = _mount()
        mount.write_file("/home/user/notes.txt", b" more", append=True)
        assert mount.copy_up_count == 1
        assert mount.read_file("/home/user/notes.txt") == b"original notes more"

    def test_write_at_triggers_copy_up(self):
        mount, _ = _mount()
        mount.write_at("/home/user/notes.txt", 0, b"X")
        assert mount.copy_up_count == 1
        assert mount.read_file("/home/user/notes.txt") == b"Xriginal notes"

    def test_copy_up_charges_clock(self):
        mount, _ = _mount()
        before = mount.clock.now_us
        mount.write_file("/home/user/big.bin", b"x", append=True)
        assert mount.clock.now_us > before
        assert mount.copy_up_bytes == 10_000

    def test_lower_layer_never_modified(self):
        mount, lower_fs = _mount()
        mount.write_file("/home/user/notes.txt", b"edited")
        mount.unlink("/home/user/big.bin")
        assert mount.lower.read_file("/home/user/notes.txt") == b"original notes"
        assert mount.lower.exists("/home/user/big.bin")


class TestWhiteouts:
    def test_unlink_lower_file_hides_it(self):
        mount, _ = _mount()
        mount.unlink("/home/user/notes.txt")
        assert not mount.exists("/home/user/notes.txt")
        assert "notes.txt" not in mount.listdir("/home/user")

    def test_unlink_missing_rejected(self):
        mount, _ = _mount()
        with pytest.raises(FileSystemError):
            mount.unlink("/absent")

    def test_recreate_after_whiteout(self):
        mount, _ = _mount()
        mount.unlink("/home/user/notes.txt")
        mount.write_file("/home/user/notes.txt", b"reborn")
        assert mount.read_file("/home/user/notes.txt") == b"reborn"

    def test_unlink_upper_only_file(self):
        mount, _ = _mount()
        mount.write_file("/home/user/tmp.txt", b"")
        mount.unlink("/home/user/tmp.txt")
        assert not mount.exists("/home/user/tmp.txt")

    def test_unlink_file_in_both_layers(self):
        mount, _ = _mount()
        mount.write_file("/home/user/notes.txt", b"shadow")
        mount.unlink("/home/user/notes.txt")
        assert not mount.exists("/home/user/notes.txt")

    def test_whiteouts_hidden_from_listing(self):
        mount, _ = _mount()
        mount.unlink("/home/user/notes.txt")
        for name in mount.listdir("/home/user"):
            assert not name.startswith(".wh.")


class TestDirectoriesAndRename:
    def test_mkdir_and_write(self):
        mount, _ = _mount()
        mount.mkdir("/home/user/newdir")
        mount.write_file("/home/user/newdir/f", b"x")
        assert mount.read_file("/home/user/newdir/f") == b"x"

    def test_mkdir_existing_rejected(self):
        mount, _ = _mount()
        with pytest.raises(FileSystemError):
            mount.mkdir("/home/user")

    def test_makedirs(self):
        mount, _ = _mount()
        mount.makedirs("/home/user/a/b/c")
        assert mount.is_dir("/home/user/a/b/c")

    def test_rename_lower_file(self):
        mount, _ = _mount()
        mount.rename("/home/user/notes.txt", "/home/user/renamed.txt")
        assert not mount.exists("/home/user/notes.txt")
        assert mount.read_file("/home/user/renamed.txt") == b"original notes"

    def test_walk_files(self):
        mount, _ = _mount()
        mount.write_file("/home/user/extra.txt", b"")
        files = set(mount.walk_files("/home/user"))
        assert files == {
            "/home/user/notes.txt",
            "/home/user/big.bin",
            "/home/user/extra.txt",
        }


class TestBranchableStore:
    def _store(self):
        store = BranchableStore(clock=VirtualClock())
        store.fs.makedirs("/home")
        store.fs.create("/home/doc.txt", b"v1")
        return store

    def test_branch_sees_checkpoint_state(self):
        store = self._store()
        store.take_snapshot(1)
        store.fs.write_file("/home/doc.txt", b"v2")
        branch = store.branch_at(1)
        assert branch.read_file("/home/doc.txt") == b"v1"

    def test_branches_are_independent(self):
        """Multiple revived sessions from one checkpoint diverge freely."""
        store = self._store()
        store.take_snapshot(1)
        a = store.branch_at(1)
        b = store.branch_at(1)
        a.write_file("/home/doc.txt", b"branch-a")
        b.write_file("/home/doc.txt", b"branch-b")
        assert a.read_file("/home/doc.txt") == b"branch-a"
        assert b.read_file("/home/doc.txt") == b"branch-b"
        assert store.fs.read_file("/home/doc.txt") == b"v1"
        assert store.branch_count == 2

    def test_branch_upper_is_snapshotable(self):
        """A revived session can itself be checkpointed (section 5.2)."""
        store = self._store()
        store.take_snapshot(1)
        branch = store.branch_at(1)
        branch.write_file("/home/doc.txt", b"divergent")
        inner_snap = branch.upper_fs.snapshot()
        branch.write_file("/home/doc.txt", b"later")
        view = branch.upper_fs.view_at(inner_snap)
        assert view.read_file("/home/doc.txt") == b"divergent"

    def test_multiple_checkpoints_branch_differently(self):
        store = self._store()
        store.take_snapshot(1)
        store.fs.write_file("/home/doc.txt", b"v2")
        store.take_snapshot(2)
        assert store.branch_at(1).read_file("/home/doc.txt") == b"v1"
        assert store.branch_at(2).read_file("/home/doc.txt") == b"v2"

    def test_pre_snapshot_sync_flushes(self):
        store = self._store()
        assert store.pre_snapshot_sync() >= 0
        assert store.fs.pending_blocks == 0
