"""End-to-end smoke matrix: every scenario stays searchable, browsable and
revivable after a short full-recording run, and its checkpoint chain passes
integrity verification."""

import pytest

from repro.checkpoint.verify import verify_chain
from repro.workloads import run_scenario

SMOKE_UNITS = {
    "web": 6,
    "video": 48,
    "untar": 120,
    "gzip": 24,
    "make": 30,
    "octave": 6,
    "cat": 60,
    "desktop": 40,
}


@pytest.fixture(scope="module", params=sorted(SMOKE_UNITS))
def scenario_run(request):
    name = request.param
    return run_scenario(name, units=SMOKE_UNITS[name])


class TestScenarioSmoke:
    def test_recorded_time_advanced(self, scenario_run):
        assert scenario_run.duration_us > 0

    def test_display_record_replays_bit_exact(self, scenario_run):
        dv = scenario_run.dejaview
        fb, _stats = dv.playback(0, scenario_run.end_us, fastest=True)
        live = scenario_run.session.driver.framebuffer
        assert fb.checksum() == live.checksum()

    def test_checkpoint_chain_verifies(self, scenario_run):
        report = verify_chain(scenario_run.dejaview.storage,
                              scenario_run.session.fsstore)
        assert report.ok, [str(issue) for issue in report.issues]

    def test_final_state_revivable(self, scenario_run):
        dv = scenario_run.dejaview
        if dv.checkpoint_count == 0:
            pytest.skip("policy took no checkpoints in this short run")
        revived = dv.take_me_back(scenario_run.end_us)
        assert revived.container.live_processes()
        # The revived fs view serves reads.
        assert revived.container.mount.exists("/home/user")

    def test_browse_mid_run(self, scenario_run):
        mid = (scenario_run.start_us + scenario_run.end_us) // 2
        record = scenario_run.dejaview.display_record()
        target = max(mid, record.timeline.first_time_us)
        fb, _stats = scenario_run.dejaview.browse(target)
        assert fb.width == record.width


@pytest.fixture(scope="module")
def fleet_run():
    """Two mixed scenarios recorded interleaved under one fleet — the
    same smoke battery must hold for each member of a shared-CAS fleet,
    not just for solo recordings."""
    from repro.server import Fleet

    fleet = Fleet(seed=7)
    fleet.admit("smoke-web", "web", units=SMOKE_UNITS["web"])
    fleet.admit("smoke-gzip", "gzip", units=SMOKE_UNITS["gzip"])
    fleet.run_to_completion()
    return fleet


class TestFleetSmoke:
    """The smoke matrix row for fleet mode: each interleaved member must
    pass every check a solo scenario passes."""

    def test_recorded_time_advanced(self, fleet_run):
        for member in fleet_run.members():
            assert member.state == "done"
            assert member.session.clock.now_us > 0

    def test_display_record_replays_bit_exact(self, fleet_run):
        for member in fleet_run.members():
            record = member.dejaview.display_record()
            fb, _stats = member.dejaview.playback(
                0, record.end_us, fastest=True)
            live = member.session.driver.framebuffer
            assert fb.checksum() == live.checksum(), member.name

    def test_checkpoint_chain_verifies(self, fleet_run):
        for member in fleet_run.members():
            report = verify_chain(member.dejaview.storage,
                                  member.session.fsstore)
            assert report.ok, [str(issue) for issue in report.issues]

    def test_final_state_revivable(self, fleet_run):
        for member in fleet_run.members():
            if member.dejaview.checkpoint_count == 0:
                continue
            revived = member.dejaview.take_me_back(
                member.session.clock.now_us)
            assert revived.container.live_processes(), member.name
            assert revived.container.mount.exists("/home/user")

    def test_browse_mid_run(self, fleet_run):
        for member in fleet_run.members():
            record = member.dejaview.display_record()
            mid = (record.start_us + record.end_us) // 2
            target = max(mid, record.timeline.first_time_us)
            fb, _stats = member.dejaview.browse(target)
            assert fb.width == record.width, member.name

    def test_members_share_pages(self, fleet_run):
        assert fleet_run.cas.cross_pages_deduped >= 0
        assert fleet_run.dedup_ratio() >= 0.0


def _dense_recording():
    """Checkpoint every 150 ms so the short desktop run yields a
    timeline deep enough for the thinning tiers to bite."""
    from repro.common.units import ms
    from repro.desktop.dejaview import RecordingConfig

    return RecordingConfig(fixed_interval_us=ms(150))


def _dense_driver_factory(meta, capture):
    """Replay driver matching :func:`_dense_recording` — the scenario
    metadata alone rebuilds the default cadence, not the dense one."""
    def driver(tap):
        from repro.desktop.dejaview import DejaView
        from repro.desktop.session import DesktopSession
        from repro.workloads.generator import get_workload

        workload = get_workload(meta["scenario"])
        session = DesktopSession(replay_tap=tap,
                                 name=meta.get("name", "desktop"))
        dejaview = DejaView(session, _dense_recording())
        if capture is not None:
            capture["session"] = session
            capture["dejaview"] = dejaview
        workload.run(units=meta.get("units"), session=session,
                     dejaview=dejaview)
        tap.close(session.clock.now_us)
    return driver


@pytest.fixture(scope="module")
def thinned_run():
    """The desktop scenario recorded with replay on, then run through an
    age-tiered thinning pass — the smoke battery must hold on a timeline
    where many instants are tombstones, not stored bytes."""
    from repro.checkpoint.gc import ThinningPolicy
    from repro.common.units import seconds
    from repro.replay.replayer import record_scenario

    recorded = record_scenario("desktop", units=SMOKE_UNITS["desktop"],
                               recording=_dense_recording())
    assert recorded.crashed is None
    recorded.dejaview.reviver.replay_driver_factory = _dense_driver_factory
    policy = ThinningPolicy(recent_window_us=seconds(1),
                            tiers=((None, 2),))
    report = recorded.dejaview.thin_checkpoints(policy=policy,
                                                compact=True)
    return recorded, report


class TestThinnedSmoke:
    """The smoke matrix row for a thinned timeline."""

    def test_pass_actually_thinned(self, thinned_run):
        recorded, report = thinned_run
        assert report.thinned_images
        assert report.image_bytes_freed > 0
        assert len(recorded.dejaview.storage.thinned_ids()) \
            == len(report.thinned_images)

    def test_checkpoint_chain_verifies(self, thinned_run):
        recorded, _report = thinned_run
        chain = verify_chain(recorded.dejaview.storage,
                             recorded.session.fsstore)
        assert chain.ok, [str(issue) for issue in chain.issues]

    def test_display_record_replays_bit_exact(self, thinned_run):
        recorded, _report = thinned_run
        record = recorded.dejaview.display_record()
        fb, _stats = recorded.dejaview.playback(0, record.end_us,
                                                fastest=True)
        live = recorded.session.driver.framebuffer
        assert fb.checksum() == live.checksum()

    def test_browse_mid_run(self, thinned_run):
        recorded, _report = thinned_run
        record = recorded.dejaview.display_record()
        mid = (record.start_us + record.end_us) // 2
        target = max(mid, record.timeline.first_time_us)
        fb, _stats = recorded.dejaview.browse(target)
        assert fb.width == record.width

    def test_final_state_revivable(self, thinned_run):
        recorded, _report = thinned_run
        revived = recorded.dejaview.take_me_back(
            recorded.session.clock.now_us)
        assert revived.container.live_processes()
        assert not revived.replayed  # the newest instant keeps its bytes

    def test_thinned_instant_replay_revives(self, thinned_run):
        recorded, report = thinned_run
        dv = recorded.dejaview
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dv.engine.history}
        target = report.thinned_images[-1]
        revived = dv.take_me_back(timestamps[target])
        assert revived.checkpoint_id == target
        assert revived.replayed
        assert revived.container.live_processes()
