"""End-to-end smoke matrix: every scenario stays searchable, browsable and
revivable after a short full-recording run, and its checkpoint chain passes
integrity verification."""

import pytest

from repro.checkpoint.verify import verify_chain
from repro.workloads import run_scenario

SMOKE_UNITS = {
    "web": 6,
    "video": 48,
    "untar": 120,
    "gzip": 24,
    "make": 30,
    "octave": 6,
    "cat": 60,
    "desktop": 40,
}


@pytest.fixture(scope="module", params=sorted(SMOKE_UNITS))
def scenario_run(request):
    name = request.param
    return run_scenario(name, units=SMOKE_UNITS[name])


class TestScenarioSmoke:
    def test_recorded_time_advanced(self, scenario_run):
        assert scenario_run.duration_us > 0

    def test_display_record_replays_bit_exact(self, scenario_run):
        dv = scenario_run.dejaview
        fb, _stats = dv.playback(0, scenario_run.end_us, fastest=True)
        live = scenario_run.session.driver.framebuffer
        assert fb.checksum() == live.checksum()

    def test_checkpoint_chain_verifies(self, scenario_run):
        report = verify_chain(scenario_run.dejaview.storage,
                              scenario_run.session.fsstore)
        assert report.ok, [str(issue) for issue in report.issues]

    def test_final_state_revivable(self, scenario_run):
        dv = scenario_run.dejaview
        if dv.checkpoint_count == 0:
            pytest.skip("policy took no checkpoints in this short run")
        revived = dv.take_me_back(scenario_run.end_us)
        assert revived.container.live_processes()
        # The revived fs view serves reads.
        assert revived.container.mount.exists("/home/user")

    def test_browse_mid_run(self, scenario_run):
        mid = (scenario_run.start_us + scenario_run.end_us) // 2
        record = scenario_run.dejaview.display_record()
        target = max(mid, record.timeline.first_time_us)
        fb, _stats = scenario_run.dejaview.browse(target)
        assert fb.width == record.width


@pytest.fixture(scope="module")
def fleet_run():
    """Two mixed scenarios recorded interleaved under one fleet — the
    same smoke battery must hold for each member of a shared-CAS fleet,
    not just for solo recordings."""
    from repro.server import Fleet

    fleet = Fleet(seed=7)
    fleet.admit("smoke-web", "web", units=SMOKE_UNITS["web"])
    fleet.admit("smoke-gzip", "gzip", units=SMOKE_UNITS["gzip"])
    fleet.run_to_completion()
    return fleet


class TestFleetSmoke:
    """The smoke matrix row for fleet mode: each interleaved member must
    pass every check a solo scenario passes."""

    def test_recorded_time_advanced(self, fleet_run):
        for member in fleet_run.members():
            assert member.state == "done"
            assert member.session.clock.now_us > 0

    def test_display_record_replays_bit_exact(self, fleet_run):
        for member in fleet_run.members():
            record = member.dejaview.display_record()
            fb, _stats = member.dejaview.playback(
                0, record.end_us, fastest=True)
            live = member.session.driver.framebuffer
            assert fb.checksum() == live.checksum(), member.name

    def test_checkpoint_chain_verifies(self, fleet_run):
        for member in fleet_run.members():
            report = verify_chain(member.dejaview.storage,
                                  member.session.fsstore)
            assert report.ok, [str(issue) for issue in report.issues]

    def test_final_state_revivable(self, fleet_run):
        for member in fleet_run.members():
            if member.dejaview.checkpoint_count == 0:
                continue
            revived = member.dejaview.take_me_back(
                member.session.clock.now_us)
            assert revived.container.live_processes(), member.name
            assert revived.container.mount.exists("/home/user")

    def test_browse_mid_run(self, fleet_run):
        for member in fleet_run.members():
            record = member.dejaview.display_record()
            mid = (record.start_us + record.end_us) // 2
            target = max(mid, record.timeline.first_time_us)
            fb, _stats = member.dejaview.browse(target)
            assert fb.width == record.width, member.name

    def test_members_share_pages(self, fleet_run):
        assert fleet_run.cas.cross_pages_deduped >= 0
        assert fleet_run.dedup_ratio() >= 0.0
