"""End-to-end smoke matrix: every scenario stays searchable, browsable and
revivable after a short full-recording run, and its checkpoint chain passes
integrity verification."""

import pytest

from repro.checkpoint.verify import verify_chain
from repro.workloads import run_scenario

SMOKE_UNITS = {
    "web": 6,
    "video": 48,
    "untar": 120,
    "gzip": 24,
    "make": 30,
    "octave": 6,
    "cat": 60,
    "desktop": 40,
}


@pytest.fixture(scope="module", params=sorted(SMOKE_UNITS))
def scenario_run(request):
    name = request.param
    return run_scenario(name, units=SMOKE_UNITS[name])


class TestScenarioSmoke:
    def test_recorded_time_advanced(self, scenario_run):
        assert scenario_run.duration_us > 0

    def test_display_record_replays_bit_exact(self, scenario_run):
        dv = scenario_run.dejaview
        fb, _stats = dv.playback(0, scenario_run.end_us, fastest=True)
        live = scenario_run.session.driver.framebuffer
        assert fb.checksum() == live.checksum()

    def test_checkpoint_chain_verifies(self, scenario_run):
        report = verify_chain(scenario_run.dejaview.storage,
                              scenario_run.session.fsstore)
        assert report.ok, [str(issue) for issue in report.issues]

    def test_final_state_revivable(self, scenario_run):
        dv = scenario_run.dejaview
        if dv.checkpoint_count == 0:
            pytest.skip("policy took no checkpoints in this short run")
        revived = dv.take_me_back(scenario_run.end_us)
        assert revived.container.live_processes()
        # The revived fs view serves reads.
        assert revived.container.mount.exists("/home/user")

    def test_browse_mid_run(self, scenario_run):
        mid = (scenario_run.start_us + scenario_run.end_us) // 2
        record = scenario_run.dejaview.display_record()
        target = max(mid, record.timeline.first_time_us)
        fb, _stats = scenario_run.dejaview.browse(target)
        assert fb.width == record.width
