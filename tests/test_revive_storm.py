"""Revive storms, property-tested end to end.

The section 5.2 branchable-revive contract, as three properties over a
storm of N branches forked from *one* checkpoint of one parent:

* **Identity** — every branch's recording is byte-identical to the same
  branch run solo (parent + that single fork, nothing else).  The storm
  interleaving, the sibling count, and the scheduler seed must all be
  invisible to any one branch's bytes.
* **Economics** — N branches never cost N copies: the shared store holds
  at most one logical parent copy plus the branches' novel (diverged)
  pages, and at fork time every branch byte is shared.
* **Independence** — deleting any subset of branches leaves the
  survivors' fingerprints and the parent's checkpoint chain intact, and
  the parent's GC keeps the fork-point checkpoint alive while branches
  are rooted in it.

Plus the satellite regressions: the demand-paging ``bytes_read`` charge
(metadata at fork, faulted pages streamed) and the replay oracle wired
through a branch (fork nondeterminism is logged, never re-derived; a
seeded mutation is pinpointed inside the branch's log).
"""

import random

import pytest

from repro.checkpoint.restore import ReviveManager
from repro.checkpoint.verify import verify_chain
from repro.replay import (
    EV_INPUT,
    RecordingTap,
    anchor_ids,
    assert_replays_clean,
    prepare_events,
    read_events,
    replay,
    write_events,
)
from repro.server import Fleet
from repro.server.fleet import DONE

from tests.test_checkpoint_engine import make_rig
from tests.test_fleet_isolation import assert_fingerprints_equal, fingerprint

SEEDS = [11, 47]
PARENT_UNITS = 8
BRANCH_UNITS = 3

#: Divergent branch workloads (all setup-idempotent over the parent's
#: revived file tree — see ``repro.workloads.fleet_wl.STORM_MIX``).
BRANCH_MIX = ("web", "make", "untar", "desktop")


def storm_fleet(seed, max_sessions=16):
    """One recorded parent and its last checkpoint (the fork point)."""
    fleet = Fleet(seed=seed, max_sessions=max_sessions)
    fleet.admit("p0", "web", units=PARENT_UNITS)
    fleet.run_to_completion()
    source = fleet.member("p0").dejaview.engine.history[-1]
    return fleet, source


def fork_branch(fleet, source, index, **kwargs):
    kwargs.setdefault("scenario", BRANCH_MIX[index % len(BRANCH_MIX)])
    kwargs.setdefault("units", BRANCH_UNITS)
    return fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                        name="br%02d" % index, **kwargs)


class TestStormIdentity:
    """Property (a): storm branch == solo branch, byte for byte."""

    N = 4

    @pytest.mark.parametrize("seed", SEEDS)
    def test_storm_equals_solo(self, seed):
        fleet, source = storm_fleet(seed)
        for index in range(self.N):
            fork_branch(fleet, source, index)
        fleet.run_to_completion()
        assert all(m.state == DONE for m in fleet.branches())
        storm_prints = {
            member.name: fingerprint(member.dejaview, member.session)
            for member in fleet.branches()
        }

        for index in range(self.N):
            solo_fleet, solo_source = storm_fleet(seed)
            assert solo_source.checkpoint_id == source.checkpoint_id
            member = fork_branch(solo_fleet, solo_source, index)
            solo_fleet.run_to_completion()
            assert member.state == DONE
            assert_fingerprints_equal(
                storm_prints[member.name],
                fingerprint(member.dejaview, member.session),
                "seed %d, branch %s" % (seed, member.name))

    def test_identity_holds_across_seeds(self):
        """The scheduler seed picks an interleaving, nothing more: the
        same storm under two seeds yields identical branch bytes."""
        prints = []
        for seed in SEEDS:
            fleet, source = storm_fleet(seed)
            for index in range(self.N):
                fork_branch(fleet, source, index)
            fleet.run_to_completion()
            prints.append({
                member.name: fingerprint(member.dejaview, member.session)
                for member in fleet.branches()
            })
        for name in prints[0]:
            assert_fingerprints_equal(
                prints[0][name], prints[1][name],
                "seeds %s, branch %s" % (SEEDS, name))


class TestStormEconomics:
    """Property (b): physical bytes <= one parent copy + novel pages."""

    N = 6

    def test_shared_not_copied(self):
        fleet, source = storm_fleet(seed=SEEDS[0])
        for index in range(self.N):
            fork_branch(fleet, source, index)

        # At fork: every branch byte is shared (pins on the parent
        # chain), and each branch holds its own refs on those digests.
        for member in fleet.branches():
            split = fleet.branch_page_split(member.name)
            assert split["private_bytes"] == 0
            assert split["shared_fraction"] == 1.0
            pins = member.dejaview.storage.base_manifests
            assert source.checkpoint_id in pins

        fleet.run_to_completion()
        fleet.drain_writeback()

        cas = fleet.cas
        parent_raw, _ = cas.owner_logical_totals("p0")
        parent_digests = set(cas.owner_refs.get("p0", ()))
        novel = sum(
            cas.sizes[digest][0]
            for member in fleet.branches()
            for digest in set(cas.owner_refs.get(member.name, ()))
            - parent_digests)
        assert cas.total_uncompressed_bytes <= parent_raw + novel, (
            "storm stored %d > one parent copy (%d) + novel (%d)"
            % (cas.total_uncompressed_bytes, parent_raw, novel))

    def test_fork_charges_metadata_not_pages(self):
        """Under demand paging the fork's bytes_read is the metadata
        record, not the checkpoint size (the regression at the heart of
        the ReviveManager charge fix, seen through the fleet)."""
        fleet, source = storm_fleet(seed=SEEDS[0])
        member = fork_branch(fleet, source, 0)
        storage = fleet.member("p0").dejaview.storage
        full_size = storage.size_of(source.checkpoint_id)[0]
        assert member.fork["bytes_read"] < full_size / 10
        assert member.fork["pages_deferred"] > 0


class TestStormIndependence:
    """Property (c): GC of any subset spares survivors and the parent."""

    N = 4

    def test_delete_subset_spares_survivors(self):
        fleet, source = storm_fleet(seed=SEEDS[1])
        for index in range(self.N):
            fork_branch(fleet, source, index)
        fleet.run_to_completion()

        parent = fleet.member("p0")
        survivors = ["br00", "br02"]
        before = {
            name: fingerprint(fleet.member(name).dejaview,
                              fleet.member(name).session)
            for name in ["p0"] + survivors
        }
        # Fingerprinting itself observes (its searches charge the
        # session clock), so pin the post-observation clocks: the
        # deletes must not advance them at all.
        clocks = {name: fleet.member(name).session.clock.now_us
                  for name in ["p0"] + survivors}

        for name in ("br01", "br03"):
            fleet.delete_branch(name)
        fleet.compact()

        for name in ["p0"] + survivors:
            member = fleet.member(name)
            assert member.session.clock.now_us == clocks[name], (
                "%s's clock moved during sibling delete" % name)
            after = fingerprint(member.dejaview, member.session)
            after["clock_us"] = before[name]["clock_us"] = 0
            assert_fingerprints_equal(
                after, before[name], "%s after branch delete" % name)
            chain = verify_chain(member.dejaview.storage,
                                 member.session.fsstore)
            assert chain.ok, chain.issues
        chain = verify_chain(parent.dejaview.storage,
                             parent.session.fsstore)
        assert chain.ok, chain.issues

    def test_parent_gc_keeps_fork_point_alive(self):
        """The parent pruning down to its newest checkpoints must keep
        the branch's source checkpoint (and the branch must still be
        able to demand-page through it afterwards)."""
        fleet = Fleet(seed=SEEDS[0], max_sessions=16)
        fleet.admit("p0", "web", units=PARENT_UNITS)
        fleet.run_to_completion()
        history = fleet.member("p0").dejaview.engine.history
        assert len(history) >= 3
        early = history[1]  # old enough that keep_last=1 would drop it
        member = fleet.revive("p0", checkpoint_id=early.checkpoint_id,
                              name="br00", scenario="make",
                              units=BRANCH_UNITS)
        fleet.gc(keep_last=1)
        storage = fleet.member("p0").dejaview.storage
        assert early.checkpoint_id in storage
        # Survives GC *functionally*: fault every deferred page in.
        pager = member.session.pager
        assert pager is not None
        pager.touch_all()
        assert pager.remaining() == 0
        fleet.run_to_completion()
        assert member.state == DONE

    def test_deleting_diverged_branch_frees_only_private_pages(self):
        fleet, source = storm_fleet(seed=SEEDS[0])
        for index in range(2):
            fork_branch(fleet, source, index, scenario="untar")
        fleet.run_to_completion()
        fleet.drain_writeback()
        parent_pages = dict(fleet.cas.owner_refs.get("p0", ()))
        split = fleet.branch_page_split("br01")
        report = fleet.delete_branch("br01")
        # The parent's refs are untouched and the sibling still
        # verifies; what was freed is bounded by br01's private bytes.
        assert dict(fleet.cas.owner_refs.get("p0", ())) == parent_pages
        assert "br01" not in [m.name for m in fleet.branches()]
        assert report["physical_bytes_freed"] <= split["private_bytes"]
        sibling = fleet.member("br00")
        chain = verify_chain(sibling.dejaview.storage,
                             sibling.session.fsstore)
        assert chain.ok, chain.issues


class TestDemandPagingCharge:
    """Satellite regression: ``bytes_read`` under demand paging charges
    metadata at fork and streams faulted pages, across the cached/cold x
    demand-paging matrix."""

    def _rig(self):
        from repro.common.telemetry import Telemetry

        kernel, container, fsstore, storage, engine, procs = make_rig(
            nprocs=2, pages_per_proc=64)
        engine.checkpoint()
        manager = ReviveManager(kernel, fsstore, storage,
                                telemetry=Telemetry(kernel.clock))
        return storage, procs, manager

    @pytest.mark.parametrize("cached", [True, False])
    def test_demand_fork_charges_metadata_only(self, cached):
        storage, _procs, manager = self._rig()
        result = manager.revive(1, cached=cached, demand_paging=True)
        assert result.bytes_read == storage.metadata_size_of(1)
        assert result.bytes_read < storage.size_of(1)[0] / 10

    @pytest.mark.parametrize("cached", [True, False])
    def test_eager_fork_still_charges_full_read(self, cached):
        storage, _procs, manager = self._rig()
        result = manager.revive(1, cached=cached, demand_paging=False)
        assert result.bytes_read >= storage.size_of(1)[0]

    def test_faulted_pages_stream_into_the_counter(self):
        storage, procs, manager = self._rig()
        result = manager.revive(1, demand_paging=True)
        at_fork = manager._m_bytes.value
        clone = result.container.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        clone.address_space.read(region.start, 1)
        after_one = manager._m_bytes.value
        assert after_one > at_fork
        streamed_one = result.pager.bytes_streamed
        assert after_one - at_fork == streamed_one
        result.pager.touch_all()
        assert result.pager.bytes_streamed > streamed_one
        assert manager._m_bytes.value == at_fork + \
            result.pager.bytes_streamed

    def test_touch_all_converges_to_eager_charge(self):
        """Faulting everything in brings the lazy run's total charge to
        the same order as the eager read (they differ only in how the
        metadata record is folded into the totals)."""
        storage, _procs, manager = self._rig()
        lazy = manager.revive(1, demand_paging=True)
        lazy.pager.touch_all()
        assert lazy.pager.remaining() == 0
        lazy_total = lazy.bytes_read + lazy.pager.bytes_streamed
        eager = manager.revive(1, demand_paging=False)
        assert lazy_total >= 0.95 * eager.bytes_read
        # The fork alone charged an order of magnitude less than that.
        assert lazy.bytes_read < eager.bytes_read / 10


REPLAY_SEED = 23


def branch_driver(tap):
    """Deterministic record/replay driver: one parent, one tapped
    branch.  Used for both the recording run (RecordingTap) and the
    verification run (VerifyingTap) — the branch's fork events, sched
    taps, clock batches, and anchors must re-derive identically."""
    fleet, source = storm_fleet(REPLAY_SEED)
    member = fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                          name="br00", scenario="make",
                          units=BRANCH_UNITS, replay_tap=tap)
    fleet.run_to_completion()
    tap.close(member.session.clock.now_us)
    return fleet, member


@pytest.fixture(scope="module")
def recorded_branch():
    tap = RecordingTap(meta={"script": "revive-storm branch"})
    fleet, member = branch_driver(tap)
    assert member.state == DONE
    assert member.dejaview.checkpoint_count >= 1
    return tap.getvalue()


class TestBranchReplayOracle:
    """Satellite: the replay oracle wired through a revived branch."""

    def test_fork_nondeterminism_is_logged(self, recorded_branch):
        """Socket resets and the fresh container identity are replay
        *inputs* — recorded at fork, never re-derived."""
        _, events, _, _ = prepare_events(recorded_branch)
        forks = [event for event in events
                 if event.etype == EV_INPUT
                 and event.data.get("kind") == "revive.fork"]
        assert len(forks) == 1
        detail = forks[0].data["detail"]
        assert detail["checkpoint_id"] >= 1
        assert "revived" in detail["container"]
        assert detail["processes"] >= 1

    def test_branch_replays_clean(self, recorded_branch):
        report = assert_replays_clean(recorded_branch,
                                      driver=branch_driver)
        assert report.events_verified == report.events_total > 0
        assert report.anchors_verified == report.anchors_total >= 1

    def test_replay_from_first_branch_anchor(self, recorded_branch):
        """Anchor-synchronized replay from the branch's first
        checkpoint: fast-forward the re-fork, verify from the anchor."""
        first = anchor_ids(recorded_branch)[0]
        report = assert_replays_clean(recorded_branch,
                                      driver=branch_driver,
                                      from_checkpoint=first)
        assert report.from_checkpoint == first
        assert report.anchors_verified >= 1

    def test_seeded_mutation_pinpoints_divergence(self, recorded_branch):
        """Flip one recorded fork event: the report must name that exact
        event, proving divergence detection reaches inside a branch."""
        events, _ = read_events(recorded_branch)
        rng = random.Random(REPLAY_SEED)
        candidates = [event for event in events
                      if event.etype == EV_INPUT
                      and event.data.get("kind") == "revive.fork"]
        victim = rng.choice(candidates)
        victim.data["detail"] = dict(victim.data["detail"],
                                     processes=victim.data["detail"]
                                     ["processes"] + 1)
        mutated = write_events(events).getvalue()
        report = replay(mutated, driver=branch_driver)
        assert not report.ok
        assert report.divergence is not None
        assert report.divergence.seq == victim.seq
