"""Tests for the Table 1 workload generators.

Short runs (a fraction of the default units) validate each scenario's
*profile*: which storage stream dominates, which recording component costs
the most, and that the recorded session stays searchable/revivable.
"""

import pytest

from repro.desktop.dejaview import RecordingConfig
from repro.index.query import Query
from repro.workloads import SCENARIOS, get_workload, run_scenario
from repro.workloads.generator import baseline_config


def small(name, units, recording=None):
    return run_scenario(name, recording=recording, units=units)


class TestRegistry:
    def test_all_eight_scenarios_registered(self):
        get_workload("web")  # force registry population
        assert set(SCENARIOS) == {
            "web", "video", "untar", "gzip", "make", "octave", "cat",
            "desktop",
        }

    def test_unknown_scenario_rejected(self):
        from repro.common.errors import DejaViewError

        with pytest.raises(DejaViewError):
            get_workload("quake3")


class TestScenarioProfiles:
    def test_video_storage_dominated_by_display(self):
        run = small("video", units=72)
        rates = run.storage_growth_rates()
        assert rates["display"] > rates["checkpoint"]
        assert rates["display"] > rates["fs"]

    def test_video_frames_not_dropped(self):
        run = small("video", units=72)
        assert run.overran_units == 0

    def test_octave_storage_dominated_by_checkpoints(self):
        run = small("octave", units=10)
        rates = run.storage_growth_rates()
        assert rates["checkpoint"] > 10 * rates["display"]
        assert rates["checkpoint"] > 5e6  # tens of MB/s scale

    def test_octave_compresses_well(self):
        run = small("octave", units=10)
        rates = run.storage_growth_rates()
        assert rates["checkpoint_compressed"] < rates["checkpoint"] / 3

    def test_untar_storage_dominated_by_fs(self):
        run = small("untar", units=300)
        rates = run.storage_growth_rates()
        assert rates["fs"] > rates["checkpoint"]
        assert rates["fs"] > rates["display"]

    def test_untar_creates_the_tree(self):
        run = small("untar", units=100)
        files = list(run.session.fs.walk_files("/home/user/src"))
        assert len(files) == 100

    def test_gzip_low_overall_footprint(self):
        run = small("gzip", units=32)
        rates = run.storage_growth_rates()
        assert rates["display"] < 0.1e6
        assert rates["index"] < 0.1e6
        # The big input file exists but predates measurement.
        assert run.session.fs.stat("/home/user/access.log")["size"] > 10e6

    def test_make_spawns_and_retires_compilers(self):
        run = small("make", units=30)
        names = [p.name for p in run.session.container.live_processes()]
        assert not any(name.startswith("cc-") for name in names)
        assert run.session.fs.exists("/home/user/build/obj0010.o")

    def test_web_memory_grows(self):
        run = small("web", units=20)
        assert run.browser.resident_bytes > 8 * 2**20

    def test_cat_display_heavy_relative_to_fs(self):
        run = small("cat", units=80)
        rates = run.storage_growth_rates()
        assert rates["display"] > rates["fs"]

    def test_scenarios_checkpoint_once_per_second(self):
        run = small("octave", units=10)
        # ~0.35 s of work per unit -> at most one checkpoint per second.
        assert run.dejaview.checkpoint_count <= run.duration_seconds + 1


class TestOverheadOrdering:
    """Figure 2's qualitative statements, on shortened runs."""

    def test_web_index_recording_is_dominant_overhead(self):
        base = small("web", units=12, recording=baseline_config()).duration_us
        index_only = small(
            "web", units=12,
            recording=RecordingConfig(record_display=False,
                                      record_checkpoints=False),
        ).duration_us
        display_only = small(
            "web", units=12,
            recording=RecordingConfig(record_index=False,
                                      record_checkpoints=False),
        ).duration_us
        assert index_only / base > 1.5          # ~doubles page latency
        assert 1.0 < display_only / base < 1.2  # ~9 %

    def test_video_full_recording_negligible(self):
        base = small("video", units=48, recording=baseline_config()).duration_us
        full = small("video", units=48).duration_us
        assert full / base < 1.02

    def test_make_checkpoint_overhead_exceeds_gzip(self):
        def ckpt_overhead(name, units):
            base = small(name, units, recording=baseline_config()).duration_us
            ckpt = small(
                name, units,
                recording=RecordingConfig(record_display=False,
                                          record_index=False),
            ).duration_us
            return ckpt / base

        assert ckpt_overhead("make", 40) > ckpt_overhead("gzip", 32)


class TestDesktopScenario:
    def test_runs_under_policy(self):
        run = small("desktop", units=120)
        stats = run.dejaview.policy.stats
        assert stats.total == 120
        assert 0.05 < stats.taken_fraction() < 0.45

    def test_skip_reason_mix_matches_paper_ordering(self):
        """Section 6: low display activity is the top skip reason."""
        run = small("desktop", units=300)
        stats = run.dejaview.policy.stats
        from repro.checkpoint.policy import (
            SKIP_LOW_DISPLAY,
            SKIP_NO_DISPLAY,
            SKIP_TEXT_RATE,
        )

        low = stats.skip_fraction(SKIP_LOW_DISPLAY)
        none = stats.skip_fraction(SKIP_NO_DISPLAY)
        text = stats.skip_fraction(SKIP_TEXT_RATE)
        assert low > none
        assert low > text
        assert low > 0.4

    def test_desktop_session_is_searchable(self):
        run = small("desktop", units=90)
        results = run.dejaview.search(Query.keywords("report"), render=False)
        assert results

    def test_desktop_revivable_mid_run(self):
        run = small("desktop", units=90)
        dv = run.dejaview
        assert dv.checkpoint_count >= 1
        revived = dv.take_me_back(run.end_us)
        assert revived.container.live_processes()


class TestScenarioRunAccounting:
    def test_duration_positive(self):
        run = small("gzip", units=8)
        assert run.duration_us > 0
        assert run.duration_seconds == pytest.approx(run.duration_us / 1e6)

    def test_setup_excluded_from_growth(self):
        """gzip's pre-created 48 MiB input must not count as growth."""
        run = small("gzip", units=8)
        rates = run.storage_growth_rates()
        assert rates["fs_total"] < 5e6
