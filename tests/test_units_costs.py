"""Unit tests for unit helpers and the cost model."""

import pytest

from repro.common import costs as costs_mod
from repro.common.costs import PAGE_SIZE, CostModel, sanity_check
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration_us,
    format_rate,
    ms,
    seconds,
    us_to_ms,
    us_to_seconds,
)


class TestUnits:
    def test_byte_constants(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_time_conversions(self):
        assert ms(1.5) == 1500
        assert seconds(2) == 2_000_000
        assert us_to_ms(2500) == 2.5
        assert us_to_seconds(500_000) == 0.5

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * MiB) == "3.0 MiB"

    def test_format_duration(self):
        assert format_duration_us(900) == "900 us"
        assert format_duration_us(1500) == "1.50 ms"
        assert format_duration_us(2_000_000) == "2.00 s"

    def test_format_rate(self):
        assert format_rate(2_500_000) == "2.50 MB/s"


class TestCostModel:
    def test_defaults_are_sane(self):
        assert sanity_check(CostModel())

    def test_mirror_tree_must_beat_real_tree(self):
        model = CostModel(ax_mirror_node_us=1000.0)
        with pytest.raises(ValueError):
            sanity_check(model)

    def test_negative_constant_rejected(self):
        model = CostModel(page_copy_us=-1)
        with pytest.raises(ValueError):
            sanity_check(model)

    def test_disk_write_sequential_vs_random(self):
        model = CostModel()
        seq = model.disk_write_us(1 * MiB)
        rand = model.disk_write_us(1 * MiB, sequential=False)
        assert rand == seq + model.disk_seek_us

    def test_disk_read(self):
        model = CostModel()
        assert model.disk_read_us(1000) == 1000 * model.disk_read_us_per_byte

    def test_pages_for(self):
        assert CostModel.pages_for(0) == 0
        assert CostModel.pages_for(1) == 1
        assert CostModel.pages_for(PAGE_SIZE) == 1
        assert CostModel.pages_for(PAGE_SIZE + 1) == 2

    def test_copy_protect_compress_helpers(self):
        model = CostModel()
        assert model.copy_pages_us(10) == 10 * model.page_copy_us
        assert model.protect_pages_us(10) == 10 * model.page_protect_us
        assert model.compress_us(100) == 100 * model.zlib_compress_us_per_byte

    def test_effective_bandwidth_reported_in_mb_s(self):
        bw = costs_mod.effective_disk_bandwidth_mb_s()
        # 2007-era SATA: tens of MB/s, not GB/s and not floppy speed.
        assert 20 < bw < 200
