"""Integration tests for revive (section 5.2)."""

import pytest

from repro.common.costs import PAGE_SIZE
from repro.common.errors import CheckpointError
from repro.checkpoint.engine import EngineOptions
from repro.checkpoint.restore import ReviveManager
from repro.vex.process import ProcessState
from repro.vex.sockets import Socket, SocketState

from tests.test_checkpoint_engine import make_rig


def make_revive_rig(**kwargs):
    kernel, container, fsstore, storage, engine, procs = make_rig(**kwargs)
    manager = ReviveManager(kernel, fsstore, storage)
    return kernel, container, fsstore, storage, engine, procs, manager


class TestReviveBasics:
    def test_revive_rebuilds_process_forest(self):
        _k, container, _f, _s, engine, procs, manager = make_revive_rig(nprocs=3)
        engine.checkpoint()
        result = manager.revive(1)
        revived = result.container
        assert len(revived.live_processes()) == 3
        # vpids are preserved inside the new private namespace.
        for original in procs:
            clone = revived.process_by_vpid(original.vpid)
            assert clone.name == original.name
        # The parent/child relationships survive.
        init = revived.process_by_vpid(procs[0].vpid)
        assert {c.vpid for c in init.children} == {p.vpid for p in procs[1:]}

    def test_revived_memory_matches_checkpoint_time(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
            nprocs=2, pages_per_proc=4
        )
        engine.checkpoint()
        # Mutate the live session afterwards.
        space = procs[0].address_space
        region = space.regions()[0]
        space.write(region.start, b"post-checkpoint garbage")
        result = manager.revive(1)
        clone = result.container.process_by_vpid(procs[0].vpid)
        restored = clone.address_space.read(region.start, 11)
        assert restored == b"init-page-0"

    def test_revived_processes_runnable(self):
        *_rest, engine, _procs, manager = make_revive_rig()
        engine.checkpoint()
        result = manager.revive(1)
        assert all(
            p.state is ProcessState.RUNNABLE
            for p in result.container.live_processes()
        )

    def test_revive_unknown_checkpoint_rejected(self):
        *_rest, _engine, _procs, manager = make_revive_rig()
        with pytest.raises(CheckpointError):
            manager.revive(99)

    def test_revive_preserves_process_details(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(nprocs=1)
        proc = procs[0]
        proc.cwd = "/home/user"
        proc.blocked_signals.add(10)
        proc.signal_handlers[15] = "handle_term"
        proc.spawn_thread({"pc": 77, "sp": 88})
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(proc.vpid)
        assert clone.cwd == "/home/user"
        assert 10 in clone.blocked_signals
        assert clone.signal_handlers[15] == "handle_term"
        assert len(clone.threads) == 2
        assert clone.threads[1].registers == {"pc": 77, "sp": 88}

    def test_revive_namespace_isolated_from_live_session(self):
        """Live session and revived session can use the same vpids."""
        _k, container, _f, _s, engine, procs, manager = make_revive_rig()
        engine.checkpoint()
        revived = manager.revive(1).container
        for vpid in [p.vpid for p in procs]:
            assert container.process_by_vpid(vpid) is not None
            assert revived.process_by_vpid(vpid) is not None
            assert container.process_by_vpid(vpid) is not revived.process_by_vpid(vpid)


class TestReviveFromIncrementalChain:
    def test_revive_mid_chain_sees_state_at_that_checkpoint(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
            nprocs=1, pages_per_proc=4
        )
        space = procs[0].address_space
        region = space.regions()[0]
        engine.checkpoint()  # 1: "init-page-0"
        space.write(region.start, b"version-two")
        engine.checkpoint()  # 2
        space.write(region.start, b"version-three")
        engine.checkpoint()  # 3
        for ckpt_id, expected in [(1, b"init-page-0"), (2, b"version-two"),
                                  (3, b"version-three")]:
            clone = manager.revive(ckpt_id).container.process_by_vpid(
                procs[0].vpid
            )
            assert clone.address_space.read(region.start, len(expected)) == expected

    def test_chain_revive_accesses_multiple_images(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
            nprocs=1, pages_per_proc=8
        )
        space = procs[0].address_space
        region = space.regions()[0]
        engine.checkpoint()  # full
        space.write(region.start, b"delta")
        engine.checkpoint()  # incremental: page 0 only
        result = manager.revive(2)
        # Pages 1..7 must come from image 1; page 0 from image 2.
        assert result.images_accessed == 2
        clone = result.container.process_by_vpid(procs[0].vpid)
        assert clone.address_space.read(region.start, 5) == b"delta"
        assert (
            clone.address_space.read(region.start + PAGE_SIZE, 11)
            == b"init-page-1"
        )

    def test_full_checkpoint_caps_chain_length(self):
        options = EngineOptions(full_checkpoint_interval=2)
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
            options=options, nprocs=1, pages_per_proc=4
        )
        space = procs[0].address_space
        region = space.regions()[0]
        for i in range(5):
            space.write(region.start, b"round-%d" % i)
            engine.checkpoint()
        # Checkpoint 4 is full, so reviving 5 touches at most images 4..5.
        result = manager.revive(5)
        assert result.images_accessed <= 2


class TestReviveFileSystem:
    def test_revived_fs_matches_checkpoint_time(self):
        _k, _c, fsstore, _s, engine, _procs, manager = make_revive_rig()
        fsstore.fs.create("/home/user/doc.txt", b"at checkpoint")
        engine.checkpoint()
        fsstore.fs.write_file("/home/user/doc.txt", b"changed later")
        mount = manager.revive(1).container.mount
        assert mount.read_file("/home/user/doc.txt") == b"at checkpoint"

    def test_revived_fs_is_writable_and_isolated(self):
        _k, _c, fsstore, _s, engine, _procs, manager = make_revive_rig()
        fsstore.fs.create("/home/user/doc.txt", b"shared")
        engine.checkpoint()
        a = manager.revive(1).container.mount
        b = manager.revive(1).container.mount
        a.write_file("/home/user/doc.txt", b"divergent-a")
        assert b.read_file("/home/user/doc.txt") == b"shared"
        assert fsstore.fs.read_file("/home/user/doc.txt") == b"shared"

    def test_deleted_file_restored_in_revive(self):
        """The /tmp/foo scenario end-to-end."""
        _k, _c, fsstore, _s, engine, _procs, manager = make_revive_rig()
        fsstore.fs.create("/home/user/tmp-foo", b"precious")
        engine.checkpoint()
        fsstore.fs.unlink("/home/user/tmp-foo")
        mount = manager.revive(1).container.mount
        assert mount.read_file("/home/user/tmp-foo") == b"precious"

    def test_relinked_file_invisible_but_fd_restored(self):
        _k, _c, fsstore, _s, engine, procs, manager = make_revive_rig(nprocs=1)
        fs = fsstore.fs
        fs.create("/home/user/scratch", b"unsaved")
        handle = fs.open("/home/user/scratch")
        entry = procs[0].open_fd(path="/home/user/scratch", inode=handle.inode_id)
        fs.unlink("/home/user/scratch")
        entry.unlinked = True
        engine.checkpoint()
        result = manager.revive(1)
        clone = result.container.process_by_vpid(procs[0].vpid)
        restored_fd = clone.open_files[entry.fd]
        assert restored_fd.unlinked
        # The relink entry has been unlinked again in the revived view.
        _vpid, _fd, target = result.container.mount, None, None


class TestReviveSockets:
    def _proc_with_sockets(self, procs):
        proc = procs[0]
        external = Socket("tcp", "10.0.0.5:5000", "93.184.216.34:80",
                          state=SocketState.ESTABLISHED)
        internal = Socket("tcp", "127.0.0.1:6000", "127.0.0.1:35000",
                          state=SocketState.ESTABLISHED, internal=True)
        udp = Socket("udp", "10.0.0.5:1234", "8.8.8.8:53",
                     state=SocketState.ESTABLISHED)
        fds = [
            proc.open_fd(kind="socket", socket=external),
            proc.open_fd(kind="socket", socket=internal),
            proc.open_fd(kind="socket", socket=udp),
        ]
        return proc, fds

    def test_external_tcp_reset_internal_and_udp_kept(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(nprocs=1)
        proc, fds = self._proc_with_sockets(procs)
        engine.checkpoint()
        result = manager.revive(1)
        assert result.reset_sockets == 1
        clone = result.container.process_by_vpid(proc.vpid)
        ext = clone.open_files[fds[0].fd].socket
        inte = clone.open_files[fds[1].fd].socket
        udp = clone.open_files[fds[2].fd].socket
        assert ext.state is SocketState.RESET
        assert inte.state is SocketState.ESTABLISHED
        assert udp.state is SocketState.ESTABLISHED

    def test_network_disabled_by_default(self):
        *_rest, engine, _procs, manager = make_revive_rig()
        engine.checkpoint()
        revived = manager.revive(1).container
        assert not revived.network_enabled
        revived.network_policy["browser"] = True
        assert revived.network_allowed_for("browser")
        assert not revived.network_allowed_for("mail")

    def test_network_can_be_enabled_at_revive(self):
        *_rest, engine, _procs, manager = make_revive_rig()
        engine.checkpoint()
        revived = manager.revive(1, network_enabled=True).container
        assert revived.network_enabled


class TestReviveLatency:
    def test_cached_revive_faster_than_uncached(self):
        """Figure 7: cached revives are well under the uncached times."""
        *_rest, engine, _procs, manager = make_revive_rig(
            nprocs=3, pages_per_proc=128
        )
        engine.checkpoint()
        uncached = manager.revive(1, cached=False)
        cached = manager.revive(1, cached=True)
        assert cached.duration_us < uncached.duration_us

    def test_more_memory_slower_uncached_revive(self):
        """Figure 7: revive time grows with application memory usage."""
        *_r1, engine_small, _p1, manager_small = make_revive_rig(
            nprocs=2, pages_per_proc=16
        )
        *_r2, engine_big, _p2, manager_big = make_revive_rig(
            nprocs=2, pages_per_proc=512
        )
        engine_small.checkpoint()
        engine_big.checkpoint()
        small = manager_small.revive(1, cached=False)
        big = manager_big.revive(1, cached=False)
        assert big.duration_us > small.duration_us
        assert big.pages_restored > small.pages_restored

    def test_revive_result_reports_bytes_read(self):
        *_rest, engine, _procs, manager = make_revive_rig()
        engine.checkpoint()
        result = manager.revive(1, cached=False)
        assert result.bytes_read > 0
        assert result.processes == 3
