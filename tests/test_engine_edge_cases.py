"""Checkpoint engine edge cases: process churn, unmapping, zombies,
storage interactions, and the end-to-end incremental-chain property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.costs import PAGE_SIZE
from repro.common.errors import CheckpointError
from repro.checkpoint.restore import ReviveManager

from tests.test_checkpoint_engine import make_rig


def make_revive_rig(**kwargs):
    kernel, container, fsstore, storage, engine, procs = make_rig(**kwargs)
    manager = ReviveManager(kernel, fsstore, storage)
    return kernel, container, fsstore, storage, engine, procs, manager


class TestProcessChurn:
    def test_process_spawned_between_checkpoints_is_captured(self):
        _k, container, _f, storage, engine, procs, manager = make_revive_rig()
        engine.checkpoint()
        newcomer = container.spawn("latecomer", parent=procs[0])
        region = newcomer.address_space.mmap(2, name="heap")
        newcomer.address_space.write(region.start, b"late data")
        engine.checkpoint()
        revived = manager.revive(2)
        clone = revived.container.process_by_vpid(newcomer.vpid)
        assert clone.name == "latecomer"
        assert clone.address_space.read(region.start, 9) == b"late data"

    def test_process_exited_between_checkpoints_not_in_new_image(self):
        _k, container, _f, storage, engine, procs, manager = make_revive_rig(
            nprocs=3
        )
        engine.checkpoint()
        victim = procs[2]
        victim.exit(0)
        container.reap(victim)
        engine.checkpoint()
        revived = manager.revive(2)
        with pytest.raises(Exception):
            revived.container.process_by_vpid(victim.vpid)
        # But the older checkpoint still revives it.
        revived1 = manager.revive(1)
        assert revived1.container.process_by_vpid(victim.vpid).name == victim.name

    def test_zombie_at_checkpoint_time_excluded(self):
        _k, container, _f, storage, engine, procs, _m = make_revive_rig(
            nprocs=3
        )
        procs[2].exit(1)  # zombie, not yet reaped
        result = engine.checkpoint()
        assert result.process_count == 2

    def test_fork_charges_interposition_overhead(self):
        kernel, container, *_rest, engine, procs = make_rig()
        before = kernel.clock.now_us
        container.spawn("child", parent=procs[0])
        assert kernel.clock.now_us - before >= kernel.costs.fork_interpose_us

    def test_new_process_cow_handler_armed_immediately(self):
        _k, container, _f, storage, engine, procs, manager = make_revive_rig()
        child = container.spawn("child", parent=procs[0])
        region = child.address_space.mmap(1)
        child.address_space.write(region.start, b"original")
        engine.checkpoint()

        def mutate():
            child.address_space.write(region.start, b"mutated!")

        engine.checkpoint(on_resumed=mutate)
        # Checkpoint 2 is incremental and child's page was clean: image 2
        # should not contain it; revive(2) pulls it from image 1... but the
        # key property: no crash and content fidelity.
        revived = manager.revive(2)
        clone = revived.container.process_by_vpid(child.vpid)
        assert clone.address_space.read(region.start, 8) == b"original"


class TestMemoryLayoutChanges:
    def test_munmap_between_checkpoints_drops_pages_from_chain(self):
        _k, _c, _f, storage, engine, procs, manager = make_revive_rig(
            nprocs=1, pages_per_proc=4
        )
        space = procs[0].address_space
        doomed = space.mmap(4, name="doomed")
        space.write(doomed.start, b"temporary")
        engine.checkpoint()
        space.munmap(doomed.start)
        engine.checkpoint()
        revived = manager.revive(2)
        clone = revived.container.process_by_vpid(procs[0].vpid)
        assert clone.address_space.find_region(doomed.start) is None
        # The first checkpoint still has it.
        revived1 = manager.revive(1)
        clone1 = revived1.container.process_by_vpid(procs[0].vpid)
        assert clone1.address_space.read(doomed.start, 9) == b"temporary"

    def test_mremap_shrink_between_checkpoints(self):
        _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
            nprocs=1, pages_per_proc=2
        )
        space = procs[0].address_space
        region = space.regions()[0]
        big = space.mmap(8, name="big")
        for page in range(8):
            space.write(big.start + page * PAGE_SIZE, b"page%d" % page)
        engine.checkpoint()
        space.mremap(big.start, 2)
        engine.checkpoint()
        revived = manager.revive(2)
        clone = revived.container.process_by_vpid(procs[0].vpid)
        restored = clone.address_space.find_region(big.start)
        assert restored.npages == 2
        assert clone.address_space.read(big.start, 5) == b"page0"

    def test_unmapped_region_before_writeback_raises(self):
        """The documented limitation: unmapping a COW-pending region
        between resume and writeback loses the data."""
        _k, _c, _f, _s, engine, procs, _m = make_revive_rig(
            nprocs=1, pages_per_proc=2
        )
        space = procs[0].address_space
        region = space.regions()[0]

        def unmap():
            space.munmap(region.start)

        with pytest.raises(CheckpointError):
            engine.checkpoint(on_resumed=unmap)


class TestStorageEdgeCases:
    def test_duplicate_store_rejected(self):
        _k, _c, _f, storage, engine, _p, _m = make_revive_rig()
        engine.checkpoint()
        image = storage.load(1)
        with pytest.raises(CheckpointError):
            storage.store(image)

    def test_delete_unknown_rejected(self):
        _k, _c, _f, storage, *_rest = make_revive_rig()
        with pytest.raises(CheckpointError):
            storage.delete(42)

    def test_load_after_delete_rejected(self):
        _k, _c, _f, storage, engine, _p, _m = make_revive_rig()
        engine.checkpoint()
        storage.delete(1)
        with pytest.raises(CheckpointError):
            storage.load(1)

    def test_metadata_only_load_cheaper(self):
        kernel, _c, _f, storage, engine, _p, _m = make_revive_rig(
            nprocs=2, pages_per_proc=128
        )
        engine.checkpoint()
        storage.evict_all()
        watch = kernel.clock.stopwatch()
        storage.load(1, cached=False, metadata_only=True)
        meta_cost = watch.restart()
        storage.evict_all()
        storage.load(1, cached=False)
        full_cost = watch.elapsed_us
        assert meta_cost < full_cost / 3

    def test_eviction_forces_cold_reads(self):
        kernel, _c, _f, storage, engine, _p, _m = make_revive_rig()
        engine.checkpoint()
        assert storage.is_cached(1)
        storage.evict_all()
        assert not storage.is_cached(1)
        storage.load(1)  # cold read re-caches
        assert storage.is_cached(1)


@settings(max_examples=15, deadline=None)
@given(
    script=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7), st.binary(min_size=1, max_size=12)),
        min_size=1, max_size=25,
    ),
    checkpoint_every=st.integers(min_value=1, max_value=5),
)
def test_property_every_checkpoint_in_chain_revives_exactly(script,
                                                            checkpoint_every):
    """End-to-end chain fidelity: interleave random page writes with
    checkpoints, then revive *every* checkpoint and compare its memory
    against the state recorded at that instant."""
    _k, _c, _f, _s, engine, procs, manager = make_revive_rig(
        nprocs=2, pages_per_proc=8
    )
    spaces = [p.address_space for p in procs]
    regions = [s.regions()[0] for s in spaces]
    expected = {}  # checkpoint id -> {(proc idx, page): content}

    def snapshot_state():
        state = {}
        for i, region in enumerate(regions):
            for page, content in region.pages.items():
                state[(i, page)] = content
        return state

    for step, (proc_idx, page, data) in enumerate(script):
        proc_idx %= len(spaces)
        spaces[proc_idx].write(
            regions[proc_idx].start + page * PAGE_SIZE, data
        )
        if step % checkpoint_every == 0:
            result = engine.checkpoint()
            expected[result.checkpoint_id] = snapshot_state()
    if not expected:
        result = engine.checkpoint()
        expected[result.checkpoint_id] = snapshot_state()

    for checkpoint_id, state in expected.items():
        revived = manager.revive(checkpoint_id)
        for i, proc in enumerate(procs):
            clone = revived.container.process_by_vpid(proc.vpid)
            region = clone.address_space.find_region(regions[i].start)
            for (pidx, page), content in state.items():
                if pidx != i:
                    continue
                assert region.pages.get(page) == content, (
                    "checkpoint %d proc %d page %d" % (checkpoint_id, i, page)
                )
