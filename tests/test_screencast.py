"""Unit tests for the screencast baseline recorder (section 7)."""

from repro.common.clock import VirtualClock
from repro.display.commands import Region, SolidFillCmd
from repro.display.driver import VirtualDisplayDriver
from repro.display.screencast import ScreencastRecorder


def _rig(fps=10, encode=True):
    clock = VirtualClock()
    driver = VirtualDisplayDriver(32, 24, clock=clock)
    cast = ScreencastRecorder(32, 24, clock=clock, fps=fps, encode=encode)
    driver.attach_sink(cast)
    return clock, driver, cast


class TestScreencastRecorder:
    def test_grabs_at_frame_rate(self):
        clock, driver, cast = _rig(fps=10)
        for i in range(10):
            driver.submit(SolidFillCmd(Region(0, 0, 32, 24), i))
            driver.flush()
            clock.advance_us(100_000)  # 0.1 s = one frame period
        assert cast.frames_captured >= 9

    def test_unchanged_frames_skipped(self):
        clock, driver, cast = _rig(fps=10)
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 7))
        driver.flush()
        clock.advance_us(1_000_000)  # ten frame periods, nothing changes
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 7))  # same color
        driver.flush()
        assert cast.frames_skipped >= 8

    def test_encoding_reduces_stored_bytes(self):
        _c1, d1, raw = _rig(encode=False)
        _c2, d2, enc = _rig(encode=True)
        for driver in (d1, d2):
            driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 3))
            driver.flush()
        for cast, driver, clock in ((raw, d1, d1.clock), (enc, d2, d2.clock)):
            clock.advance_us(200_000)
            driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 9))
            driver.flush()
        assert enc.stored_bytes < raw.stored_bytes
        assert raw.raw_bytes == enc.raw_bytes

    def test_grab_charges_clock(self):
        clock, driver, cast = _rig()
        before = clock.now_us
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 1))
        driver.flush()
        clock.advance_us(100_000)
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 2))
        driver.flush()
        assert clock.now_us > before + 100_000

    def test_stream_has_header(self):
        _clock, _driver, cast = _rig()
        assert cast.getvalue().startswith(b"DJVW")

    def test_every_grab_costs_full_screen(self):
        """The structural weakness vs command recording: a 1-pixel change
        still costs a full-frame grab."""
        clock, driver, cast = _rig(encode=False)
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 1))
        driver.flush()
        clock.advance_us(100_000)
        driver.submit(SolidFillCmd(Region(0, 0, 1, 1), 2))  # one pixel
        driver.flush()
        frame_bytes = 32 * 24 * 4
        assert cast.raw_bytes >= 2 * frame_bytes
