"""Tests for the tabbed multi-session viewer and clipboard (section 2)."""

import pytest

from repro.common.errors import DejaViewError
from repro.common.units import seconds
from repro.desktop.dejaview import DejaView
from repro.desktop.manager import SessionManager
from repro.desktop.session import DesktopSession
from repro.display.commands import Region


def story():
    session = DesktopSession(width=64, height=48)
    dv = DejaView(session)
    manager = SessionManager(session, dv)
    editor = session.launch("editor")
    editor.focus()
    editor.draw_fill(Region(0, 0, 64, 48), 0xCC0000)
    editor.show_text("old draft wording")
    editor.write_file("/home/user/draft.txt", b"the original phrasing")
    dv.tick()
    t_old = session.clock.now_us
    session.clock.advance_us(seconds(5))
    editor.draw_fill(Region(0, 0, 64, 48), 0x00CC00)
    session.fs.write_file("/home/user/draft.txt", b"rewritten")
    dv.tick()
    session.clock.advance_us(seconds(1))
    return session, dv, manager, editor, t_old


class TestTabs:
    def test_live_tab_exists(self):
        session, dv, manager, *_ = story()
        assert manager.live_tab.kind == "live"
        assert manager.live_tab.container is session.container

    def test_take_me_back_opens_tab(self):
        _s, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old)
        assert tab.kind == "revived"
        assert tab in manager.revived_tabs
        assert len(manager.tabs) == 2

    def test_revived_tab_viewer_shows_the_past_screen(self):
        _s, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old)
        assert int(tab.viewer.framebuffer.pixels[5, 5]) == 0xCC0000

    def test_multiple_tabs_side_by_side(self):
        session, _dv, manager, _e, t_old = story()
        a = manager.take_me_back(t_old)
        b = manager.take_me_back(session.clock.now_us)
        assert a.container is not b.container
        assert len(manager.revived_tabs) == 2
        # Divergence: each tab's file system is independent.
        a.mount.write_file("/home/user/only-a.txt", b"a")
        assert not b.mount.exists("/home/user/only-a.txt")

    def test_tab_lookup_by_name(self):
        _s, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old)
        assert manager.tab(tab.name) is tab
        with pytest.raises(DejaViewError):
            manager.tab("nope")

    def test_close_revived_tab(self):
        session, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old)
        manager.close(tab)
        assert tab not in manager.tabs
        assert tab.container not in session.kernel.containers

    def test_live_tab_cannot_close(self):
        _s, _dv, manager, *_ = story()
        with pytest.raises(DejaViewError):
            manager.close(manager.live_tab)

    def test_demand_paged_tab(self):
        _s, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old, demand_paging=True)
        assert tab.revive_result.demand_paged


class TestClipboard:
    def test_copy_paste_across_sessions(self):
        """The headline flow: rescue old text into the live session."""
        session, _dv, manager, _e, t_old = story()
        tab = manager.take_me_back(t_old)
        manager.copy_from_revived(tab, "/home/user/draft.txt")
        manager.paste_into_live_file("/home/user/recovered.txt")
        assert session.fs.read_file("/home/user/recovered.txt") \
            == b"the original phrasing"
        # The live draft keeps its newer content.
        assert session.fs.read_file("/home/user/draft.txt") == b"rewritten"

    def test_empty_clipboard_rejected(self):
        _s, _dv, manager, *_ = story()
        with pytest.raises(DejaViewError):
            manager.paste()

    def test_copy_from_live_tab_rejected_via_revived_helper(self):
        _s, _dv, manager, *_ = story()
        with pytest.raises(DejaViewError):
            manager.copy_from_revived(manager.live_tab, "/etc/hostname")

    def test_plain_copy_paste(self):
        _s, _dv, manager, *_ = story()
        manager.copy("snippet")
        assert manager.paste() == "snippet"


class TestViewerPause:
    def test_pause_freezes_viewer_not_session(self):
        session, dv, manager, editor, _t = story()
        viewer = manager.live_tab.viewer
        frozen = viewer.checksum()
        viewer.pause()
        editor.draw_fill(Region(0, 0, 64, 48), 0x0000FF)
        session.driver.flush()
        # The desktop moved on; the viewer did not.
        assert viewer.checksum() == frozen
        assert int(session.driver.framebuffer.pixels[0, 0]) == 0x0000FF

    def test_resume_catches_up(self):
        session, dv, manager, editor, _t = story()
        viewer = manager.live_tab.viewer
        viewer.pause()
        editor.draw_fill(Region(0, 0, 64, 48), 0x0000FF)
        session.driver.flush()
        held = viewer.resume()
        assert held == 1
        assert viewer.checksum() == session.driver.framebuffer.checksum()

    def test_pause_flag(self):
        _s, _dv, manager, *_ = story()
        viewer = manager.live_tab.viewer
        assert not viewer.paused
        viewer.pause()
        assert viewer.paused
        viewer.resume()
        assert not viewer.paused
