"""End-to-end integration tests: the full DejaView stack on a session."""

import pytest

from repro import (
    DejaView,
    DesktopSession,
    Query,
    RecordingConfig,
)
from repro.common.errors import DejaViewError
from repro.common.units import seconds
from repro.display.commands import Region


def _session_with_recorder(config=None):
    session = DesktopSession(width=64, height=48)
    dejaview = DejaView(session, config)
    return session, dejaview


class TestSessionAssembly:
    def test_display_server_inside_container(self):
        session, _dv = _session_with_recorder()
        assert session.container.namespace.resolve("display", ":0") \
            is session.display_server

    def test_launch_creates_process_and_ax_app(self):
        session, _dv = _session_with_recorder()
        app = session.launch("editor")
        assert app.process in session.container.processes
        assert session.registry.app("editor") is app.ax

    def test_quit_reaps(self):
        session, _dv = _session_with_recorder()
        app = session.launch("editor")
        session.quit("editor")
        assert app.process not in session.container.processes
        assert app.closed

    def test_home_directory_populated(self):
        session, _dv = _session_with_recorder()
        assert session.fs.is_dir("/home/user")
        assert session.fs.read_file("/etc/hostname").startswith(b"dejaview")


class TestRecordingLifecycle:
    def test_tick_checkpoints_at_fixed_rate(self):
        session, dv = _session_with_recorder()
        app = session.launch("editor")
        for i in range(3):
            app.draw_fill(Region(0, 0, 64, 48), i)
            dv.tick()
            session.clock.advance_us(seconds(1))
        assert dv.checkpoint_count == 3

    def test_tick_respects_fixed_interval(self):
        session, dv = _session_with_recorder()
        app = session.launch("editor")
        for i in range(10):
            app.draw_fill(Region(0, 0, 64, 48), i)
            dv.tick()
            session.clock.advance_us(seconds(1) // 5)
        assert dv.checkpoint_count <= 3

    def test_policy_mode_skips_quiet_ticks(self):
        session, dv = _session_with_recorder(RecordingConfig(use_policy=True))
        session.launch("editor")
        for _ in range(5):
            dv.tick()  # no display activity at all
            session.clock.advance_us(seconds(1))
        assert dv.checkpoint_count == 0
        assert dv.policy.stats.total_skipped == 5

    def test_disabled_components_raise_cleanly(self):
        session, dv = _session_with_recorder(
            RecordingConfig(record_display=False, record_index=False,
                            record_checkpoints=False)
        )
        with pytest.raises(DejaViewError):
            dv.display_record()
        with pytest.raises(DejaViewError):
            dv.search_engine()
        with pytest.raises(DejaViewError):
            dv.checkpoint_before(0)

    def test_storage_report_keys(self):
        _session, dv = _session_with_recorder()
        report = dv.storage_report()
        assert set(report) == {
            "display", "index", "checkpoint_uncompressed",
            "checkpoint_compressed", "fs_log", "fs_visible",
            "pages_deduped", "dedup_bytes_saved", "cas_orphans_reclaimed",
            "cas_pages", "compaction_runs", "compaction_bytes_reclaimed",
            "cross_pages_deduped", "cross_dedup_bytes_saved",
        }


class TestWYSIWYSLoop:
    """The headline user journeys of section 2."""

    def _record_story(self):
        session, dv = _session_with_recorder()
        editor = session.launch("editor")
        editor.focus()
        # Chapter 1: write some notes on a red screen.
        editor.draw_fill(Region(0, 0, 64, 48), 0xFF0000)
        note = editor.show_text("project alpha kickoff notes")
        dv.tick()
        t_alpha = session.clock.now_us
        session.clock.advance_us(seconds(5))
        # Chapter 2: replace with beta content on a green screen.
        editor.draw_fill(Region(0, 0, 64, 48), 0x00FF00)
        editor.update_text(note, "project beta retrospective")
        session.fs.write_file("/home/user/beta.txt", b"beta doc")
        dv.tick()
        session.clock.advance_us(seconds(5))
        dv.tick()
        return session, dv, editor, t_alpha

    def test_search_finds_past_text_with_screenshot(self):
        session, dv, _editor, t_alpha = self._record_story()
        results = dv.search(Query.keywords("alpha"))
        assert len(results) == 1
        shot = results[0].screenshot
        assert int(shot.pixels[10, 10]) == 0xFF0000  # the red chapter

    def test_search_then_take_me_back(self):
        session, dv, editor, t_alpha = self._record_story()
        results = dv.search(Query.keywords("alpha"), render=False)
        hit_time = results[0].timestamp_us
        revived = dv.take_me_back(max(hit_time, t_alpha))
        # The revived session has the editor process, under its old vpid.
        clone = revived.container.process_by_vpid(editor.process.vpid)
        assert clone.name == "editor"
        # And the revived fs lacks the file created later.
        assert not revived.container.mount.exists("/home/user/beta.txt")

    def test_browse_reaches_intermediate_state(self):
        session, dv, _editor, t_alpha = self._record_story()
        fb, _stats = dv.browse(t_alpha)
        assert int(fb.pixels[5, 5]) == 0xFF0000

    def test_playback_reproduces_live_screen(self):
        session, dv, _editor, _t = self._record_story()
        fb, stats = dv.playback(0, session.clock.now_us, fastest=True)
        assert fb.checksum() == session.driver.framebuffer.checksum()
        assert stats.speedup > 1

    def test_take_me_back_before_any_checkpoint_rejected(self):
        session, dv = _session_with_recorder()
        with pytest.raises(DejaViewError):
            dv.take_me_back(0)

    def test_multiple_concurrent_revives(self):
        """Section 2: "simultaneous revival of multiple past sessions"."""
        session, dv, editor, t_alpha = self._record_story()
        a = dv.take_me_back(t_alpha)
        b = dv.take_me_back(session.clock.now_us)
        assert a.container is not b.container
        a.container.mount.write_file("/home/user/branch-a.txt", b"a")
        assert not b.container.mount.exists("/home/user/branch-a.txt")

    def test_revived_session_network_disabled(self):
        session, dv, _editor, t_alpha = self._record_story()
        revived = dv.take_me_back(t_alpha)
        assert not revived.container.network_enabled
