"""Shared machinery for the crash-recovery sweep and the fault fuzzer.

The driver below is a deterministic scripted desktop workload that touches
every instrumented write path each unit: display commands (command log +
keyframes), accessible text (index open/close), file writes (LFS block
appends), and ticks (checkpoint store).  Determinism matters: the fuzz
tests compare a faulted run against a clean run of the *same* script, so
nothing here may depend on wall time or unseeded randomness.
"""

import json
import os

from repro.common.units import seconds
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.session import DesktopSession
from repro.display.commands import Region
from repro.display.recorder import RecorderConfig
from repro.replay import RecordingTap, assert_replays_clean

WORDS = ["alpha", "beta", "gamma", "delta",
         "epsilon", "zeta", "theta", "kappa"]
COLORS = [0xFF0000, 0x00FF00, 0x0000FF, 0xFFFF00, 0x00FFFF, 0xFF00FF]


def build_session(fault_plan=None, replay_tap=None):
    """A small session configured so every failpoint is reachable.

    Keyframes every simulated second (the default ten-minute interval
    would leave ``recorder.screenshot.mid_write`` unexercised by a short
    drive).  Replay recording is on by default (``replay_tap=None``
    builds a fresh :class:`RecordingTap`): the ``replay.log.append``
    failpoint must be reachable by the crash sweep, and every faulted
    run's event log feeds the replay-divergence oracle.  The tap is
    reachable as ``session.replay``.
    """
    if replay_tap is None:
        replay_tap = RecordingTap(meta={"script": "faulthelpers.drive"})
    session = DesktopSession(width=64, height=48, replay_tap=replay_tap)
    config = RecordingConfig(
        fault_plan=fault_plan,
        recorder_config=RecorderConfig(screenshot_interval_us=seconds(1)),
    )
    dejaview = DejaView(session, config)
    return session, dejaview


def unit_text(index):
    """The deterministic text shown during unit ``index``."""
    return "%s unit%d notes" % (WORDS[index % len(WORDS)], index)


def drive(session, dejaview, units=8, resilient=False, progress=None,
          after_unit=None):
    """Run the scripted workload for ``units`` units.

    ``resilient=True`` swallows transient ``IOError`` per operation (the
    application gives up on that operation and moves on), which is how a
    robust desktop reacts to write errors; :class:`InjectedCrash` always
    propagates — nothing survives the host dying.  ``progress`` (a dict)
    gets ``progress["units"]`` bumped after each fully completed unit, so
    a caller catching a crash knows how far the script got.  ``after_unit``
    is called with the unit index after each completed unit (clean runs
    use it to snapshot per-unit state for truncation comparisons).
    """
    editor = session.apps.get("editor")
    if editor is None:
        editor = session.launch("editor")
        editor.focus()

    def op(fn, *args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except IOError:
            if not resilient:
                raise
            return None

    nodes = []
    for i in range(units):
        op(editor.draw_fill,
           Region(0, 0, session.width, session.height),
           COLORS[i % len(COLORS)])
        node = op(editor.show_text, unit_text(i))
        if node is not None:
            nodes.append(node)
        op(editor.write_file, "/home/user/unit-%d.txt" % i,
           (b"unit %d contents\n" % i) * 40)
        # Dirty two heap pages so every tick's checkpoint appends fresh
        # payloads to the content-addressed page store (the
        # ``storage.cas.*`` failpoints live on that path).
        op(editor.dirty_memory, 2 * 4096)
        if i % 2 == 1 and nodes:
            # Exercise occurrence close (epoch back-fill) on odd units.
            op(editor.remove_text, nodes.pop(0))
        op(dejaview.tick)
        session.clock.advance_us(seconds(1))
        if progress is not None:
            progress["units"] = i + 1
        if after_unit is not None:
            after_unit(i)
    return editor


def thin_drive(session, dejaview, units=12):
    """A scripted workload whose checkpoints *thin* well.

    Every unit rewrites the same leading heap pages (hot churn) and
    repaints the screen, so each instant's pages are fully superseded by
    the next checkpoint: older incrementals stop being required by
    survivors, and an age-tiered thinning pass can actually drop their
    bytes.  (The round-robin sweep in :func:`drive` keeps every image's
    pages live for several units, which pins nearly everything.)
    """
    editor = session.apps.get("editor")
    if editor is None:
        editor = session.launch("editor")
        editor.focus()
    for i in range(units):
        editor.draw_fill(Region(0, 0, session.width, session.height),
                         COLORS[i % len(COLORS)])
        editor.dirty_memory(4 * 4096, hot=True)
        dejaview.tick()
        session.clock.advance_us(seconds(1))
    return editor


def thin_replay_driver_factory(units=12):
    """``factory(meta, capture) -> driver`` re-running
    :func:`thin_drive` — wire it into
    :attr:`ReviveManager.replay_driver_factory` (or pass it to
    :func:`replay_to_checkpoint`) so thinned instants of these bespoke
    recordings can replay-revive."""
    def factory(_meta, capture):
        def driver(tap):
            session, dejaview = build_session(replay_tap=tap)
            capture["session"] = session
            capture["dejaview"] = dejaview
            thin_drive(session, dejaview, units=units)
        return driver
    return factory


def replay_driver(units=8, fault_plan=None, resilient=False):
    """A replay driver re-running the scripted workload above.

    ``fault_plan`` should be a :meth:`FaultPlan.fresh_copy` of the plan
    the recorded run used, so re-execution injects the same faults at
    the same points (crashes kill the replay exactly where they killed
    the recording — the surviving log prefix then verifies completely).
    """
    def driver(tap):
        session, dejaview = build_session(fault_plan=fault_plan,
                                          replay_tap=tap)
        drive(session, dejaview, units=units, resilient=resilient)
    return driver


def assert_recovered_run_replays(session, plan, units=8, resilient=False):
    """The replay-divergence oracle for a recovered faulted run: the
    surviving event-log prefix must re-derive bit-identically when the
    same script runs under a fresh copy of the same fault plan.  Returns
    the :class:`~repro.replay.replayer.ReplayReport`."""
    fresh = plan.fresh_copy() if plan is not None and plan.active else None
    return assert_replays_clean(
        session.replay.getvalue(),
        driver=replay_driver(units=units, fault_plan=fresh,
                             resilient=resilient))


def summarize(session, dejaview):
    """Comparable facts about the recorded state (the fuzz invariants)."""
    database = dejaview.database
    return {
        "checkpoint_ids": [r.checkpoint_id for r in dejaview.engine.history],
        "timeline_entries": len(dejaview.recorder.timeline),
        "command_count": dejaview.recorder.command_count,
        "texts": sorted(occ.text for occ in database.all_occurrences()),
        "posting_counts": {token: database.posting_count(token)
                           for token in database.vocabulary()},
    }


def record_fault_matrix(plan):
    """Merge ``plan``'s hit snapshot into the CI fault-matrix artifact.

    No-op unless ``FAULT_MATRIX_PATH`` is set (the CI fault-matrix job
    sets it; local runs stay clean).
    """
    path = os.environ.get("FAULT_MATRIX_PATH")
    if not path:
        return
    merged = {}
    if os.path.exists(path):
        with open(path) as handle:
            merged = json.load(handle)
    for site, counts in plan.hit_snapshot().items():
        entry = merged.setdefault(site, {"hits": 0, "fired": 0})
        entry["hits"] += counts["hits"]
        entry["fired"] += counts["fired"]
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
