"""Coverage for remaining configuration paths and small behaviors:
cold playback, naive-daemon DejaView mode, compressed checkpointing at the
orchestrator level, lfs odds and ends, and the public API surface."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import FileSystemError
from repro.common.units import seconds
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.session import DesktopSession
from repro.display.commands import Region, SolidFillCmd
from repro.display.playback import PlaybackEngine
from repro.fs.lfs import LogStructuredFS


class TestColdPlayback:
    def _record(self):
        session = DesktopSession(width=64, height=48)
        dv = DejaView(session, RecordingConfig(record_index=False,
                                               record_checkpoints=False))
        app = session.launch("painter")
        for i in range(20):
            app.draw_fill(Region(0, 0, 64, 48), i)
            dv.tick()
            session.clock.advance_us(seconds(1))
        return session, dv.display_record()

    def test_cold_seek_slower_than_warm(self):
        session, record = self._record()
        warm = PlaybackEngine(record, clock=VirtualClock(), cache_capacity=0)
        cold = PlaybackEngine(record, clock=VirtualClock(), cache_capacity=0,
                              cold=True)
        w1 = warm.clock.stopwatch()
        warm.seek(session.clock.now_us)
        warm_us = w1.elapsed_us
        w2 = cold.clock.stopwatch()
        cold.seek(session.clock.now_us)
        cold_us = w2.elapsed_us
        assert cold_us > warm_us

    def test_cold_and_warm_reconstruct_identically(self):
        session, record = self._record()
        warm, _ = PlaybackEngine(record, clock=VirtualClock()).seek(
            session.clock.now_us
        )
        cold, _ = PlaybackEngine(record, clock=VirtualClock(), cold=True).seek(
            session.clock.now_us
        )
        assert warm == cold


class TestDejaViewConfigurations:
    def test_naive_daemon_mode(self):
        session = DesktopSession(width=32, height=24)
        dv = DejaView(session, RecordingConfig(record_display=False,
                                               record_checkpoints=False,
                                               use_mirror_tree=False))
        app = session.launch("editor")
        app.show_text("naive mode works")
        from repro.index.query import Query

        assert dv.search(Query.keywords("naive"), render=False)

    def test_compressed_checkpoint_recording(self):
        session = DesktopSession(width=32, height=24)
        dv = DejaView(session, RecordingConfig(compress_checkpoints=True))
        app = session.launch("editor")
        app.dirty_memory(256 * 1024)
        dv.tick()
        report = dv.storage_report()
        assert report["checkpoint_compressed"] > 0
        assert report["checkpoint_compressed"] < report["checkpoint_uncompressed"]
        # Revive still works from compressed storage.
        revived = dv.take_me_back(session.clock.now_us)
        assert revived.processes >= 1

    def test_checkpoint_before_picks_latest_not_after(self):
        session = DesktopSession(width=32, height=24)
        dv = DejaView(session)
        app = session.launch("editor")
        times = []
        for i in range(3):
            app.draw_fill(Region(0, 0, 32, 24), i)
            dv.tick()
            times.append(session.clock.now_us)
            session.clock.advance_us(seconds(2))
        target = times[1] + seconds(1)
        candidate = dv.checkpoint_before(target)
        assert candidate.checkpoint_id == 2

    def test_tick_without_engine_reports_commands(self):
        session = DesktopSession(width=32, height=24)
        dv = DejaView(session, RecordingConfig(record_checkpoints=False))
        app = session.launch("editor")
        app.draw_fill(Region(0, 0, 32, 24), 1)
        report = dv.tick()
        assert report.display_commands == 1
        assert not report.checkpointed


class TestLfsOddsAndEnds:
    def test_rename_overwrites_destination_entry(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/a", b"a-content")
        fs.create("/b", b"b-content")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"a-content"
        assert not fs.exists("/a")

    def test_link_to_missing_source_rejected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        with pytest.raises(FileSystemError):
            fs.link("/missing", "/new")

    def test_link_over_existing_rejected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/a", b"")
        fs.create("/b", b"")
        with pytest.raises(FileSystemError):
            fs.link("/a", "/b")

    def test_write_at_on_missing_file_rejected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        with pytest.raises(FileSystemError):
            fs.write_at("/missing", 0, b"x")

    def test_truncate_to_zero(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"abcdef")
        fs.truncate("/f")
        assert fs.read_file("/f") == b""

    def test_listdir_of_file_rejected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"")
        with pytest.raises(FileSystemError):
            fs.listdir("/f")

    def test_mkdir_missing_parent_rejected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        with pytest.raises(FileSystemError):
            fs.mkdir("/no/such/parent")


class TestPublicApi:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_doctests_of_pure_helpers(self):
        import doctest

        import repro.common.units as units
        import repro.fs.vfs as vfs
        import repro.index.tokenizer as tokenizer

        for module in (units, vfs, tokenizer):
            failures, _tests = doctest.testmod(module)
            assert failures == 0, module.__name__

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
