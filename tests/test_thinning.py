"""Property battery for checkpoint thinning via replay.

The contract under test: an age-tiered :class:`ThinningPolicy` may drop
the *bytes* of older instants, but never their identity — a THINNED
tombstone keeps each on the timeline, and replaying the event log
forward from the nearest surviving anchor re-derives the dropped state
**bit-identically** (tombstone fingerprints are recorded truth, and
:meth:`ReviveManager.revive_thinned` refuses any mismatch).  The battery
checks that equivalence across seeds and CAS shard counts, that thinning
is idempotent, that GC reclaims exactly the thinned-only pages, and that
the never-thin invariants (protect set, newest instant, survivors'
required images, unanchored instants, branch fork points, last-good
recovery anchors) all hold.

Workloads here are *hot-churn* (each unit rewrites the same leading heap
pages) so older incrementals actually become droppable; the round-robin
churn of :func:`tests.faulthelpers.drive` is used where the point is the
required-images pin.
"""

import os

import pytest

from repro.checkpoint.gc import ThinningPolicy, thin_checkpoints
from repro.checkpoint.image import CheckpointImage
from repro.checkpoint.storage import CheckpointStorage
from repro.checkpoint.verify import verify_chain
from repro.common.faults import FaultPlan, InjectedCrash
from repro.common.units import seconds
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.session import DesktopSession
from repro.display.commands import Region
from repro.display.recorder import RecorderConfig
from repro.replay import RecordingTap, anchor_ids, prepare_events

from tests.faulthelpers import COLORS

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

UNITS = 14
SEEDS = [11, 23, 47]
SHARD_COUNTS = [1, 4]

#: Single aggressive tier: everything older than 2 simulated seconds is
#: a candidate, every 2nd instant kept as a replay anchor.
POLICY = ThinningPolicy(recent_window_us=seconds(2), tiers=((None, 2),))


def build_thin_session(seed=0, shards=1, fault_plan=None, replay_tap=None):
    """A small session with a seeded identity and ``shards`` CAS shards."""
    if replay_tap is None:
        replay_tap = RecordingTap(meta={
            "script": "test_thinning.seeded_drive",
            "seed": seed, "shards": shards,
        })
    session = DesktopSession(width=64, height=48, replay_tap=replay_tap)
    config = RecordingConfig(
        fault_plan=fault_plan,
        cas_shards=shards,
        recorder_config=RecorderConfig(screenshot_interval_us=seconds(1)),
    )
    dejaview = DejaView(session, config)
    return session, dejaview


def seeded_drive(session, dejaview, seed, units=UNITS):
    """Deterministic hot-churn workload varied by ``seed``.

    Every unit repaints the screen and rewrites the leading heap pages
    (``hot=True``), so each instant's pages are superseded by the next
    checkpoint and the policy's drops are actually droppable.  The seed
    shifts colors, page counts, and which units show text — distinct
    timelines, same determinism (the replay driver re-runs this
    verbatim).
    """
    editor = session.apps.get("editor")
    if editor is None:
        editor = session.launch("editor")
        editor.focus()
    for i in range(units):
        editor.draw_fill(Region(0, 0, session.width, session.height),
                         COLORS[(seed + i) % len(COLORS)])
        if (seed + i) % 3 == 0:
            editor.show_text("seed%d unit%d" % (seed, i))
        editor.dirty_memory((2 + (seed + i) % 3) * 4096, hot=True)
        dejaview.tick()
        session.clock.advance_us(seconds(1))
    return editor


def seeded_factory(seed, shards, units=UNITS):
    """``factory(meta, capture) -> driver`` rebuilding the seeded run
    (what :meth:`ReviveManager.revive_thinned` replays through)."""
    def factory(_meta, capture):
        def driver(tap):
            session, dejaview = build_thin_session(
                seed=seed, shards=shards, replay_tap=tap)
            capture["session"] = session
            capture["dejaview"] = dejaview
            seeded_drive(session, dejaview, seed, units=units)
        return driver
    return factory


def record(seed, shards, fault_plan=None):
    session, dejaview = build_thin_session(seed=seed, shards=shards,
                                           fault_plan=fault_plan)
    seeded_drive(session, dejaview, seed)
    dejaview.reviver.replay_driver_factory = seeded_factory(seed, shards)
    return session, dejaview


def _revive_targets(thinned):
    """First, middle, and last thinned instants — bounded replay work
    while still covering both ends of the replay-distance range."""
    picks = {thinned[0], thinned[len(thinned) // 2], thinned[-1]}
    return sorted(picks)


class TestThinReviveEquivalence:
    """The tentpole property: thin, then revive through replay, and the
    re-derived instants are bit-identical to what was dropped."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_thin_then_revive_bit_identical(self, seed, shards):
        session, dejaview = record(seed, shards)
        storage = dejaview.storage
        # Recorded truth, captured *before* any bytes are dropped.
        pre_fp = {image_id: storage.blob_fingerprint(image_id)
                  for image_id in storage.stored_ids()}
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dejaview.engine.history}

        report = dejaview.thin_checkpoints(policy=POLICY, compact=True)
        assert report.thinned_images, \
            "seed %d/shards %d produced no thinnable instants" \
            % (seed, shards)
        assert verify_chain(storage, session.fsstore).ok

        for image_id in report.thinned_images:
            tombstone = storage.tombstone_of(image_id)
            # The tombstone fingerprint IS the pre-thin image bytes.
            assert tombstone["checkpoint_fp"] == pre_fp[image_id]
            assert tombstone["framebuffer_sha1"]

        for image_id in _revive_targets(report.thinned_images):
            revived = dejaview.take_me_back(timestamps[image_id])
            # revive_thinned verified the replayed checkpoint and
            # framebuffer fingerprints against the tombstone — reaching
            # here means the re-derived state is bit-identical.
            assert revived.checkpoint_id == image_id
            assert revived.replayed
            assert revived.replay_anchor_id == \
                storage.tombstone_of(image_id)["anchor_id"]
            assert revived.replay_events_verified > 0
            assert revived.container.live_processes()

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_equivalence_survives_mid_thin_crash(self, shards):
        """Crash halfway through dropping refs, recover, re-thin: the
        equivalence property must hold for every tombstone, including
        the one whose thin was interrupted."""
        seed = SEEDS[0]
        plan = FaultPlan()
        plan.add("thin.drop_refs", mode="crash")
        session, dejaview = record(seed, shards, fault_plan=plan)
        storage = dejaview.storage
        pre_fp = {image_id: storage.blob_fingerprint(image_id)
                  for image_id in storage.stored_ids()}
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dejaview.engine.history}

        with pytest.raises(InjectedCrash):
            dejaview.thin_checkpoints(policy=POLICY)
        report = dejaview.recover()
        assert report["ok"], report
        done = dejaview.thin_checkpoints(policy=POLICY)
        thinned = sorted(storage.thinned_ids())
        assert thinned
        assert verify_chain(storage, session.fsstore).ok

        for image_id in thinned:
            assert storage.tombstone_of(image_id)["checkpoint_fp"] \
                == pre_fp[image_id]
        for image_id in _revive_targets(thinned):
            revived = dejaview.take_me_back(timestamps[image_id])
            assert revived.checkpoint_id == image_id
            assert revived.replayed
        assert not dejaview.thin_checkpoints(policy=POLICY).thinned_images
        assert done.tombstones == len(thinned)


class TestThinningIdempotent:
    def test_second_pass_is_a_noop(self):
        _session, dejaview = record(SEEDS[0], 1)
        first = dejaview.thin_checkpoints(policy=POLICY)
        assert first.thinned_images
        before = sorted(dejaview.storage.thinned_ids())
        second = dejaview.thin_checkpoints(policy=POLICY)
        assert not second.thinned_images
        assert second.image_bytes_freed == 0
        assert sorted(dejaview.storage.thinned_ids()) == before

    def test_plan_counts_full_timeline(self):
        """Tier positions are computed over the whole timeline, so
        re-planning after a pass selects the same survivors instead of
        cascading into the previous pass's keepers."""
        _session, dejaview = record(SEEDS[1], 1)
        history = dejaview.engine.history
        now_us = dejaview.session.clock.now_us
        drops = POLICY.plan(history, now_us)
        dejaview.thin_checkpoints(policy=POLICY)
        assert POLICY.plan(history, now_us) == drops


class TestThinningGC:
    def test_gc_frees_exactly_the_thinned_only_pages(self):
        session, dejaview = record(SEEDS[0], 1)
        storage = dejaview.storage
        manifests = {image_id: set(storage.manifest_digests(image_id))
                     for image_id in storage.stored_ids()}
        report = dejaview.thin_checkpoints(policy=POLICY, compact=True)
        thinned = set(report.thinned_images)
        assert thinned
        survivors = set(storage.stored_ids())
        survivor_pages = set().union(
            *(manifests[image_id] for image_id in survivors))
        doomed_only = set().union(
            *(manifests[image_id] for image_id in thinned)) - survivor_pages
        assert doomed_only, "thinned images shared every page"
        # Exactly the thinned-only pages are gone; every surviving
        # reference still resolves, and no refcount underflows.
        for digest in doomed_only:
            assert storage.cas_page(digest) is None
        for digest in survivor_pages:
            assert storage.cas_page(digest) is not None
        assert all(refs >= 1 for refs in storage._cas_refs.values())
        assert verify_chain(storage, session.fsstore).ok

    def test_freed_bytes_show_up_in_accounting(self):
        _session, dejaview = record(SEEDS[2], 1)
        storage = dejaview.storage
        before = storage.total_compressed_bytes
        report = dejaview.thin_checkpoints(policy=POLICY, compact=True)
        assert report.image_bytes_freed > 0
        assert storage.total_compressed_bytes < before


class TestNeverThinned:
    #: Maximum aggression: no recent window, keep only every 8th.
    AGGRESSIVE = ThinningPolicy(recent_window_us=0, tiers=((None, 8),))

    def test_protect_and_newest_survive(self):
        _session, dejaview = record(SEEDS[0], 1)
        storage = dejaview.storage
        history = dejaview.engine.history
        newest = history[-1].checkpoint_id
        guarded = history[len(history) // 2].checkpoint_id
        report = dejaview.thin_checkpoints(policy=self.AGGRESSIVE,
                                           protect=(guarded,))
        assert report.thinned_images
        for survivor in (newest, guarded):
            assert survivor not in report.thinned_images
            assert survivor in storage
            assert not storage.is_thinned(survivor)

    def test_required_images_pin_survivor_chains(self):
        """A sweep over a working set larger than the per-unit write
        burst never supersedes earlier pages: survivors' page-location
        directories keep referencing the older incrementals, so those
        drops must be skipped (never a dangling page location), and the
        chain must verify afterwards."""
        session, dejaview = build_thin_session(seed=5)
        editor = session.launch("editor")
        editor.focus()
        editor.grow_memory(64 * 4096)
        for _ in range(10):
            editor.dirty_memory(2 * 4096)  # sweeps; never wraps
            dejaview.tick()
            session.clock.advance_us(seconds(1))
        report = dejaview.thin_checkpoints(policy=self.AGGRESSIVE)
        assert report.skipped_required
        storage = dejaview.storage
        for image_id in report.skipped_required:
            assert image_id in storage
            assert not storage.is_thinned(image_id)
        assert verify_chain(storage, session.fsstore).ok

    def test_unanchored_instants_survive(self):
        """With an anchor index that names nobody, nothing can be
        replay-verified — so nothing may be thinned."""
        _session, dejaview = record(SEEDS[1], 1)
        storage = dejaview.storage
        report = thin_checkpoints(
            storage, dejaview.engine.history, POLICY,
            dejaview.session.clock.now_us, anchors={})
        assert not report.thinned_images
        assert report.skipped_unanchored
        assert not storage.thinned_ids()

    def test_fleet_fork_points_and_last_good_anchor_survive(self):
        from repro.server import Fleet

        fleet = Fleet(seed=7)
        fleet.admit("p0", "web", units=6)
        fleet.run_to_completion()
        parent = fleet.member("p0")
        source = parent.dejaview.engine.history[2]
        fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                     name="branch", scenario="make", units=2)
        fleet.run_to_completion()

        summary = fleet.thin(policy=self.AGGRESSIVE)
        assert "p0" in summary["sessions"]
        # The branch demand-pages its fork point: its bytes must stay.
        parent_storage = parent.dejaview.storage
        assert source.checkpoint_id in parent_storage
        assert not parent_storage.is_thinned(source.checkpoint_id)
        # Every member's last-good recovery anchor keeps its bytes too.
        for member in fleet.members():
            engine = member.dejaview.engine
            if engine is None or engine.last_checkpoint_id is None:
                continue
            storage = member.dejaview.storage
            assert engine.last_checkpoint_id in storage
            assert verify_chain(storage, member.session.fsstore).ok
        # The branch still revives off its (protected) source chain.
        branch = fleet.member("branch")
        revived = branch.dejaview.take_me_back(
            branch.session.clock.now_us)
        assert revived.container.live_processes()


class TestThinnedTakeMeBack:
    """Regression: the *Take me back* fallback scan must distinguish
    THINNED (replayable — revive through replay, no fallback) from
    torn/corrupt (skip to an earlier instant, count a fallback)."""

    AGGRESSIVE = ThinningPolicy(recent_window_us=seconds(2),
                                tiers=((None, 4),))

    def test_fully_thinned_middle_never_silently_falls_back(self):
        """With the middle of the timeline fully thinned, asking for a
        thinned instant's own moment must replay-revive exactly that
        instant — not quietly hand back a surviving neighbor."""
        _session, dejaview = record(SEEDS[0], 1)
        storage = dejaview.storage
        report = dejaview.thin_checkpoints(policy=self.AGGRESSIVE)
        thinned = report.thinned_images
        assert len(thinned) >= 2
        # The aggressive single tier drops runs of adjacent instants:
        # find a thinned instant whose predecessor is also thinned, so
        # a silent fallback would have a thinned neighbor to land on.
        ordered = [r.checkpoint_id for r in dejaview.engine.history]
        runs = [image_id for prev, image_id in zip(ordered, ordered[1:])
                if storage.is_thinned(prev) and storage.is_thinned(image_id)]
        assert runs, "policy produced no adjacent thinned instants"
        target = runs[0]
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dejaview.engine.history}
        fallbacks = dejaview.telemetry.metrics.counter("revive.fallbacks")
        before = fallbacks.value
        revived = dejaview.take_me_back(timestamps[target])
        assert revived.checkpoint_id == target
        assert revived.replayed
        assert fallbacks.value == before

    def test_torn_survivor_still_falls_back(self):
        """A torn (crash-damaged) candidate is *not* replayable: the
        scan must skip it with a fallback and land on an earlier
        instant, exactly as before thinning existed."""
        session, dejaview = record(SEEDS[1], 1)
        storage = dejaview.storage
        dejaview.thin_checkpoints(policy=self.AGGRESSIVE)
        newest = dejaview.engine.history[-1].checkpoint_id
        blob = storage._blobs[newest]
        storage._blobs[newest] = blob[:max(1, len(blob) // 3)]
        fallbacks = dejaview.telemetry.metrics.counter("revive.fallbacks")
        before = fallbacks.value
        revived = dejaview.take_me_back(session.clock.now_us)
        assert revived.checkpoint_id != newest
        assert fallbacks.value > before


# ---------------------------------------------------------------------- #
# Golden fixture: a pre-thinned recording's tombstone stream

def _golden_image(checkpoint_id):
    """One deterministic checkpoint image for the golden store."""
    image = CheckpointImage(
        checkpoint_id=checkpoint_id,
        timestamp_us=checkpoint_id * 1_000_000,
        container_name="desktop",
        parent_id=checkpoint_id - 1 if checkpoint_id > 1 else None,
        full=checkpoint_id == 1,
        fs_txn=checkpoint_id,
    )
    image.regions = {1: [{"start": 0x1000_0000, "npages": 4, "prot": 3,
                          "name": "heap"}]}
    for page in range(3):
        key = (1, 0x1000_0000, page)
        image.pages[key] = bytes([checkpoint_id * 16 + page]) * 64
        image.page_locations[key] = checkpoint_id
    return image


def golden_thin_store(page_store=True, thin=True):
    """Three deterministic images; the middle one thinned against the
    first (when ``thin``).  The same construction backs the committed
    ``thinned_v1.bin`` fixture — regenerate it by writing
    :func:`golden_thin_export` bytes."""
    storage = CheckpointStorage(page_store=page_store)
    for checkpoint_id in (1, 2, 3):
        storage.store(_golden_image(checkpoint_id), charge_time=False)
    if thin:
        storage.thin(2, anchor_id=1, timestamp_us=2_000_000,
                     framebuffer_sha1="f" * 40)
    return storage


def golden_thin_log(storage):
    """A minimal event-log segment anchoring the golden store's three
    instants (what a thinned revive would replay through)."""
    tap = RecordingTap(meta={"scenario": "golden-thin", "units": 3,
                             "name": "gold"})
    now = 0
    for checkpoint_id in (1, 2, 3):
        now = checkpoint_id * 1_000_000
        tap.clock(1_000_000, now)
        fingerprint = storage.blob_fingerprint(checkpoint_id) \
            if checkpoint_id in storage \
            else storage.tombstone_of(checkpoint_id)["checkpoint_fp"]
        tap.anchor(checkpoint_id, now, "f" * 40, fingerprint)
    tap.close(now)
    return tap.getvalue()


def golden_thin_export():
    intact = golden_thin_store(thin=False)
    thinned = golden_thin_store()
    return thinned.export_tombstones(
        log_data=golden_thin_log(intact))


def _fixture(name):
    with open(os.path.join(DATA_DIR, name), "rb") as handle:
        return handle.read()


class TestGoldenThinFixture:
    """The committed pre-thinned stream must stay readable forever, and
    today's writer must still produce it byte-identically."""

    EXPECTED_TOMBSTONE_KEYS = {"image_id", "anchor_id", "timestamp_us",
                               "checkpoint_fp", "framebuffer_sha1"}

    def test_fixture_parses(self):
        storage = CheckpointStorage()
        loaded, log_data = storage.import_tombstones(
            _fixture("thinned_v1.bin"))
        assert loaded == 1
        assert storage.thinned_ids() == [2]
        tombstone = storage.tombstone_of(2)
        assert set(tombstone) == self.EXPECTED_TOMBSTONE_KEYS
        assert tombstone["anchor_id"] == 1
        assert tombstone["framebuffer_sha1"] == "f" * 40
        # The embedded log segment parses and anchors all three instants.
        assert log_data is not None
        meta, _events, torn, _stopped = prepare_events(bytes(log_data))
        assert torn == 0
        assert meta["scenario"] == "golden-thin"
        assert anchor_ids(bytes(log_data)) == [1, 2, 3]

    def test_fixture_matches_current_serializer(self):
        assert golden_thin_export() == _fixture("thinned_v1.bin")

    def test_intact_image_wins_over_imported_tombstone(self):
        """A tombstone for an image the store still holds intact is not
        imported — exactly the reconcile rule."""
        storage = golden_thin_store(thin=False)
        loaded, _log = storage.import_tombstones(
            _fixture("thinned_v1.bin"))
        assert loaded == 0
        assert not storage.thinned_ids()
        assert 2 in storage

    @pytest.mark.parametrize("page_store", [True, False],
                             ids=["v3-manifests", "v2-blobs"])
    def test_tombstones_load_alongside_untombstoned_images(
            self, page_store):
        """Version compat: tombstone records coexist with untombstoned
        v3 (manifest) and v2 (whole-blob) images in the same store, and
        fsck keeps both sides verified."""
        storage = golden_thin_store(page_store=page_store, thin=False)
        storage.delete(2)  # the image whose tombstone the fixture holds
        loaded, _log = storage.import_tombstones(
            _fixture("thinned_v1.bin"))
        assert loaded == 1
        assert storage.is_thinned(2)
        report = storage.recover()
        assert report["verify_ok"], report
        # Reconcile kept the tombstone: anchor 1 is stored intact.
        assert storage.is_thinned(2)
        for checkpoint_id in (1, 3):
            assert checkpoint_id in storage
            assert storage.blob_ok(checkpoint_id)[0]
            restored = storage.load(checkpoint_id, cached=True,
                                    clock=None)
            assert restored.checkpoint_id == checkpoint_id
