"""Property test: the union mount agrees with a plain dict model.

Random sequences of write/unlink/mkdir operations are applied both to a
:class:`UnionMount` (over a snapshot lower layer) and to a dictionary
model; file contents and listings must agree at every step, and the lower
layer must remain untouched throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import FileSystemError
from repro.fs.lfs import LogStructuredFS
from repro.fs.union import UnionMount

FILES = ["/a.txt", "/b.txt", "/docs/c.txt", "/docs/d.txt"]

_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "append", "unlink"]),
        st.sampled_from(FILES),
        st.binary(min_size=1, max_size=16),
    ),
    max_size=40,
)


def _build_lower():
    clock = VirtualClock()
    lower = LogStructuredFS(clock=clock)
    lower.makedirs("/docs")
    lower.create("/a.txt", b"lower-a")
    lower.create("/docs/c.txt", b"lower-c")
    snap = lower.snapshot()
    return lower, lower.view_at(snap), clock


@settings(max_examples=50, deadline=None)
@given(ops=_ops)
def test_property_union_matches_dict_model(ops):
    lower_fs, lower_view, clock = _build_lower()
    mount = UnionMount(lower_view, clock=clock)
    model = {"/a.txt": b"lower-a", "/docs/c.txt": b"lower-c"}

    for kind, path, data in ops:
        if kind == "write":
            mount.write_file(path, data)
            model[path] = data
        elif kind == "append":
            if path in model:
                mount.write_file(path, data, append=True)
                model[path] = model[path] + data
        elif kind == "unlink":
            if path in model:
                mount.unlink(path)
                del model[path]
            else:
                try:
                    mount.unlink(path)
                except FileSystemError:
                    pass

        # Full-state agreement after every operation.
        assert set(mount.walk_files("/")) == set(model)
        for file_path, content in model.items():
            assert mount.read_file(file_path) == content
        # The lower layer never changes.
        assert lower_view.read_file("/a.txt") == b"lower-a"
        assert lower_view.read_file("/docs/c.txt") == b"lower-c"
