"""Integration tests: accessibility layer + indexing daemon (section 4.2)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import IndexError_
from repro.access.daemon import IndexingDaemon
from repro.access.registry import DesktopRegistry
from repro.access.toolkit import AccessibleApp, Role
from repro.index.database import TemporalTextDatabase
from repro.index.tokenizer import tokenize


def make_desktop(use_mirror=True):
    clock = VirtualClock()
    registry = DesktopRegistry(clock)
    database = TemporalTextDatabase(clock)
    app = AccessibleApp("editor", registry, clock, DEFAULT_COSTS)
    window = app.add_node(app.root, Role.WINDOW, name="editor - untitled")
    doc = app.add_node(window, Role.DOCUMENT, name="buffer")
    daemon = IndexingDaemon(registry, database, use_mirror_tree=use_mirror)
    return clock, registry, database, app, window, doc, daemon


class TestTokenizer:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_and_empty(self):
        assert tokenize("x86-64 rocks") == ["x86", "64", "rocks"]
        assert tokenize("") == []
        assert tokenize("!!!") == []


class TestStartupScan:
    def test_mirror_matches_existing_tree(self):
        _clock, _reg, _db, app, _w, _doc, daemon = make_desktop()
        assert daemon.mirror_size() == app.root.subtree_size()

    def test_existing_text_indexed_at_startup(self):
        clock = VirtualClock()
        registry = DesktopRegistry(clock)
        database = TemporalTextDatabase(clock)
        app = AccessibleApp("term", registry, clock, DEFAULT_COSTS)
        node = app.add_node(app.root, Role.TERMINAL, text="boot message")
        IndexingDaemon(registry, database)
        assert len(database.postings_for("boot")) == 1

    def test_inaccessible_app_skipped(self):
        """Apps without accessibility support contribute no text — the
        acknowledged limitation of section 4.2."""
        clock = VirtualClock()
        registry = DesktopRegistry(clock)
        database = TemporalTextDatabase(clock)
        app = AccessibleApp("xpdf", registry, clock, DEFAULT_COSTS,
                            accessible=False)
        app.add_node(app.root, Role.DOCUMENT, text="hidden pdf text")
        IndexingDaemon(registry, database)
        assert database.postings_for("hidden") == ()


class TestEventHandling:
    def test_new_text_indexed(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        node = app.add_node(doc, Role.PARAGRAPH, text="the quick brown fox")
        assert len(db.postings_for("quick")) == 1

    def test_text_change_closes_and_reopens(self):
        clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        node = app.add_node(doc, Role.PARAGRAPH, text="first version")
        clock.advance_us(1000)
        app.set_text(node, "second version")
        first = db.postings_for("first")[0]
        second = db.postings_for("second")[0]
        assert first.end_us is not None
        assert second.end_us is None
        assert first.end_us <= second.start_us

    def test_node_removal_closes_subtree_occurrences(self):
        clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        para = app.add_node(doc, Role.PARAGRAPH, text="parent text")
        child = app.add_node(para, Role.TEXT, text="child text")
        clock.advance_us(500)
        app.remove_node(para)
        for occ in db.all_occurrences():
            assert occ.end_us is not None

    def test_window_context_recorded(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        app.add_node(doc, Role.PARAGRAPH, text="contextful words")
        occ = db.postings_for("contextful")[0]
        assert occ.app == "editor"
        assert occ.window == "editor - untitled"

    def test_properties_recorded(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        app.add_node(doc, Role.LINK, text="click here",
                     properties={"is_link": True})
        occ = db.postings_for("click")[0]
        assert occ.properties["is_link"]

    def test_focus_transition_reopens_occurrences(self):
        clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        app.add_node(doc, Role.PARAGRAPH, text="focused words")
        assert not db.postings_for("focused")[-1].focused
        clock.advance_us(1000)
        app.set_focus(True)
        open_occ = [o for o in db.postings_for("focused") if o.end_us is None]
        assert len(open_occ) == 1
        assert open_occ[0].focused

    def test_empty_text_not_indexed(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        before = len(db)
        app.add_node(doc, Role.TEXT, text="   !!! ")
        assert len(db) == before

    def test_event_on_unknown_parent_raises(self):
        _clock, reg, _db, app, _w, _doc, daemon = make_desktop()
        from repro.access.events import AccessibilityEvent, EventType

        bogus = AccessibilityEvent(
            type=EventType.NODE_ADDED,
            app_name="editor",
            node_id=999,
            timestamp_us=0,
            detail={"parent_id": 424242, "role": "text", "name": "",
                    "text": "x", "properties": {}},
        )
        with pytest.raises(IndexError_):
            reg.emit(bogus)


class TestAnnotations:
    def test_select_and_combo_creates_annotation(self):
        """Section 4.4: write text, select it, press the combo key."""
        _clock, _reg, db, app, _w, doc, daemon = make_desktop()
        node = app.add_node(doc, Role.PARAGRAPH,
                            text="remember this important insight")
        app.select_text(node, "important insight")
        app.press_key_combo(IndexingDaemon.ANNOTATE_COMBO)
        occ = db.postings_for("important")[0]
        assert occ.is_annotation
        assert occ.properties["annotation_text"] == "important insight"

    def test_wrong_combo_ignored(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        node = app.add_node(doc, Role.PARAGRAPH, text="some words")
        app.select_text(node, "words")
        app.press_key_combo("ctrl+c")
        assert not db.postings_for("words")[0].is_annotation

    def test_combo_without_selection_ignored(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        app.add_node(doc, Role.PARAGRAPH, text="some words")
        app.press_key_combo(IndexingDaemon.ANNOTATE_COMBO)
        assert not db.postings_for("words")[0].is_annotation

    def test_typed_annotation_is_searchable_text(self):
        """"annotations can be simply created by the user by typing text in
        some visible part of the screen.""" ""
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop()
        app.add_node(doc, Role.TEXT, text="TODO-MARKER-XYZZY review budget")
        assert len(db.postings_for("xyzzy")) == 1


class TestMirrorTreePerformance:
    def test_mirror_daemon_charges_less_per_event_than_naive(self):
        """The section 4.2 optimization: O(1) hash lookup vs re-traversing
        the real tree on every event."""
        clock_m, _r1, _db1, app_m, _w1, doc_m, _d1 = make_desktop(use_mirror=True)
        clock_n, _r2, _db2, app_n, _w2, doc_n, _d2 = make_desktop(use_mirror=False)
        # Grow both trees so the naive traversal has real work to do.
        for i in range(30):
            app_m.add_node(doc_m, Role.TEXT, text="filler %d" % i)
            app_n.add_node(doc_n, Role.TEXT, text="filler %d" % i)
        node_m = app_m.add_node(doc_m, Role.PARAGRAPH, text="seed")
        node_n = app_n.add_node(doc_n, Role.PARAGRAPH, text="seed")
        start_m = clock_m.now_us
        app_m.set_text(node_m, "updated text")
        cost_mirror = clock_m.now_us - start_m
        start_n = clock_n.now_us
        app_n.set_text(node_n, "updated text")
        cost_naive = clock_n.now_us - start_n
        assert cost_mirror * 10 < cost_naive

    def test_naive_daemon_still_indexes_correctly(self):
        _clock, _reg, db, app, _w, doc, _daemon = make_desktop(use_mirror=False)
        node = app.add_node(doc, Role.PARAGRAPH, text="naive but correct")
        assert len(db.postings_for("naive")) >= 1

    def test_shutdown_stops_indexing(self):
        _clock, _reg, db, app, _w, doc, daemon = make_desktop()
        daemon.shutdown()
        app.add_node(doc, Role.TEXT, text="after shutdown")
        assert db.postings_for("shutdown") == ()
