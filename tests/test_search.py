"""Integration tests for the temporal database, queries and search
(sections 4.2 and 4.4)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import IndexError_, QueryError
from repro.common.telemetry import Telemetry
from repro.common.units import seconds
from repro.display.commands import Region, SolidFillCmd
from repro.display.driver import VirtualDisplayDriver
from repro.display.playback import PlaybackEngine
from repro.display.recorder import DisplayRecorder
from repro.index.database import TemporalTextDatabase
from repro.index.query import Clause, Query
from repro.index.search import (
    ORDER_FREQUENCY,
    ORDER_PERSISTENCE,
    SearchEngine,
)


from repro.common.costs import CostModel

#: Cost model with free index operations, so scripted tests can assert
#: exact timestamps (the ingest cost otherwise nudges the clock by a few
#: microseconds per insert).
FREE_INDEX = CostModel(index_token_us=0, index_query_term_us=0,
                       index_posting_us=0)


def _db(clock=None):
    clock = clock if clock is not None else VirtualClock()
    return TemporalTextDatabase(clock, costs=FREE_INDEX)


class TestDatabase:
    def test_open_records_context(self):
        db = _db()
        occ = db.open_occurrence(1, "Hello World", app="firefox",
                                 window="news", focused=True)
        assert occ.tokens == frozenset({"hello", "world"})
        assert occ.focused and occ.app == "firefox"

    def test_open_closes_previous_for_node(self):
        db = _db()
        first = db.open_occurrence(1, "one", app="a")
        db.clock.advance_us(100)
        second = db.open_occurrence(1, "two", app="a")
        assert first.end_us == second.start_us

    def test_tokenless_text_ignored(self):
        db = _db()
        assert db.open_occurrence(1, "!!!", app="a") is None

    def test_close_unknown_node_is_noop(self):
        db = _db()
        assert db.close_occurrence(42) is None

    def test_annotate_requires_visible_text(self):
        db = _db()
        with pytest.raises(IndexError_):
            db.annotate_node(1)

    def test_interval_open_occurrence_counts_to_now(self):
        db = _db()
        occ = db.open_occurrence(1, "still here", app="a")
        db.clock.advance_us(5000)
        assert occ.interval(db.clock.now_us) == (0, 5000)

    def test_vocabulary(self):
        db = _db()
        db.open_occurrence(1, "alpha beta", app="a")
        assert db.vocabulary() == ["alpha", "beta"]

    def test_postings_charge_clock(self):
        # Default (non-free) cost model: queries must consume time.
        db = TemporalTextDatabase(VirtualClock())
        db.open_occurrence(1, "word", app="a")
        before = db.clock.now_us
        db.postings_for("word")
        assert db.clock.now_us > before

    def test_postings_are_immutable(self):
        db = _db()
        db.open_occurrence(1, "alpha", app="a")
        postings = db.postings_for("alpha")
        assert isinstance(postings, tuple)
        with pytest.raises((TypeError, AttributeError)):
            postings.append(None)

    def test_mutation_epoch_bumps_on_writes(self):
        db = _db()
        epoch0 = db.mutation_epoch
        db.open_occurrence(1, "alpha", app="a")
        epoch1 = db.mutation_epoch
        assert epoch1 > epoch0
        db.annotate_node(1)
        epoch2 = db.mutation_epoch
        assert epoch2 > epoch1
        db.close_occurrence(1)
        assert db.mutation_epoch > epoch2
        # Reads never bump the epoch.
        before = db.mutation_epoch
        db.postings_for("alpha")
        db.occurrences_for_node(1)
        assert db.mutation_epoch == before

    def test_noop_reopen_is_deduplicated(self):
        db = _db()
        first = db.open_occurrence(1, "same text", app="a", window="w",
                                   focused=True)
        db.clock.advance_us(1000)
        epoch = db.mutation_epoch
        again = db.open_occurrence(1, "same text", app="a", window="w",
                                   focused=True)
        assert again is first
        assert first.end_us is None  # still the same open occurrence
        assert len(db) == 1
        assert db.mutation_epoch == epoch

    def test_context_change_still_reopens(self):
        db = _db()
        first = db.open_occurrence(1, "same text", app="a", focused=False)
        db.clock.advance_us(1000)
        second = db.open_occurrence(1, "same text", app="a", focused=True)
        assert second is not first
        assert first.end_us == second.start_us


class TestEpochPartitioning:
    def _long_db(self, costs=FREE_INDEX, occurrences=100, gap_us=seconds(30)):
        """Closed occurrences of 'needle' spread far apart in time."""
        clock = VirtualClock()
        telemetry = Telemetry(clock)
        db = TemporalTextDatabase(clock, costs=costs, telemetry=telemetry)
        for i in range(occurrences):
            db.open_occurrence(1, "needle item %d" % i, app="a")
            clock.advance_us(gap_us // 2)
            db.close_occurrence(1)
            clock.advance_us(gap_us - gap_us // 2)
        return clock, db, telemetry

    def test_windowed_postings_match_full_scan_filtered(self):
        clock, db, _tel = self._long_db()
        window = (int(clock.now_us * 0.8), clock.now_us)
        full = db.postings_for("needle")
        windowed = db.postings_for("needle", window=window)
        overlapping = {
            occ.occ_id for occ in full
            if occ.start_us < window[1]
            and (occ.end_us is None or occ.end_us > window[0])
        }
        returned = {occ.occ_id for occ in windowed}
        # Bucket granularity may add near-window occurrences, never lose
        # one that overlaps the window.
        assert overlapping <= returned
        assert len(windowed) < len(full)

    def test_windowed_postings_charge_less(self):
        clock, db, _tel = self._long_db(costs=CostModel())
        window = (int(clock.now_us * 0.9), clock.now_us)
        watch = clock.stopwatch()
        db.postings_for("needle")
        full_cost = watch.restart()
        db.postings_for("needle", window=window)
        windowed_cost = watch.elapsed_us
        assert windowed_cost < full_cost

    def test_open_occurrence_found_by_any_later_window(self):
        clock, db, _tel = self._long_db()
        db.open_occurrence(2, "needle persists", app="a")
        clock.advance_us(seconds(600))
        window = (clock.now_us - seconds(10), clock.now_us)
        windowed = db.postings_for("needle", window=window)
        assert any(occ.end_us is None for occ in windowed)

    def test_pruning_counters(self):
        clock, db, telemetry = self._long_db()
        metrics = telemetry.metrics
        skipped0 = metrics.counter("index.buckets_skipped").value
        pruned0 = metrics.counter("index.postings_pruned").value
        db.postings_for("needle", window=(clock.now_us - seconds(60),
                                          clock.now_us))
        assert metrics.counter("index.buckets_skipped").value > skipped0
        assert metrics.counter("index.postings_pruned").value > pruned0

    def test_occurrences_for_node_avoids_full_table_scan(self):
        """Regression: the per-node secondary index means looking up one
        node's occurrences charges per occurrence returned, never a
        full-table scan over all occurrences."""
        clock = VirtualClock()
        costs = CostModel()
        db = TemporalTextDatabase(clock, costs=costs)
        for i in range(200):
            db.open_occurrence(100 + i, "filler row %d" % i, app="a")
        for text in ("one", "two", "three"):
            db.open_occurrence(1, text, app="a")
        watch = clock.stopwatch()
        occs = db.occurrences_for_node(1)
        cost = watch.elapsed_us
        assert len(occs) == 3
        assert {o.text for o in occs} == {"one", "two", "three"}
        # Charged for the three returned rows only — far below even a
        # single term lookup, and independent of the 200 other rows.
        assert cost == int(round(len(occs) * costs.index_posting_us))
        assert cost < costs.index_query_term_us

    def test_window_key_stable_within_epoch(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, epoch_width_us=seconds(60))
        key_a = db.window_key((seconds(61), seconds(100)))
        key_b = db.window_key((seconds(70), seconds(119)))
        assert key_a == key_b == (1, 1)
        assert db.window_key(None) is None
        assert db.window_key((seconds(30), None)) == (0, None)


class TestQueryModel:
    def test_keywords_constructor_tokenizes(self):
        q = Query.keywords("Linux Kernel", app="firefox")
        assert q.clauses[0].all_of == ("linux", "kernel")
        assert q.clauses[0].app == "firefox"

    def test_empty_clause_rejected(self):
        with pytest.raises(QueryError):
            Clause()

    def test_non_indexable_term_rejected(self):
        with pytest.raises(QueryError):
            Clause(all_of="!!!")

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query(clauses=())

    def test_empty_time_range_rejected(self):
        with pytest.raises(QueryError):
            Query.keywords("x", start_us=10, end_us=10)

    def test_annotation_query(self):
        q = Query.annotations()
        assert q.clauses[0].annotations_only


class TestSearchEvaluation:
    def _timeline_db(self):
        """A scripted desktop: paper text and a web page overlapping."""
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        # t=0: web page appears in firefox.
        db.open_occurrence(1, "memex vannevar bush article", app="firefox",
                           window="history of computing")
        clock.advance_us(seconds(10))
        # t=10: paper opened in the editor.
        db.open_occurrence(2, "dejaview personal virtual computer recorder",
                           app="editor", window="paper.pdf", focused=True)
        clock.advance_us(seconds(10))
        # t=20: web page closed.
        db.close_occurrence(1)
        clock.advance_us(seconds(10))
        # t=30: paper closed.
        db.close_occurrence(2)
        clock.advance_us(seconds(5))
        return clock, db

    def test_single_keyword(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.keywords("memex"))
        assert intervals == [(0, seconds(20))]

    def test_and_across_terms(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.keywords("memex bush"))
        assert intervals == [(0, seconds(20))]

    def test_temporal_relationship_across_apps(self):
        """The paper's motivating query: when was the paper open while the
        web page was also on screen?"""
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        query = Query(
            clauses=(
                Clause(all_of="dejaview", app="editor"),
                Clause(all_of="memex", app="firefox"),
            )
        )
        intervals = engine.satisfied_intervals(query)
        assert intervals == [(seconds(10), seconds(20))]

    def test_app_constraint_excludes_other_apps(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="memex", app="editor"),))
        assert engine.satisfied_intervals(q) == []

    def test_focused_only(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="dejaview", focused_only=True),))
        assert engine.satisfied_intervals(q) == [(seconds(10), seconds(30))]
        q2 = Query(clauses=(Clause(all_of="memex", focused_only=True),))
        assert engine.satisfied_intervals(q2) == []

    def test_none_of_subtracts(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="memex", none_of="dejaview"),))
        assert engine.satisfied_intervals(q) == [(0, seconds(10))]

    def test_any_of(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(any_of=["memex", "dejaview"]),))
        assert engine.satisfied_intervals(q) == [(0, seconds(30))]

    def test_time_range_limits(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query.keywords("memex", start_us=seconds(5), end_us=seconds(12))
        assert engine.satisfied_intervals(q) == [(seconds(5), seconds(12))]

    def test_open_occurrence_satisfied_until_now(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        db.open_occurrence(1, "persistent", app="a")
        clock.advance_us(seconds(3))
        engine = SearchEngine(db)
        assert engine.satisfied_intervals(Query.keywords("persistent")) == [
            (0, seconds(3))
        ]

    def test_missing_term_no_results(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        assert engine.satisfied_intervals(Query.keywords("absent")) == []

    def test_annotation_search(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        db.open_occurrence(1, "plain text", app="a")
        db.open_occurrence(2, "important note", app="a")
        db.annotate_node(2)
        clock.advance_us(seconds(1))
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.annotations())
        assert intervals == [(0, seconds(1))]


class TestSearchResults:
    def _scripted(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        # A word visible briefly, then again for a long time.
        db.open_occurrence(1, "ephemeral flash", app="a")
        clock.advance_us(seconds(1))
        db.close_occurrence(1)
        clock.advance_us(seconds(10))
        db.open_occurrence(2, "ephemeral persists", app="a")
        clock.advance_us(seconds(100))
        db.close_occurrence(2)
        return clock, db

    def test_results_chronological_by_default(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("ephemeral"), render=False)
        assert len(results) == 2
        assert results[0].timestamp_us < results[1].timestamp_us

    def test_persistence_ranking_prefers_brief(self):
        """"more interested in the records where the text appeared only
        briefly" (section 4.2)."""
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(
            Query.keywords("ephemeral"), order_by=ORDER_PERSISTENCE,
            render=False,
        )
        assert results[0].substream.duration_us < results[1].substream.duration_us

    def test_frequency_ranking(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(
            Query.keywords("ephemeral"), order_by=ORDER_FREQUENCY, render=False
        )
        assert len(results) == 2
        assert results[0].score >= results[1].score

    def test_limit(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("ephemeral"), render=False,
                                limit=1)
        assert len(results) == 1

    def test_snippet_contains_matched_text(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("flash"), render=False)
        assert "flash" in results[0].snippet


class TestPlannerAndCache:
    def _rig(self, costs=FREE_INDEX):
        """Database and engine sharing one telemetry sink, so database
        counters (postings_scanned) and engine counters (cache hits,
        planner short-circuits) are visible together."""
        clock = VirtualClock()
        telemetry = Telemetry(clock)
        db = TemporalTextDatabase(clock, costs=costs, telemetry=telemetry)
        engine = SearchEngine(db, playback=None, telemetry=telemetry)
        return clock, db, engine, telemetry.metrics

    def test_rarest_first_skips_common_term_postings(self):
        """Two rare disjoint conjuncts empty the intersection before the
        common term's long posting list is ever retrieved."""
        clock, db, engine, metrics = self._rig()
        for i in range(300):
            db.open_occurrence(1000 + i, "common filler %d" % i, app="a")
        db.open_occurrence(1, "rareone marker", app="a")
        clock.advance_us(seconds(1))
        db.close_occurrence(1)
        clock.advance_us(seconds(5))
        db.open_occurrence(2, "raretwo marker", app="a")
        clock.advance_us(seconds(1))
        db.close_occurrence(2)
        scanned = metrics.counter("index.postings_scanned")
        shortcircuits = metrics.counter("index.planner_shortcircuits")
        before_scanned = scanned.value
        before_sc = shortcircuits.value
        q = Query(clauses=(Clause(all_of=["common", "rareone", "raretwo"]),))
        assert engine.search(q, render=False) == []
        # Only the two single-posting rare terms were scanned; the
        # 300-posting common term never was.
        assert scanned.value - before_scanned == 2
        assert shortcircuits.value > before_sc

    def test_zero_posting_conjunct_retrieves_nothing(self):
        clock, db, engine, metrics = self._rig()
        for i in range(50):
            db.open_occurrence(1000 + i, "common filler %d" % i, app="a")
        scanned = metrics.counter("index.postings_scanned")
        misses = metrics.counter("index.interval_cache_misses")
        before_scanned, before_misses = scanned.value, misses.value
        q = Query(clauses=(Clause(all_of=["common", "neverindexed"]),))
        assert engine.search(q, render=False) == []
        assert scanned.value == before_scanned
        assert misses.value == before_misses

    @staticmethod
    def _fingerprint(results):
        return [
            (r.timestamp_us, r.substream.start_us, r.substream.end_us,
             r.snippet, r.score)
            for r in results
        ]

    def test_repeat_query_hits_cache_bit_identically(self):
        clock, db, engine, metrics = self._rig()
        db.open_occurrence(1, "memex trail", app="firefox")
        clock.advance_us(seconds(2))
        db.close_occurrence(1)
        clock.advance_us(seconds(1))
        hits = metrics.counter("index.interval_cache_hits")
        scanned = metrics.counter("index.postings_scanned")
        q = Query.keywords("memex trail")
        cold = engine.search(q, render=False)
        before_hits, before_scanned = hits.value, scanned.value
        warm = engine.search(q, render=False)
        assert hits.value > before_hits
        assert scanned.value == before_scanned  # no postings rescanned
        assert self._fingerprint(warm) == self._fingerprint(cold)

    def test_cache_entry_tracks_open_occurrences_across_time(self):
        """A cached term with a still-open occurrence stays correct as the
        clock advances: open starts are materialized per query."""
        clock, db, engine, metrics = self._rig()
        db.open_occurrence(1, "livetext", app="a")
        clock.advance_us(seconds(2))
        first = engine.satisfied_intervals(Query.keywords("livetext"))
        assert first == [(0, seconds(2))]
        clock.advance_us(seconds(3))
        hits = metrics.counter("index.interval_cache_hits")
        before = hits.value
        second = engine.satisfied_intervals(Query.keywords("livetext"))
        assert hits.value > before  # served from cache...
        assert second == [(0, seconds(5))]  # ...yet extends to the new now

    def test_mutation_invalidates_cache(self):
        clock, db, engine, metrics = self._rig()
        db.open_occurrence(1, "alpha", app="a")
        clock.advance_us(seconds(1))
        db.close_occurrence(1)
        q = Query.keywords("alpha")
        assert engine.satisfied_intervals(q) == [(0, seconds(1))]
        clock.advance_us(seconds(4))
        db.open_occurrence(2, "alpha again", app="a")
        clock.advance_us(seconds(1))
        misses = metrics.counter("index.interval_cache_misses")
        before = misses.value
        # The write bumped the mutation epoch: the stale entry is replaced
        # and the new occurrence is visible.
        assert engine.satisfied_intervals(q) == [
            (0, seconds(1)), (seconds(5), seconds(6))
        ]
        assert misses.value > before

    def test_windowed_search_scans_fewer_postings(self):
        clock, db, engine, metrics = self._rig()
        for i in range(200):
            db.open_occurrence(1, "beacon %d" % i, app="a")
            clock.advance_us(seconds(30))
            db.close_occurrence(1)
            clock.advance_us(seconds(30))
        end = clock.now_us
        scanned = metrics.counter("index.postings_scanned")
        before = scanned.value
        results = engine.search(
            Query.keywords("beacon", start_us=int(end * 0.95), end_us=end),
            render=False,
        )
        assert results
        assert scanned.value - before < db.posting_count("beacon") // 4

    def _frequency_db(self, costs):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=costs)
        for node in (1, 2, 3):
            db.open_occurrence(node, "repeated token %d" % node, app="a")
            clock.advance_us(seconds(2))
        for node in (1, 2, 3):
            db.close_occurrence(node)
        clock.advance_us(seconds(1))
        return clock, db

    def test_frequency_ranking_charges_no_extra_postings(self):
        """Regression for the seed's double-charge: ORDER_FREQUENCY used to
        re-run postings_for per result; now scores come from the capture,
        so a frequency search costs exactly what a chronological one does."""
        costs = CostModel()
        clock_c, db_c = self._frequency_db(costs)
        clock_f, db_f = self._frequency_db(costs)
        q = Query.keywords("repeated")
        watch_c = clock_c.stopwatch()
        chrono = SearchEngine(db_c).search(q, render=False)
        cost_chrono = watch_c.elapsed_us
        watch_f = clock_f.stopwatch()
        ranked = SearchEngine(db_f).search(q, order_by=ORDER_FREQUENCY,
                                           render=False)
        cost_freq = watch_f.elapsed_us
        assert len(chrono) == len(ranked) > 0
        assert ranked[0].score > 0
        assert cost_freq == cost_chrono

    def test_snippet_uses_capture_not_rescans(self):
        """Snippets are built from the evaluation capture: after the
        evaluation pass, constructing N results charges no further
        posting scans."""
        clock, db, engine, metrics = self._rig(costs=CostModel())
        for i in range(10):
            db.open_occurrence(1, "needle fragment %d" % i, app="a")
            clock.advance_us(seconds(2))
            db.close_occurrence(1)
            clock.advance_us(seconds(2))
        scanned = metrics.counter("index.postings_scanned")
        results = engine.search(Query.keywords("needle"), render=False)
        per_query_scans = scanned.value
        assert len(results) == 10
        assert all("needle" in r.snippet for r in results)
        # One evaluation pass scanned the term's postings exactly once —
        # not once per result (the seed charged 1 + len(results) scans).
        assert per_query_scans == db.posting_count("needle")


class TestScreenshotRendering:
    def _full_rig(self):
        """Database + display record sharing one clock."""
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        driver = VirtualDisplayDriver(64, 48, clock=clock)
        recorder = DisplayRecorder(64, 48, clock=clock)
        driver.attach_sink(recorder)
        # t=0: blue screen + text A.
        driver.submit(SolidFillCmd(Region(0, 0, 64, 48), 0x0000FF))
        driver.flush()
        db.open_occurrence(1, "alpha content", app="a")
        clock.advance_us(seconds(5))
        # t=5: red screen + text B.
        driver.submit(SolidFillCmd(Region(0, 0, 64, 48), 0xFF0000))
        driver.flush()
        db.close_occurrence(1)
        db.open_occurrence(2, "beta content", app="a")
        clock.advance_us(seconds(5))
        db.close_occurrence(2)
        record = recorder.finalize()
        playback = PlaybackEngine(record, clock=VirtualClock())
        return clock, db, playback, driver

    def test_results_carry_screenshots(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        results = engine.search(Query.keywords("alpha"))
        assert results[0].screenshot is not None
        # The screenshot shows the blue screen from the alpha period.
        assert int(results[0].screenshot.pixels[10, 10]) == 0x0000FF

    def test_substream_first_last_screenshots(self):
        """Contiguous satisfaction renders as a first-last pair."""
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        q = Query(clauses=(Clause(any_of=["alpha", "beta"]),))
        results = engine.search(q)
        sub = results[0].substream
        assert sub.first_screenshot is not None
        assert sub.last_screenshot is not None
        assert int(sub.first_screenshot.pixels[0, 0]) == 0x0000FF
        assert int(sub.last_screenshot.pixels[0, 0]) == 0xFF0000

    def test_repeat_search_hits_screenshot_cache(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        engine.search(Query.keywords("alpha"))
        engine.search(Query.keywords("alpha"))
        assert engine.cache_stats["hits"] >= 1

    def test_render_disabled_skips_screenshots(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        results = engine.search(Query.keywords("alpha"), render=False)
        assert results[0].screenshot is None
