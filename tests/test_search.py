"""Integration tests for the temporal database, queries and search
(sections 4.2 and 4.4)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import IndexError_, QueryError
from repro.common.units import seconds
from repro.display.commands import Region, SolidFillCmd
from repro.display.driver import VirtualDisplayDriver
from repro.display.playback import PlaybackEngine
from repro.display.recorder import DisplayRecorder
from repro.index.database import TemporalTextDatabase
from repro.index.query import Clause, Query
from repro.index.search import (
    ORDER_FREQUENCY,
    ORDER_PERSISTENCE,
    SearchEngine,
)


from repro.common.costs import CostModel

#: Cost model with free index operations, so scripted tests can assert
#: exact timestamps (the ingest cost otherwise nudges the clock by a few
#: microseconds per insert).
FREE_INDEX = CostModel(index_token_us=0, index_query_term_us=0,
                       index_posting_us=0)


def _db(clock=None):
    clock = clock if clock is not None else VirtualClock()
    return TemporalTextDatabase(clock, costs=FREE_INDEX)


class TestDatabase:
    def test_open_records_context(self):
        db = _db()
        occ = db.open_occurrence(1, "Hello World", app="firefox",
                                 window="news", focused=True)
        assert occ.tokens == frozenset({"hello", "world"})
        assert occ.focused and occ.app == "firefox"

    def test_open_closes_previous_for_node(self):
        db = _db()
        first = db.open_occurrence(1, "one", app="a")
        db.clock.advance_us(100)
        second = db.open_occurrence(1, "two", app="a")
        assert first.end_us == second.start_us

    def test_tokenless_text_ignored(self):
        db = _db()
        assert db.open_occurrence(1, "!!!", app="a") is None

    def test_close_unknown_node_is_noop(self):
        db = _db()
        assert db.close_occurrence(42) is None

    def test_annotate_requires_visible_text(self):
        db = _db()
        with pytest.raises(IndexError_):
            db.annotate_node(1)

    def test_interval_open_occurrence_counts_to_now(self):
        db = _db()
        occ = db.open_occurrence(1, "still here", app="a")
        db.clock.advance_us(5000)
        assert occ.interval(db.clock.now_us) == (0, 5000)

    def test_vocabulary(self):
        db = _db()
        db.open_occurrence(1, "alpha beta", app="a")
        assert db.vocabulary() == ["alpha", "beta"]

    def test_postings_charge_clock(self):
        # Default (non-free) cost model: queries must consume time.
        db = TemporalTextDatabase(VirtualClock())
        db.open_occurrence(1, "word", app="a")
        before = db.clock.now_us
        db.postings_for("word")
        assert db.clock.now_us > before


class TestQueryModel:
    def test_keywords_constructor_tokenizes(self):
        q = Query.keywords("Linux Kernel", app="firefox")
        assert q.clauses[0].all_of == ("linux", "kernel")
        assert q.clauses[0].app == "firefox"

    def test_empty_clause_rejected(self):
        with pytest.raises(QueryError):
            Clause()

    def test_non_indexable_term_rejected(self):
        with pytest.raises(QueryError):
            Clause(all_of="!!!")

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query(clauses=())

    def test_empty_time_range_rejected(self):
        with pytest.raises(QueryError):
            Query.keywords("x", start_us=10, end_us=10)

    def test_annotation_query(self):
        q = Query.annotations()
        assert q.clauses[0].annotations_only


class TestSearchEvaluation:
    def _timeline_db(self):
        """A scripted desktop: paper text and a web page overlapping."""
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        # t=0: web page appears in firefox.
        db.open_occurrence(1, "memex vannevar bush article", app="firefox",
                           window="history of computing")
        clock.advance_us(seconds(10))
        # t=10: paper opened in the editor.
        db.open_occurrence(2, "dejaview personal virtual computer recorder",
                           app="editor", window="paper.pdf", focused=True)
        clock.advance_us(seconds(10))
        # t=20: web page closed.
        db.close_occurrence(1)
        clock.advance_us(seconds(10))
        # t=30: paper closed.
        db.close_occurrence(2)
        clock.advance_us(seconds(5))
        return clock, db

    def test_single_keyword(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.keywords("memex"))
        assert intervals == [(0, seconds(20))]

    def test_and_across_terms(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.keywords("memex bush"))
        assert intervals == [(0, seconds(20))]

    def test_temporal_relationship_across_apps(self):
        """The paper's motivating query: when was the paper open while the
        web page was also on screen?"""
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        query = Query(
            clauses=(
                Clause(all_of="dejaview", app="editor"),
                Clause(all_of="memex", app="firefox"),
            )
        )
        intervals = engine.satisfied_intervals(query)
        assert intervals == [(seconds(10), seconds(20))]

    def test_app_constraint_excludes_other_apps(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="memex", app="editor"),))
        assert engine.satisfied_intervals(q) == []

    def test_focused_only(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="dejaview", focused_only=True),))
        assert engine.satisfied_intervals(q) == [(seconds(10), seconds(30))]
        q2 = Query(clauses=(Clause(all_of="memex", focused_only=True),))
        assert engine.satisfied_intervals(q2) == []

    def test_none_of_subtracts(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(all_of="memex", none_of="dejaview"),))
        assert engine.satisfied_intervals(q) == [(0, seconds(10))]

    def test_any_of(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query(clauses=(Clause(any_of=["memex", "dejaview"]),))
        assert engine.satisfied_intervals(q) == [(0, seconds(30))]

    def test_time_range_limits(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        q = Query.keywords("memex", start_us=seconds(5), end_us=seconds(12))
        assert engine.satisfied_intervals(q) == [(seconds(5), seconds(12))]

    def test_open_occurrence_satisfied_until_now(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        db.open_occurrence(1, "persistent", app="a")
        clock.advance_us(seconds(3))
        engine = SearchEngine(db)
        assert engine.satisfied_intervals(Query.keywords("persistent")) == [
            (0, seconds(3))
        ]

    def test_missing_term_no_results(self):
        clock, db = self._timeline_db()
        engine = SearchEngine(db)
        assert engine.satisfied_intervals(Query.keywords("absent")) == []

    def test_annotation_search(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        db.open_occurrence(1, "plain text", app="a")
        db.open_occurrence(2, "important note", app="a")
        db.annotate_node(2)
        clock.advance_us(seconds(1))
        engine = SearchEngine(db)
        intervals = engine.satisfied_intervals(Query.annotations())
        assert intervals == [(0, seconds(1))]


class TestSearchResults:
    def _scripted(self):
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        # A word visible briefly, then again for a long time.
        db.open_occurrence(1, "ephemeral flash", app="a")
        clock.advance_us(seconds(1))
        db.close_occurrence(1)
        clock.advance_us(seconds(10))
        db.open_occurrence(2, "ephemeral persists", app="a")
        clock.advance_us(seconds(100))
        db.close_occurrence(2)
        return clock, db

    def test_results_chronological_by_default(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("ephemeral"), render=False)
        assert len(results) == 2
        assert results[0].timestamp_us < results[1].timestamp_us

    def test_persistence_ranking_prefers_brief(self):
        """"more interested in the records where the text appeared only
        briefly" (section 4.2)."""
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(
            Query.keywords("ephemeral"), order_by=ORDER_PERSISTENCE,
            render=False,
        )
        assert results[0].substream.duration_us < results[1].substream.duration_us

    def test_frequency_ranking(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(
            Query.keywords("ephemeral"), order_by=ORDER_FREQUENCY, render=False
        )
        assert len(results) == 2
        assert results[0].score >= results[1].score

    def test_limit(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("ephemeral"), render=False,
                                limit=1)
        assert len(results) == 1

    def test_snippet_contains_matched_text(self):
        clock, db = self._scripted()
        engine = SearchEngine(db)
        results = engine.search(Query.keywords("flash"), render=False)
        assert "flash" in results[0].snippet


class TestScreenshotRendering:
    def _full_rig(self):
        """Database + display record sharing one clock."""
        clock = VirtualClock()
        db = TemporalTextDatabase(clock, costs=FREE_INDEX)
        driver = VirtualDisplayDriver(64, 48, clock=clock)
        recorder = DisplayRecorder(64, 48, clock=clock)
        driver.attach_sink(recorder)
        # t=0: blue screen + text A.
        driver.submit(SolidFillCmd(Region(0, 0, 64, 48), 0x0000FF))
        driver.flush()
        db.open_occurrence(1, "alpha content", app="a")
        clock.advance_us(seconds(5))
        # t=5: red screen + text B.
        driver.submit(SolidFillCmd(Region(0, 0, 64, 48), 0xFF0000))
        driver.flush()
        db.close_occurrence(1)
        db.open_occurrence(2, "beta content", app="a")
        clock.advance_us(seconds(5))
        db.close_occurrence(2)
        record = recorder.finalize()
        playback = PlaybackEngine(record, clock=VirtualClock())
        return clock, db, playback, driver

    def test_results_carry_screenshots(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        results = engine.search(Query.keywords("alpha"))
        assert results[0].screenshot is not None
        # The screenshot shows the blue screen from the alpha period.
        assert int(results[0].screenshot.pixels[10, 10]) == 0x0000FF

    def test_substream_first_last_screenshots(self):
        """Contiguous satisfaction renders as a first-last pair."""
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        q = Query(clauses=(Clause(any_of=["alpha", "beta"]),))
        results = engine.search(q)
        sub = results[0].substream
        assert sub.first_screenshot is not None
        assert sub.last_screenshot is not None
        assert int(sub.first_screenshot.pixels[0, 0]) == 0x0000FF
        assert int(sub.last_screenshot.pixels[0, 0]) == 0xFF0000

    def test_repeat_search_hits_screenshot_cache(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        engine.search(Query.keywords("alpha"))
        engine.search(Query.keywords("alpha"))
        assert engine.cache_stats["hits"] >= 1

    def test_render_disabled_skips_screenshots(self):
        clock, db, playback, _driver = self._full_rig()
        engine = SearchEngine(db, playback=playback, clock=clock)
        results = engine.search(Query.keywords("alpha"), render=False)
        assert results[0].screenshot is None
