"""Determinism audit: no wall-clock or ambient-entropy leaks.

The replay-divergence oracle (and every fleet isolation suite before it)
rests on the vex substrate being deterministic by construction: all time
comes from the virtual clock, all randomness from seeded ``Random``
instances.  This lint walks the simulated packages and fails on any call
that would smuggle host nondeterminism in — ``time.time()``, the global
``random`` module, ``os.urandom``, ``uuid`` — so a leak becomes a named
test failure instead of a flaky replay divergence.

Comments and string literals are excluded via ``tokenize``, so talking
*about* wall time stays legal.  ``random.Random(seed)`` is sanctioned:
seeded instances are the RNG seam the replay log records.
"""

import io
import os
import re
import token
import tokenize

import pytest

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir,
                        "src", "repro")

#: Packages that run inside the simulation and must be deterministic.
#: (common/ hosts the sanctioned seams: the virtual clock and telemetry's
#: explicit wall-time measurement.)
AUDITED_PACKAGES = ["vex", "desktop", "workloads", "replay", "server",
                    "display", "checkpoint", "index"]

BANNED = [
    (re.compile(r"\btime\s*\.\s*(time|time_ns|monotonic|monotonic_ns|"
                r"perf_counter|perf_counter_ns|sleep)\b"),
     "wall-clock time (use the session's VirtualClock)"),
    (re.compile(r"\bdatetime\s*\.\s*(now|utcnow|today)\b"),
     "wall-clock datetime"),
    (re.compile(r"\brandom\s*\.\s*(random|randrange|randint|choice|"
                r"choices|shuffle|sample|uniform|gauss|seed|"
                r"getrandbits)\b"),
     "global random module (use a seeded random.Random instance)"),
    (re.compile(r"\bos\s*\.\s*urandom\b"), "ambient entropy"),
    (re.compile(r"\buuid\s*\.\s*uuid\d\b"), "uuid generation"),
]


def _audited_files():
    for package in AUDITED_PACKAGES:
        root = os.path.join(SRC_ROOT, package)
        assert os.path.isdir(root), "audited package %s vanished" % package
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _code_lines(path):
    """Source lines with comments and string literals blanked, keyed by
    line number — bans apply to code, not to prose about wall time."""
    with open(path, "rb") as handle:
        source = handle.read()
    lines = {}
    tokens = tokenize.tokenize(io.BytesIO(source).readline)
    for tok in tokens:
        if tok.type in (token.COMMENT, token.STRING, tokenize.COMMENT,
                        tokenize.STRING):
            continue
        if tok.start[0] != tok.end[0]:
            continue
        row = tok.start[0]
        lines.setdefault(row, []).append(tok.string)
    return {row: " ".join(parts) for row, parts in lines.items()}


def test_no_nondeterminism_leaks():
    offenders = []
    for path in _audited_files():
        rel = os.path.relpath(path, os.path.join(SRC_ROOT, os.pardir))
        for row, text in sorted(_code_lines(path).items()):
            for pattern, why in BANNED:
                if pattern.search(text):
                    offenders.append("%s:%d: %s [%s]"
                                     % (rel, row, text.strip(), why))
    assert not offenders, (
        "nondeterminism leaked into the simulated substrate:\n  "
        + "\n  ".join(offenders))


def test_audit_actually_detects_leaks(tmp_path):
    """The lint must catch each banned family (guards against the regex
    rotting into a tautology)."""
    samples = [
        "now = time.time()",
        "jitter = random.random()",
        "pick = random . choice(items)",
        "stamp = datetime.now()",
        "key = os.urandom(16)",
        "ident = uuid.uuid4()",
    ]
    for sample in samples:
        assert any(pattern.search(sample) for pattern, _why in BANNED), \
            "lint failed to flag %r" % sample
    # ...while the sanctioned seeded-RNG seam stays legal.
    for legal in ["rng = random.Random(seed)", "value = self._rng.random()",
                  "clock.advance_us(10)"]:
        assert not any(pattern.search(legal) for pattern, _why in BANNED), \
            "lint wrongly flags %r" % legal


def test_audit_covers_source_files():
    """The walker really visits the tree (a moved package must not
    silently shrink the audit to nothing)."""
    files = list(_audited_files())
    assert len(files) >= 20, files


@pytest.mark.parametrize("package", AUDITED_PACKAGES)
def test_audited_packages_exist(package):
    assert os.path.isdir(os.path.join(SRC_ROOT, package))
