"""Tests for the flight recorder: journal framing, the ring bound, crash
survival and resume, fleet post-mortems, trace/metrics exports, SLO
watchdogs, and the no-op fast path."""

import json
import os

import pytest

from repro.common.clock import VirtualClock
from repro.common.export import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    sanitize_metric_name,
)
from repro.common.faults import FaultPlan, InjectedCrash
from repro.common.flightrec import (
    NULL_FLIGHTREC,
    NULL_SCOPE,
    REC_ALERT,
    REC_COUNTERS,
    REC_EVENT,
    REC_FAULT,
    REC_QUOTA,
    REC_RECOVERY,
    REC_SCHED,
    REC_SPAN,
    FlightRecorder,
    format_post_mortem,
    replay_journal,
    resolve_flightrec,
)
from repro.common.slo import (
    SLORule,
    SLOSpecError,
    SLOWatchdog,
    default_slos,
    parse_slos,
)
from repro.common.tracing import Tracer
from repro.desktop.dejaview import RecordingConfig
from repro.server.fleet import CRASHED, RECOVERED, Fleet, SessionQuotas
from repro.workloads import get_workload, run_scenario


class TestRecorderBasics:
    def test_record_and_replay_in_seq_order(self):
        recorder = FlightRecorder()
        clock = VirtualClock()
        scope = recorder.scope("alice", clock)
        scope.record(REC_EVENT, {"event": "hello"})
        clock.advance_us(250)
        scope.record(REC_SCHED, {"picked": "alice"})
        replay = recorder.replay()
        assert replay.verified
        assert [r.seq for r in replay.records] == [0, 1]
        assert replay.records[0].owner == "alice"
        assert replay.records[0].data == {"event": "hello"}
        assert replay.records[1].virtual_us == 250
        assert replay.records[1].type_name == "SCHED"
        assert recorder.records_written == 2

    def test_wall_clock_stamps_are_monotonic(self):
        recorder = FlightRecorder()
        scope = recorder.scope("a", VirtualClock())
        for _ in range(5):
            scope.record(REC_EVENT, {"event": "x"})
        walls = [r.wall_ns for r in recorder.replay().records]
        assert walls == sorted(walls)

    def test_multi_owner_interleave(self):
        recorder = FlightRecorder()
        fast, slow = VirtualClock(), VirtualClock()
        a = recorder.scope("a", fast)
        b = recorder.scope("b", slow)
        fast.advance_us(10_000)
        a.record(REC_EVENT, {"event": "a1"})
        b.record(REC_EVENT, {"event": "b1"})
        replay = recorder.replay()
        # Global seq orders across owners even though the virtual stamps
        # come from different clocks.
        assert [r.owner for r in replay.records] == ["a", "b"]
        assert replay.records[0].virtual_us > replay.records[1].virtual_us
        assert replay.by_owner("a")[0].data["event"] == "a1"

    def test_counter_deltas_are_per_owner_and_sparse(self):
        recorder = FlightRecorder()
        clock = VirtualClock()
        a = recorder.scope("a", clock)
        b = recorder.scope("b", clock)
        a.record_counter_deltas({"x": 3, "y": 0})
        a.record_counter_deltas({"x": 3, "y": 2})  # only y moved
        a.record_counter_deltas({"x": 3, "y": 2})  # nothing moved: no record
        b.record_counter_deltas({"x": 5})  # b's baseline is its own
        records = recorder.replay().of_type(REC_COUNTERS)
        assert [r.data["deltas"] for r in records] == [
            {"x": 3}, {"y": 2}, {"x": 5}]
        assert [r.owner for r in records] == ["a", "a", "b"]

    def test_span_sink_journals_closed_spans(self):
        recorder = FlightRecorder()
        clock = VirtualClock()
        tracer = Tracer(clock)
        tracer.sink = recorder.scope("s", clock).span_sink()
        with tracer.span("outer"):
            clock.advance_us(100)
            with tracer.span("inner", pages=3):
                clock.advance_us(40)
        spans = recorder.replay().of_type(REC_SPAN)
        # Children close first.
        assert [s.data["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner.data["dur_us"] == 40
        assert inner.data["depth"] == 1
        assert inner.data["parent"] == "outer"
        assert inner.data["attrs"] == {"pages": 3}
        assert outer.data["dur_us"] == 140
        assert outer.data["depth"] == 0
        assert "parent" not in outer.data

    def test_null_objects_are_inert(self):
        assert resolve_flightrec(None) is NULL_FLIGHTREC
        recorder = FlightRecorder()
        assert resolve_flightrec(recorder) is recorder
        assert not NULL_FLIGHTREC
        assert NULL_FLIGHTREC.scope("x", VirtualClock()) is NULL_SCOPE
        assert not NULL_SCOPE.active
        # The sink stays None so the tracer keeps its single-check path.
        assert NULL_SCOPE.span_sink() is None
        NULL_SCOPE.record(REC_EVENT, {"event": "dropped"})
        NULL_SCOPE.record_counter_deltas({"x": 1})
        assert NULL_FLIGHTREC.replay().records == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(segment_bytes=10)
        with pytest.raises(ValueError):
            FlightRecorder(max_segments=0)


class TestRingJournal:
    def _fill(self, recorder, n, payload="x" * 64):
        scope = recorder.scope("owner", VirtualClock())
        for i in range(n):
            scope.record(REC_EVENT, {"event": payload, "i": i})

    def test_rotation_bounds_disk_and_keeps_newest(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path),
                                  segment_bytes=2048, max_segments=2)
        self._fill(recorder, 200)
        names = sorted(os.listdir(tmp_path))
        assert len(names) <= 3  # max_segments closed + 1 active
        assert all(n.startswith("flight-") and n.endswith(".djj")
                   for n in names)
        replay = recorder.replay()
        assert replay.verified
        # The ring dropped the oldest history but kept the newest.
        assert replay.records[-1].data["i"] == 199
        assert replay.records[0].data["i"] > 0
        assert len(replay.records) < 200

    def test_in_memory_ring_rotates_too(self):
        recorder = FlightRecorder(segment_bytes=2048, max_segments=1)
        self._fill(recorder, 100)
        assert len(recorder._segments) <= 2
        replay = recorder.replay()
        assert replay.verified
        assert replay.records[-1].data["i"] == 99

    def test_torn_tail_is_detected_and_dropped(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path))
        self._fill(recorder, 10)
        path = os.path.join(tmp_path, sorted(os.listdir(tmp_path))[-1])
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03 torn half-record")
        replay = replay_journal(str(tmp_path))
        assert not replay.verified
        assert replay.torn_tail_bytes > 0
        assert len(replay.records) == 10  # the intact prefix survives

    def test_truncated_record_drops_only_the_tail(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path))
        self._fill(recorder, 10)
        path = os.path.join(tmp_path, sorted(os.listdir(tmp_path))[-1])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear the last record's CRC trailer
        replay = replay_journal(str(tmp_path))
        assert not replay.verified
        assert len(replay.records) == 9
        assert replay.records[-1].data["i"] == 8

    def test_resume_continues_seq_and_truncates_torn_tail(self, tmp_path):
        first = FlightRecorder(directory=str(tmp_path))
        self._fill(first, 10)
        # kill -9: no close(); a torn half-record at the tail.
        path = os.path.join(tmp_path, sorted(os.listdir(tmp_path))[-1])
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad torn")
        second = FlightRecorder(directory=str(tmp_path))
        assert second.resumed_records == 10
        assert second.resume_truncated_bytes > 0
        second.scope("recovery", VirtualClock()).record(
            REC_RECOVERY, {"action": "post-crash"})
        replay = replay_journal(str(tmp_path))
        assert replay.verified  # the torn tail was truncated away
        assert len(replay.records) == 11
        # One timeline: seq continues after the pre-crash records.
        assert replay.records[-1].seq == 10
        assert replay.records[-1].owner == "recovery"

    def test_resume_empty_directory(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path))
        assert recorder.resumed_records == 0
        self._fill(recorder, 1)
        assert replay_journal(str(tmp_path)).verified

    def test_replay_missing_directory(self, tmp_path):
        replay = replay_journal(str(tmp_path / "never-created"))
        assert replay.records == [] and replay.segments == 0

    def test_replay_window_and_last(self):
        recorder = FlightRecorder()
        clock = VirtualClock()
        scope = recorder.scope("o", clock)
        for _ in range(6):
            clock.advance_us(100)
            scope.record(REC_EVENT, {"event": "t"})
        replay = recorder.replay()
        assert len(replay.last(2)) == 2
        assert replay.last(2)[-1].seq == 5
        window = replay.window_us(200, 400)
        assert [r.virtual_us for r in window] == [200, 300, 400]


class TestRecordingJournal:
    def test_session_spans_and_lifecycle_land_in_journal(self):
        recorder = FlightRecorder()
        run_scenario("gzip", units=3, recording=RecordingConfig(
            flightrec=recorder, flightrec_rollup_ticks=1))
        replay = recorder.replay()
        assert replay.verified
        span_names = {s.data["name"] for s in replay.of_type(REC_SPAN)}
        assert "tick" in span_names
        assert "checkpoint" in span_names
        events = {e.data["event"] for e in replay.of_type(REC_EVENT)}
        assert "app.launch" in events
        deltas = replay.of_type(REC_COUNTERS)
        assert deltas, "rollup_ticks=1 must emit counter deltas"
        moved = set()
        for record in deltas:
            moved.update(record.data["deltas"])
        assert "tick.count" in moved

    def test_journal_enabled_run_is_bit_identical(self):
        on = run_scenario("gzip", units=4, recording=RecordingConfig(
            flightrec=FlightRecorder(), flightrec_rollup_ticks=1))
        off = run_scenario("gzip", units=4, recording=RecordingConfig())
        assert on.duration_us == off.duration_us
        assert on.dejaview.storage_report() == off.dejaview.storage_report()
        assert on.dejaview.checkpoint_count == off.dejaview.checkpoint_count

    def test_fault_fire_precedes_crash_and_recovery_joins(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path))
        plan = FaultPlan()
        plan.add("storage.cas.page_append", after=2)
        config = RecordingConfig(fault_plan=plan, flightrec=recorder)
        run, steps = get_workload("web").start(recording=config, units=4)
        with pytest.raises(InjectedCrash):
            for _ in steps:
                pass
        # The fired failpoint is journaled (and flushed) before the
        # injected exception unwinds: the pre-crash timeline explains
        # the crash even if nothing ever runs again.
        pre = replay_journal(str(tmp_path))
        faults = pre.of_type(REC_FAULT)
        assert faults
        assert faults[0].data["site"] == "storage.cas.page_append"
        assert not pre.of_type(REC_RECOVERY)

        run.dejaview.recover()
        post = replay_journal(str(tmp_path))
        assert post.verified
        actions = [r.data["action"] for r in post.of_type(REC_RECOVERY)]
        assert actions[0] == "recover.begin"
        assert actions[-1] == "recover.done"
        done = post.of_type(REC_RECOVERY)[-1]
        assert done.data["ok"] is True
        assert faults[0].seq < post.of_type(REC_RECOVERY)[0].seq


class TestFleetJournal:
    def _crashing_fleet(self, tmp_path, **fleet_kwargs):
        fleet = Fleet(seed=1, rollup_every=8,
                      flightrec=FlightRecorder(directory=str(tmp_path)),
                      **fleet_kwargs)
        plan = FaultPlan()
        plan.add("storage.cas.page_append", after=2)
        fleet.admit("alice", "web", units=4, fault_plan=plan)
        fleet.admit("bob", "gzip", units=6)
        fleet.run_to_completion()
        return fleet

    def test_post_mortem_after_member_crash(self, tmp_path):
        fleet = self._crashing_fleet(tmp_path)
        assert fleet.member("alice").state == CRASHED

        # The acceptance path: read the surviving bytes alone, as a
        # fresh process would after the host died.
        replay = replay_journal(str(tmp_path))
        assert replay.verified
        sched = replay.of_type(REC_SCHED)
        assert sched and all(r.owner == "fleet" for r in sched)
        assert {r.data["picked"] for r in sched} == {"alice", "bob"}
        faults = replay.of_type(REC_FAULT)
        assert faults[0].owner == "alice"
        assert faults[0].data["site"] == "storage.cas.page_append"
        crash_events = [e for e in replay.of_type(REC_EVENT)
                        if e.data.get("event") == "session.crashed"]
        assert crash_events[0].data["session"] == "alice"
        assert crash_events[0].data["site"] == "storage.cas.page_append"
        # The crash is containment: bob's timeline continues after it.
        bob_after = [r for r in replay.records
                     if r.owner in ("bob", "fleet")
                     and r.seq > crash_events[0].seq]
        assert bob_after

        timeline = format_post_mortem(replay, last=30)
        assert "CRC prefix verified" in timeline[0]
        assert any("storage.cas.page_append" in line for line in timeline)
        assert any("session.crashed" in line for line in timeline)

    def test_recovery_extends_the_same_timeline(self, tmp_path):
        fleet = self._crashing_fleet(tmp_path)
        before = replay_journal(str(tmp_path)).records[-1].seq
        fleet.recover_session("alice")
        assert fleet.member("alice").state == RECOVERED
        replay = replay_journal(str(tmp_path))
        assert replay.verified
        recoveries = replay.of_type(REC_RECOVERY)
        fleet_level = [r for r in recoveries
                       if r.data.get("action") == "fleet.recover_session"]
        assert fleet_level and fleet_level[0].data["session"] == "alice"
        assert fleet_level[0].seq > before
        # Member-level recover.begin/done ride along under alice's owner.
        assert any(r.owner == "alice" for r in recoveries)

    def test_quota_throttle_is_journaled(self, tmp_path):
        fleet = Fleet(seed=0, rollup_every=0,
                      flightrec=FlightRecorder(directory=str(tmp_path)),
                      quotas=SessionQuotas(checkpoint_bytes=1))
        fleet.admit("s00", "web", units=3)
        fleet.run_to_completion()
        replay = replay_journal(str(tmp_path))
        quotas = replay.of_type(REC_QUOTA)
        assert quotas and quotas[0].data["quota"] == "checkpoint_bytes"
        assert quotas[0].data["used"] > quotas[0].data["limit"]

    def test_rollup_cadence_emits_member_counter_deltas(self, tmp_path):
        fleet = Fleet(seed=0, rollup_every=4,
                      flightrec=FlightRecorder(directory=str(tmp_path)))
        fleet.admit("s00", "gzip", units=6)
        fleet.run_to_completion()
        deltas = replay_journal(str(tmp_path)).of_type(REC_COUNTERS)
        owners = {r.owner for r in deltas}
        assert "fleet" in owners and "s00" in owners

    def test_fleet_is_bit_identical_with_journal(self):
        from repro.workloads.fleet_wl import run_fleet

        plain = run_fleet(3, seed=2)
        journaled = run_fleet(3, seed=2, flightrec=FlightRecorder(),
                              watchdog=SLOWatchdog())
        assert plain.clock.now_us == journaled.clock.now_us
        for a, b in zip(plain.members(), journaled.members()):
            assert a.session.clock.now_us == b.session.clock.now_us
            assert a.dejaview.storage_report() == b.dejaview.storage_report()

    def test_stats_reports_journal_and_slo_sections(self, tmp_path):
        fleet = Fleet(seed=0, flightrec=FlightRecorder(),
                      watchdog=SLOWatchdog())
        fleet.admit("s00", "gzip", units=4)
        fleet.run_to_completion()
        stats = fleet.stats()
        assert stats["journal"]["records_written"] > 0
        assert stats["slo"]["evaluations"] >= 1
        names = {v["name"] for v in stats["slo"]["verdicts"]}
        assert names == {"downtime_p95", "dedup_ratio", "recovery_rate"}


class TestExports:
    def _journal_with_spans(self):
        recorder = FlightRecorder()
        clock = VirtualClock()
        scope = recorder.scope("alice", clock)
        tracer = Tracer(clock)
        tracer.sink = scope.span_sink()
        with tracer.span("checkpoint", checkpoint_id=1):
            clock.advance_us(500)
            with tracer.span("capture"):
                clock.advance_us(200)
        scope.record(REC_FAULT, {"site": "lfs.append.mid_block",
                                 "mode": "crash", "hit": 3})
        return recorder.replay().records

    def test_chrome_trace_complete_events(self):
        events = chrome_trace_events(self._journal_with_spans())
        complete = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["capture"]["ts"] == 500
        assert by_name["capture"]["dur"] == 200
        assert by_name["checkpoint"]["ts"] == 0
        assert by_name["checkpoint"]["dur"] == 700
        assert by_name["checkpoint"]["args"]["checkpoint_id"] == 1
        assert all(e["pid"] == "alice" for e in complete)
        # Nesting is ts/dur containment within one pid/tid row.
        assert (by_name["checkpoint"]["ts"] <= by_name["capture"]["ts"]
                and by_name["capture"]["ts"] + by_name["capture"]["dur"]
                <= by_name["checkpoint"]["ts"] + by_name["checkpoint"]["dur"])

    def test_chrome_trace_instants_and_metadata(self):
        events = chrome_trace_events(self._journal_with_spans())
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "fault:lfs.append.mid_block"
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "alice"
        without = chrome_trace_events(self._journal_with_spans(),
                                      instants=False)
        assert not [e for e in without if e["ph"] == "i"]

    def test_chrome_trace_json_document(self):
        document = json.loads(chrome_trace_json(self._journal_with_spans()))
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["time_domain"] == "virtual_us"
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("checkpoint.downtime_us") == \
            "dejaview_checkpoint_downtime_us"
        assert sanitize_metric_name("a-b c", prefix="") == "a_b_c"
        assert sanitize_metric_name("9lives", prefix="") == "_9lives"

    def test_prometheus_text_families(self):
        snapshot = {
            "counters": {"fleet.steps": 12},
            "gauges": {"queue.depth": 3},
            "histograms": {
                "checkpoint.downtime_us": {
                    "count": 4, "sum": 100.0, "p50": 20.0, "p95": 40.0,
                    "p99": 41.0},
                "never.observed": {"count": 0, "sum": 0},
            },
        }
        body = prometheus_text(snapshot, labels={"fleet_seed": 7})
        assert '# TYPE dejaview_fleet_steps counter' in body
        assert 'dejaview_fleet_steps{fleet_seed="7"} 12' in body
        assert '# TYPE dejaview_queue_depth gauge' in body
        assert ('dejaview_checkpoint_downtime_us'
                '{fleet_seed="7",quantile="0.95"} 40.0') in body
        assert 'dejaview_checkpoint_downtime_us_count{fleet_seed="7"} 4' \
            in body
        assert "never_observed" not in body
        assert body.endswith("\n")


class TestSLO:
    def test_parse_shorthand(self):
        rule = SLORule.parse("downtime_p95<=20000")
        assert rule.source == "histogram"
        assert rule.metric == "checkpoint.downtime_us"
        assert rule.stat == "p95"
        assert rule.op == "<=" and rule.threshold == 20000.0

    def test_parse_explicit_forms(self):
        rule = SLORule.parse("counter:fleet.sessions_crashed<=0")
        assert rule.source == "counter" and rule.stat is None
        rule = SLORule.parse("histogram:fleet.step_us:p50<900000")
        assert rule.stat == "p50" and rule.op == "<"
        rule = SLORule.parse("derived:dedup_ratio>=0.2")
        assert rule.source == "derived"

    def test_parse_errors(self):
        with pytest.raises(SLOSpecError):
            SLORule.parse("downtime_p95=20000")  # no comparison op
        with pytest.raises(SLOSpecError):
            SLORule.parse("downtime_p95<=soon")  # bad threshold
        with pytest.raises(SLOSpecError):
            SLORule.parse("tarot:cups<=3")  # unknown source
        with pytest.raises(SLOSpecError):
            SLORule("x", "histogram", "m", "<=", 1.0)  # stat required
        with pytest.raises(SLOSpecError):
            SLORule("x", "counter", "m", "~=", 1.0)  # unknown op

    def test_parse_slos_list(self):
        rules = parse_slos("downtime_p95<=1; dedup_ratio>=0.5 ;")
        assert [r.name for r in rules] == ["downtime_p95", "dedup_ratio"]

    def test_default_rules(self):
        assert [r.name for r in default_slos()] == [
            "downtime_p95", "dedup_ratio", "recovery_rate"]

    def test_no_data_is_no_verdict_and_no_alert(self):
        watchdog = SLOWatchdog([SLORule.parse("downtime_p95<=1")])
        verdicts = watchdog.evaluate({"histograms": {}})
        assert verdicts[0]["ok"] is None
        assert watchdog.alerts_emitted == 0
        assert watchdog.standing() == {"downtime_p95": None}

    def test_transitions_alert_once_each_way(self):
        recorder = FlightRecorder()
        scope = recorder.scope("fleet", VirtualClock())
        watchdog = SLOWatchdog([SLORule.parse("dedup_ratio>=0.5")],
                               flightscope=scope)
        healthy = {"derived": {"dedup_ratio": 0.8}}
        sick = {"derived": {"dedup_ratio": 0.1}}
        watchdog.evaluate(healthy)  # first sight, healthy: silent
        watchdog.evaluate(sick)     # -> violated
        watchdog.evaluate(sick)     # steady state: silent
        watchdog.evaluate(healthy)  # -> resolved
        assert watchdog.alerts_emitted == 2
        alerts = recorder.replay().of_type(REC_ALERT)
        assert [a.data["state"] for a in alerts] == ["violated", "resolved"]
        assert alerts[0].data["rule"] == "dedup_ratio"
        assert alerts[0].data["value"] == 0.1

    def test_first_sight_violation_alerts(self):
        watchdog = SLOWatchdog([SLORule.parse("crash_count<=0")])
        watchdog.evaluate({"counters": {"fleet.sessions_crashed": 2}})
        assert watchdog.alerts_emitted == 1
        assert watchdog.standing() == {"crash_count": False}

    def test_fleet_emits_alert_records(self, tmp_path):
        fleet = Fleet(seed=0, rollup_every=4,
                      flightrec=FlightRecorder(directory=str(tmp_path)),
                      watchdog=SLOWatchdog(
                          [SLORule.parse("dedup_ratio>=0.999")]))
        fleet.admit("s00", "web", units=3)
        fleet.admit("s01", "gzip", units=4)
        fleet.run_to_completion()
        fleet.stats()
        assert fleet.watchdog.standing()["dedup_ratio"] is False
        alerts = replay_journal(str(tmp_path)).of_type(REC_ALERT)
        assert alerts and alerts[0].data["state"] == "violated"
        metrics = fleet.telemetry.metrics.counter("fleet.slo_alerts")
        assert metrics.value == fleet.watchdog.alerts_emitted
