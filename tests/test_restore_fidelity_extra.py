"""Additional revive fidelity and failure-path tests."""

import pytest

from repro.common.errors import ReviveError
from repro.checkpoint.restore import ReviveManager

from tests.test_checkpoint_engine import make_rig


def rig(**kwargs):
    kernel, container, fsstore, storage, engine, procs = make_rig(**kwargs)
    return kernel, container, fsstore, storage, engine, procs, \
        ReviveManager(kernel, fsstore, storage)


class TestStateVectorFidelity:
    def test_identity_and_scheduling_survive(self):
        _k, container, _f, _s, engine, procs, manager = rig(nprocs=1)
        proc = procs[0]
        proc.uid, proc.gid = 501, 20
        proc.groups = [20, 80]
        proc.nice = -5
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(proc.vpid)
        assert (clone.uid, clone.gid) == (501, 20)
        assert clone.groups == [20, 80]
        assert clone.nice == -5

    def test_ptrace_relationship_survives(self):
        _k, container, _f, _s, engine, procs, manager = rig(nprocs=2)
        debugger, debuggee = procs[0], procs[1]
        debuggee.ptraced_by = debugger.vpid
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(debuggee.vpid)
        assert clone.ptraced_by == debugger.vpid

    def test_pending_signals_survive(self):
        _k, container, _f, _s, engine, procs, manager = rig(nprocs=1)
        proc = procs[0]
        proc.blocked_signals.add(10)
        proc.deliver_signal(10, now_us=0)  # blocked -> queued
        assert proc.pending_signals == [10]
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(proc.vpid)
        assert clone.pending_signals == [10]
        assert 10 in clone.blocked_signals

    def test_fd_offsets_and_flags_survive(self):
        _k, container, _f, _s, engine, procs, manager = rig(nprocs=1)
        entry = procs[0].open_fd(path="/etc/hostname", inode=2, flags=0o400)
        entry.offset = 17
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(procs[0].vpid)
        restored = clone.open_files[entry.fd]
        assert restored.offset == 17
        assert restored.flags == 0o400
        assert restored.path == "/etc/hostname"

    def test_new_fds_in_revived_session_do_not_collide(self):
        _k, container, _f, _s, engine, procs, manager = rig(nprocs=1)
        entry = procs[0].open_fd(path="/a", inode=1)
        engine.checkpoint()
        clone = manager.revive(1).container.process_by_vpid(procs[0].vpid)
        fresh = clone.open_fd(path="/b", inode=2)
        assert fresh.fd > entry.fd


class TestReviveFailurePaths:
    def test_missing_page_in_owner_image_raises(self):
        _k, _c, _f, storage, engine, procs, manager = rig(
            nprocs=1, pages_per_proc=2
        )
        engine.checkpoint()
        # Corrupt the stored image: claim a page lives in image 1 that it
        # does not contain.
        image = storage.load(1)
        bogus_key = (procs[0].vpid, 0xDEAD000, 0)
        image.page_locations[bogus_key] = 1
        # Region for the bogus page does not exist -> ReviveError.
        storage._blobs.pop(1)
        storage._sizes.pop(1)
        storage._meta_sizes.pop(1)
        storage.store(image, charge_time=False)
        with pytest.raises(ReviveError):
            manager.revive(1)

    def test_image_referencing_unknown_vpid_raises(self):
        _k, _c, _f, storage, engine, procs, manager = rig(
            nprocs=1, pages_per_proc=2
        )
        engine.checkpoint()
        image = storage.load(1)
        image.regions[999] = [{"start": 0x5000000, "npages": 1, "prot": 3,
                               "name": "ghost"}]
        storage._blobs.pop(1)
        storage._sizes.pop(1)
        storage._meta_sizes.pop(1)
        storage.store(image, charge_time=False)
        with pytest.raises(ReviveError):
            manager.revive(1)
