"""Tests for checkpoint-chain verification, plus the cross-options
fidelity matrix (every engine option combination must revive exactly)."""

import pytest

from repro.common.costs import PAGE_SIZE
from repro.checkpoint.engine import EngineOptions
from repro.checkpoint.gc import prune_checkpoints
from repro.checkpoint.restore import ReviveManager
from repro.checkpoint.verify import verify_chain

from tests.test_checkpoint_engine import make_rig


def _restore(storage, image):
    """Replace a stored image (test helper for corruption injection)."""
    storage._blobs.pop(image.checkpoint_id)
    storage._sizes.pop(image.checkpoint_id)
    storage._meta_sizes.pop(image.checkpoint_id)
    storage.store(image, charge_time=False)


def _chain(checkpoints=4, **kwargs):
    kernel, container, fsstore, storage, engine, procs = make_rig(**kwargs)
    space = procs[0].address_space
    region = space.regions()[0]
    for i in range(checkpoints):
        space.write(region.start, b"round-%d" % i)
        fsstore.fs.write_file("/home/user/f.txt", b"v%d" % i)
        engine.checkpoint()
    return kernel, container, fsstore, storage, engine, procs


class TestVerifyChain:
    def test_healthy_chain_verifies_clean(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        report = verify_chain(storage, fsstore)
        assert report.ok, [str(i) for i in report.issues]
        assert report.images_checked == 4
        assert report.pages_checked > 0

    def test_pruned_chain_still_verifies(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        prune_checkpoints(storage, fsstore, keep_ids=[4])
        report = verify_chain(storage, fsstore)
        assert report.ok, [str(i) for i in report.issues]

    def test_deleted_base_image_detected_via_locations(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        storage.delete(1)  # the full image every incremental leans on
        report = verify_chain(storage, fsstore)
        assert report.issues_with("dangling-location")

    def test_unresolvable_page_detected(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        image = storage.load(2)
        bogus = (99, 0xAAAA000, 0)
        image.page_locations[bogus] = 1
        _restore(storage, image)
        report = verify_chain(storage, fsstore)
        assert report.issues_with("unresolvable-page")

    def test_orphan_page_detected(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        image = storage.load(1)
        image.pages[(42, 0xBBBB000, 0)] = bytes(PAGE_SIZE)
        _restore(storage, image)
        report = verify_chain(storage, fsstore)
        assert report.issues_with("orphan-page")

    def test_page_out_of_bounds_detected(self):
        _k, _c, fsstore, storage, _e, procs = _chain()
        image = storage.load(1)
        vpid = procs[0].vpid
        region_start = procs[0].address_space.regions()[0].start
        image.pages[(vpid, region_start, 10_000)] = bytes(16)
        _restore(storage, image)
        report = verify_chain(storage, fsstore)
        assert report.issues_with("page-out-of-bounds")

    def test_full_with_parent_detected(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        image = storage.load(1)
        image.parent_id = 3
        _restore(storage, image)
        report = verify_chain(storage, fsstore)
        assert report.issues_with("full-with-parent")

    def test_id_mismatch_detected(self):
        import zlib

        from repro.checkpoint.storage import TRAILER_MAGIC, _TRAILER

        _k, _c, fsstore, storage, _e, _p = _chain()
        image = storage.load(3)
        image.checkpoint_id = 30
        raw = image.serialize()
        blob = zlib.compress(raw, 1)
        trailer = _TRAILER.pack(TRAILER_MAGIC, len(raw), len(blob),
                                zlib.crc32(blob))
        storage._blobs[3] = blob + trailer  # forged image kept under key 3
        report = verify_chain(storage, fsstore)
        assert report.issues_with("id-mismatch")

    def test_missing_fs_binding_detected(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        fsstore.fs.unprotect_checkpoint(2)
        report = verify_chain(storage, fsstore)
        assert report.issues_with("missing-fs-binding")

    def test_fs_check_skipped_without_store(self):
        _k, _c, fsstore, storage, _e, _p = _chain()
        fsstore.fs.unprotect_checkpoint(2)
        report = verify_chain(storage)  # no fsstore: binding not audited
        assert report.ok

    def test_issue_str(self):
        from repro.checkpoint.verify import Issue

        text = str(Issue("orphan-page", 3, "details"))
        assert "orphan-page" in text and "image 3" in text


OPTION_MATRIX = [
    EngineOptions(use_cow=cow, use_incremental=inc, defer_writeback=defer)
    for cow in (True, False)
    for inc in (True, False)
    for defer in (True, False)
]


@pytest.mark.parametrize("options", OPTION_MATRIX,
                         ids=lambda o: "cow=%d,inc=%d,defer=%d" % (
                             o.use_cow, o.use_incremental, o.defer_writeback))
def test_fidelity_across_option_matrix(options):
    """Every combination of the big three engine options must produce
    byte-exact revives and a clean verification report."""
    kernel, container, fsstore, storage, engine, procs = make_rig(
        options=options, nprocs=2, pages_per_proc=4
    )
    space = procs[0].address_space
    region = space.regions()[0]
    expected = {}
    for i in range(3):
        space.write(region.start, b"matrix-%d" % i)
        result = engine.checkpoint()
        expected[result.checkpoint_id] = b"matrix-%d" % i
    manager = ReviveManager(kernel, fsstore, storage)
    for checkpoint_id, content in expected.items():
        clone = manager.revive(checkpoint_id).container.process_by_vpid(
            procs[0].vpid
        )
        assert clone.address_space.read(region.start, len(content)) == content
    assert verify_chain(storage, fsstore).ok
