"""Unit and property tests for interval algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.intervals import (
    clamp_intervals,
    contains_point,
    intersect_many,
    intersect_two,
    normalize,
    subtract,
    total_duration,
    union,
)


class TestNormalize:
    def test_merges_overlaps(self):
        assert normalize([(0, 5), (3, 8)]) == [(0, 8)]

    def test_merges_adjacent(self):
        assert normalize([(0, 5), (5, 8)]) == [(0, 8)]

    def test_keeps_gaps(self):
        assert normalize([(0, 2), (5, 7)]) == [(0, 2), (5, 7)]

    def test_drops_empty(self):
        assert normalize([(3, 3), (5, 4)]) == []

    def test_sorts(self):
        assert normalize([(5, 7), (0, 2)]) == [(0, 2), (5, 7)]


class TestOperations:
    def test_union(self):
        assert union([(0, 2)], [(1, 5)], [(10, 11)]) == [(0, 5), (10, 11)]

    def test_intersect_two(self):
        assert intersect_two([(0, 10)], [(5, 15)]) == [(5, 10)]

    def test_intersect_disjoint(self):
        assert intersect_two([(0, 2)], [(3, 5)]) == []

    def test_intersect_many(self):
        assert intersect_many([[(0, 10)], [(2, 8)], [(4, 20)]]) == [(4, 8)]

    def test_intersect_many_empty_input(self):
        assert intersect_many([]) == []

    def test_subtract_middle(self):
        assert subtract([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_subtract_all(self):
        assert subtract([(2, 4)], [(0, 10)]) == []

    def test_subtract_nothing(self):
        assert subtract([(0, 2)], [(5, 6)]) == [(0, 2)]

    def test_subtract_multiple_holes(self):
        assert subtract([(0, 10)], [(1, 2), (4, 6)]) == [(0, 1), (2, 4), (6, 10)]

    def test_clamp(self):
        assert clamp_intervals([(0, 10), (20, 30)], 5, 25) == [(5, 10), (20, 25)]

    def test_total_duration(self):
        assert total_duration([(0, 3), (10, 14)]) == 7

    def test_contains_point(self):
        assert contains_point([(0, 5)], 0)
        assert not contains_point([(0, 5)], 5)
        assert not contains_point([], 1)


_intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ).map(lambda t: (min(t), max(t))),
    max_size=15,
)


def _points():
    return range(0, 1001, 7)


def _member(intervals, p):
    return any(s <= p < e for s, e in intervals)


@given(a=_intervals)
def test_property_normalize_preserves_membership(a):
    norm = normalize(a)
    for p in _points():
        assert _member(norm, p) == _member(a, p)
    # Normalized lists are sorted and disjoint.
    for (s1, e1), (s2, e2) in zip(norm, norm[1:]):
        assert e1 < s2


@given(a=_intervals, b=_intervals)
def test_property_set_semantics(a, b):
    """Union/intersection/subtraction agree with pointwise set logic."""
    u = union(a, b)
    i = intersect_two(normalize(a), normalize(b))
    d = subtract(a, b)
    for p in _points():
        in_a, in_b = _member(a, p), _member(b, p)
        assert _member(u, p) == (in_a or in_b)
        assert _member(i, p) == (in_a and in_b)
        assert _member(d, p) == (in_a and not in_b)


@given(a=_intervals, b=_intervals)
def test_property_duration_inclusion_exclusion(a, b):
    union_d = total_duration(union(a, b))
    a_d = total_duration(a)
    b_d = total_duration(b)
    i_d = total_duration(intersect_two(normalize(a), normalize(b)))
    assert union_d == a_d + b_d - i_d
