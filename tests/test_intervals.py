"""Unit and property tests for interval algebra."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.index.intervals import (
    clamp_intervals,
    contains_point,
    intersect_many,
    intersect_two,
    normalize,
    overlaps_window,
    span,
    subtract,
    total_duration,
    union,
    with_open_intervals,
)


class TestNormalize:
    def test_merges_overlaps(self):
        assert normalize([(0, 5), (3, 8)]) == [(0, 8)]

    def test_merges_adjacent(self):
        assert normalize([(0, 5), (5, 8)]) == [(0, 8)]

    def test_keeps_gaps(self):
        assert normalize([(0, 2), (5, 7)]) == [(0, 2), (5, 7)]

    def test_drops_empty(self):
        assert normalize([(3, 3), (5, 4)]) == []

    def test_sorts(self):
        assert normalize([(5, 7), (0, 2)]) == [(0, 2), (5, 7)]


class TestOperations:
    def test_union(self):
        assert union([(0, 2)], [(1, 5)], [(10, 11)]) == [(0, 5), (10, 11)]

    def test_intersect_two(self):
        assert intersect_two([(0, 10)], [(5, 15)]) == [(5, 10)]

    def test_intersect_disjoint(self):
        assert intersect_two([(0, 2)], [(3, 5)]) == []

    def test_intersect_many(self):
        assert intersect_many([[(0, 10)], [(2, 8)], [(4, 20)]]) == [(4, 8)]

    def test_intersect_many_empty_input(self):
        assert intersect_many([]) == []

    def test_subtract_middle(self):
        assert subtract([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_subtract_all(self):
        assert subtract([(2, 4)], [(0, 10)]) == []

    def test_subtract_nothing(self):
        assert subtract([(0, 2)], [(5, 6)]) == [(0, 2)]

    def test_subtract_multiple_holes(self):
        assert subtract([(0, 10)], [(1, 2), (4, 6)]) == [(0, 1), (2, 4), (6, 10)]

    def test_clamp(self):
        assert clamp_intervals([(0, 10), (20, 30)], 5, 25) == [(5, 10), (20, 25)]

    def test_total_duration(self):
        assert total_duration([(0, 3), (10, 14)]) == 7

    def test_contains_point(self):
        assert contains_point([(0, 5)], 0)
        assert not contains_point([(0, 5)], 5)
        assert not contains_point([], 1)


class TestSubtractEdgeCases:
    def test_adjacent_before_is_untouched(self):
        # b ends exactly where a begins: half-open, so no overlap.
        assert subtract([(5, 10)], [(0, 5)]) == [(5, 10)]

    def test_adjacent_after_is_untouched(self):
        assert subtract([(5, 10)], [(10, 15)]) == [(5, 10)]

    def test_nested_hole(self):
        assert subtract([(0, 100)], [(40, 60)]) == [(0, 40), (60, 100)]

    def test_a_nested_in_b(self):
        assert subtract([(40, 60)], [(0, 100)]) == []

    def test_exact_match_removes_everything(self):
        assert subtract([(3, 9)], [(3, 9)]) == []

    def test_hole_touching_start(self):
        assert subtract([(0, 10)], [(0, 4)]) == [(4, 10)]

    def test_hole_touching_end(self):
        assert subtract([(0, 10)], [(6, 10)]) == [(0, 6)]

    def test_unnormalized_inputs_are_normalized_first(self):
        assert subtract([(5, 8), (0, 6)], [(2, 2), (3, 4)]) == [(0, 3), (4, 8)]


class TestClampEdgeCases:
    def test_clamp_to_empty_window(self):
        assert clamp_intervals([(0, 5)], 5, 5) == []

    def test_clamp_fully_outside_produces_empty(self):
        assert clamp_intervals([(0, 5)], 5, 10) == []
        assert clamp_intervals([(10, 20)], 0, 10) == []

    def test_clamp_trims_both_ends(self):
        assert clamp_intervals([(0, 100)], 40, 60) == [(40, 60)]


class _PoisonIntervals:
    """Iterating this list-alike fails the test: intersect_many must not
    touch interval lists after the running intersection is empty."""

    def __iter__(self):
        raise AssertionError("short-circuit did not happen")


class TestIntersectManyShortCircuit:
    def test_later_lists_untouched_after_empty(self):
        result = intersect_many([[(0, 2)], [(5, 9)], _PoisonIntervals()])
        assert result == []

    def test_empty_first_list_short_circuits(self):
        assert intersect_many([[], _PoisonIntervals()]) == []


class TestWindowedHelpers:
    def test_overlaps_window_half_open(self):
        assert overlaps_window(0, 5, 4, 10)
        assert not overlaps_window(0, 5, 5, 10)
        assert not overlaps_window(10, 12, 5, 10)

    def test_overlaps_window_open_ended(self):
        assert overlaps_window(100, 200, 50, None)
        assert overlaps_window(0, 60, 50, None)
        assert not overlaps_window(0, 50, 50, None)

    def test_span(self):
        assert span([]) is None
        assert span([(3, 7), (10, 20)]) == (3, 20)

    def test_with_open_intervals_materializes_at_now(self):
        assert with_open_intervals([(0, 5)], (8,), 20) == [(0, 5), (8, 20)]

    def test_with_open_intervals_no_open_is_identity(self):
        closed = [(0, 5)]
        assert with_open_intervals(closed, (), 20) is closed

    def test_with_open_intervals_zero_length_open_gets_minimum_width(self):
        # An occurrence opened at the query instant still counts for one
        # microsecond (matching Occurrence.interval semantics).
        assert with_open_intervals([], (20,), 20) == [(20, 21)]


class TestRandomizedOracle:
    """Round-trip union/intersect/subtract against a brute-force
    point-sampling oracle over randomized inputs (seeded, satellite of
    the query-path overhaul)."""

    def _random_intervals(self, rng, max_end=400):
        out = []
        for _ in range(rng.randrange(0, 12)):
            start = rng.randrange(0, max_end)
            end = rng.randrange(0, max_end)
            out.append((min(start, end), max(start, end)))
        return out

    def test_round_trip_against_point_oracle(self):
        rng = random.Random(0xDE7A)
        for _ in range(200):
            a = self._random_intervals(rng)
            b = self._random_intervals(rng)
            in_a = lambda p: any(s <= p < e for s, e in a)  # noqa: E731
            in_b = lambda p: any(s <= p < e for s, e in b)  # noqa: E731
            u = union(a, b)
            i = intersect_two(normalize(a), normalize(b))
            d = subtract(a, b)
            # (a ∪ b) \ b ∪ (a ∩ b) == a, pointwise.
            round_trip = union(subtract(u, b), i)
            for p in range(0, 401, 3):
                assert contains_point(u, p) == (in_a(p) or in_b(p))
                assert contains_point(i, p) == (in_a(p) and in_b(p))
                assert contains_point(d, p) == (in_a(p) and not in_b(p))
                assert contains_point(round_trip, p) == in_a(p)


_intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ).map(lambda t: (min(t), max(t))),
    max_size=15,
)


def _points():
    return range(0, 1001, 7)


def _member(intervals, p):
    return any(s <= p < e for s, e in intervals)


@given(a=_intervals)
def test_property_normalize_preserves_membership(a):
    norm = normalize(a)
    for p in _points():
        assert _member(norm, p) == _member(a, p)
    # Normalized lists are sorted and disjoint.
    for (s1, e1), (s2, e2) in zip(norm, norm[1:]):
        assert e1 < s2


@given(a=_intervals, b=_intervals)
def test_property_set_semantics(a, b):
    """Union/intersection/subtraction agree with pointwise set logic."""
    u = union(a, b)
    i = intersect_two(normalize(a), normalize(b))
    d = subtract(a, b)
    for p in _points():
        in_a, in_b = _member(a, p), _member(b, p)
        assert _member(u, p) == (in_a or in_b)
        assert _member(i, p) == (in_a and in_b)
        assert _member(d, p) == (in_a and not in_b)


@given(a=_intervals, b=_intervals)
def test_property_duration_inclusion_exclusion(a, b):
    union_d = total_duration(union(a, b))
    a_d = total_duration(a)
    b_d = total_duration(b)
    i_d = total_duration(intersect_two(normalize(a), normalize(b)))
    assert union_d == a_d + b_d - i_d
