"""Unit tests for the virtual memory substrate."""

import pytest

from repro.common.costs import PAGE_SIZE
from repro.vex.memory import (
    PROT_READ,
    AddressSpace,
    PageFault,
    SegmentationFault,
)


def _space_with_region(npages=4):
    space = AddressSpace()
    region = space.mmap(npages, name="heap")
    return space, region


class TestMapping:
    def test_mmap_allocates_disjoint_regions(self):
        space = AddressSpace()
        a = space.mmap(2)
        b = space.mmap(2)
        assert a.end <= b.start

    def test_munmap_removes_region(self):
        space, region = _space_with_region()
        space.munmap(region.start)
        assert space.find_region(region.start) is None

    def test_munmap_unknown_address_rejected(self):
        space = AddressSpace()
        with pytest.raises(Exception):
            space.munmap(0x1234000)

    def test_region_requires_positive_pages(self):
        from repro.common.errors import VirtualMemoryError
        from repro.vex.memory import VMRegion

        with pytest.raises(VirtualMemoryError):
            VMRegion(0, 0)

    def test_region_start_must_be_aligned(self):
        from repro.common.errors import VirtualMemoryError
        from repro.vex.memory import VMRegion

        with pytest.raises(VirtualMemoryError):
            VMRegion(123, 1)


class TestReadWrite:
    def test_unwritten_pages_read_as_zero(self):
        space, region = _space_with_region()
        assert space.read(region.start, 16) == bytes(16)

    def test_write_then_read(self):
        space, region = _space_with_region()
        space.write(region.start + 100, b"hello")
        assert space.read(region.start + 100, 5) == b"hello"

    def test_write_spanning_pages(self):
        space, region = _space_with_region()
        data = bytes(range(256)) * 20  # 5120 bytes > one page
        addr = region.start + PAGE_SIZE - 100
        space.write(addr, data)
        assert space.read(addr, len(data)) == data

    def test_write_unmapped_faults(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.write(0xDEAD000, b"x")

    def test_read_unmapped_faults(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.read(0xDEAD000, 1)

    def test_write_past_region_end_faults(self):
        space, region = _space_with_region(1)
        with pytest.raises(SegmentationFault):
            space.write(region.end - 2, b"xxxx")

    def test_write_to_readonly_region_faults(self):
        space = AddressSpace()
        region = space.mmap(1, prot=PROT_READ)
        with pytest.raises(SegmentationFault):
            space.write(region.start, b"x")

    def test_write_page_requires_full_page(self):
        space, region = _space_with_region()
        from repro.common.errors import VirtualMemoryError

        with pytest.raises(VirtualMemoryError):
            space.write_page(region, 0, b"short")

    def test_dirty_tracking(self):
        space, region = _space_with_region()
        space.write(region.start, b"x")
        space.write(region.start + PAGE_SIZE, b"y")
        dirty = space.dirty_pages()
        assert [(r.name, i) for r, i in dirty] == [("heap", 0), ("heap", 1)]
        space.clear_dirty()
        assert space.dirty_pages() == []

    def test_resident_accounting(self):
        space, region = _space_with_region()
        assert space.resident_pages == 0
        space.write(region.start, b"x")
        assert space.resident_pages == 1
        assert space.resident_bytes == PAGE_SIZE
        assert space.mapped_bytes == 4 * PAGE_SIZE


class TestCheckpointProtection:
    def test_protect_flags_resident_pages_only(self):
        space, region = _space_with_region()
        space.write(region.start, b"x")
        flagged = space.protect_resident_pages()
        assert flagged == 1
        assert 0 in region.ckpt_flagged

    def test_readonly_regions_not_flagged(self):
        space = AddressSpace()
        rw = space.mmap(1)
        ro = space.mmap(1, prot=PROT_READ)
        space.write(rw.start, b"x")
        space.protect_resident_pages()
        assert not ro.ckpt_flagged

    def test_fault_handler_called_once_per_page(self):
        space, region = _space_with_region()
        space.write(region.start, b"original")
        space.protect_resident_pages()
        faults = []
        space.set_fault_handler(lambda r, p: faults.append((r.name, p)))
        space.write(region.start, b"new")
        space.write(region.start + 8, b"more")  # same page, no second fault
        assert faults == [("heap", 0)]

    def test_fault_handler_sees_pre_write_content(self):
        """The COW copy must capture the page as it was at checkpoint time."""
        space, region = _space_with_region()
        space.write(region.start, b"original")
        space.protect_resident_pages()
        captured = {}
        space.set_fault_handler(
            lambda r, p: captured.setdefault(p, r.page_content(p))
        )
        space.write(region.start, b"modified")
        assert captured[0].startswith(b"original")

    def test_unhandled_flagged_fault_raises_pagefault(self):
        space, region = _space_with_region()
        space.write(region.start, b"x")
        space.protect_resident_pages()
        with pytest.raises(PageFault):
            space.write(region.start, b"y")

    def test_clear_checkpoint_flags(self):
        space, region = _space_with_region()
        space.write(region.start, b"x")
        space.protect_resident_pages()
        space.clear_checkpoint_flags()
        space.write(region.start, b"y")  # no fault
        assert space.fault_count == 0


class TestInterceptedSyscalls:
    def test_mprotect_to_readonly_clears_flags(self):
        """Section 5.1.2: an app downgrading protection must see future
        faults itself, so the checkpoint flag is removed."""
        space, region = _space_with_region()
        space.write(region.start, b"x")
        space.protect_resident_pages()
        space.mprotect(region.start, PROT_READ)
        assert not region.ckpt_flagged
        with pytest.raises(SegmentationFault):
            space.write(region.start, b"y")

    def test_mprotect_unknown_region(self):
        space = AddressSpace()
        from repro.common.errors import VirtualMemoryError

        with pytest.raises(VirtualMemoryError):
            space.mprotect(0x5000, PROT_READ)

    def test_mremap_shrink_discards_state(self):
        space, region = _space_with_region(4)
        space.write(region.start + 3 * PAGE_SIZE, b"tail")
        space.protect_resident_pages()
        space.mremap(region.start, 2)
        assert region.npages == 2
        assert 3 not in region.pages
        assert 3 not in region.ckpt_flagged

    def test_mremap_grow(self):
        space, region = _space_with_region(2)
        space.mremap(region.start, 8)
        space.write(region.start + 7 * PAGE_SIZE, b"x")
        assert space.read(region.start + 7 * PAGE_SIZE, 1) == b"x"

    def test_mremap_to_zero_rejected(self):
        space, region = _space_with_region()
        from repro.common.errors import VirtualMemoryError

        with pytest.raises(VirtualMemoryError):
            space.mremap(region.start, 0)

    def test_munmap_removes_from_incremental_state(self):
        space, region = _space_with_region()
        space.write(region.start, b"x")
        space.munmap(region.start)
        assert space.dirty_pages() == []
