"""Integration tests for the checkpoint engine (sections 5.1.1 / 5.1.2)."""

from repro.common.clock import VirtualClock
from repro.common.costs import PAGE_SIZE
from repro.common.units import ms, seconds
from repro.checkpoint.engine import CheckpointEngine, EngineOptions
from repro.checkpoint.storage import CheckpointStorage
from repro.fs.branch import BranchableStore
from repro.vex.kernel import Kernel
from repro.vex.process import ProcessState


def make_rig(options=None, nprocs=3, pages_per_proc=8, compress=False,
             page_store=True):
    """A kernel + container with writable memory + fs + engine."""
    kernel = Kernel(clock=VirtualClock())
    container = kernel.create_container("desktop")
    fsstore = BranchableStore(clock=kernel.clock)
    fsstore.fs.makedirs("/home/user")
    storage = CheckpointStorage(clock=kernel.clock, compress=compress,
                                page_store=page_store)
    procs = []
    init = container.spawn("init")
    procs.append(init)
    for i in range(nprocs - 1):
        proc = container.spawn("app%d" % i, parent=init)
        procs.append(proc)
    for proc in procs:
        region = proc.address_space.mmap(pages_per_proc, name="heap")
        for page in range(pages_per_proc):
            proc.address_space.write(
                region.start + page * PAGE_SIZE,
                ("%s-page-%d" % (proc.name, page)).encode(),
            )
    engine = CheckpointEngine(kernel, container, fsstore, storage, options)
    return kernel, container, fsstore, storage, engine, procs


class TestBasicCheckpoint:
    def test_checkpoint_stores_image(self):
        _k, _c, _f, storage, engine, _p = make_rig()
        result = engine.checkpoint()
        assert result.checkpoint_id == 1
        assert 1 in storage
        assert result.image_bytes > 0

    def test_first_checkpoint_is_full(self):
        *_rest, engine, procs = make_rig(nprocs=2, pages_per_proc=4)
        result = engine.checkpoint()
        assert result.full
        assert result.saved_pages == 2 * 4

    def test_processes_resumed_after_checkpoint(self):
        _k, container, *_rest, engine, _p = make_rig()
        engine.checkpoint()
        assert all(
            p.state is ProcessState.RUNNABLE for p in container.live_processes()
        )

    def test_checkpoint_counter_recorded_in_fs(self):
        _k, _c, fsstore, _s, engine, _p = make_rig()
        engine.checkpoint()
        assert fsstore.fs.txn_for_checkpoint(1) > 0

    def test_result_counts_processes(self):
        *_rest, engine, procs = make_rig(nprocs=4)
        result = engine.checkpoint()
        assert result.process_count == 4

    def test_history_accumulates(self):
        *_rest, engine, _p = make_rig()
        engine.checkpoint()
        engine.checkpoint()
        assert len(engine.history) == 2
        assert engine.average_downtime_us() > 0

    def test_image_roundtrips_through_storage(self):
        _k, _c, _f, storage, engine, procs = make_rig(nprocs=2, pages_per_proc=2)
        engine.checkpoint()
        image = storage.load(1)
        assert image.checkpoint_id == 1
        assert len(image.processes) == 2
        key = (procs[0].vpid, procs[0].address_space.regions()[0].start, 0)
        assert image.pages[key].startswith(b"init-page-0")


class TestIncremental:
    def test_second_checkpoint_saves_only_dirty(self):
        _k, _c, _f, _s, engine, procs = make_rig(nprocs=2, pages_per_proc=8)
        engine.checkpoint()
        # Dirty exactly two pages in one process.
        space = procs[0].address_space
        region = space.regions()[0]
        space.write(region.start, b"modified")
        space.write(region.start + 3 * PAGE_SIZE, b"modified")
        result = engine.checkpoint()
        assert not result.full
        assert result.saved_pages == 2

    def test_no_changes_saves_nothing(self):
        *_rest, engine, _p = make_rig()
        engine.checkpoint()
        result = engine.checkpoint()
        assert result.saved_pages == 0

    def test_full_checkpoint_interval(self):
        options = EngineOptions(full_checkpoint_interval=2)
        *_rest, engine, _p = make_rig(options)
        assert engine.checkpoint().full          # 1: first is always full
        assert not engine.checkpoint().full      # 2: incremental
        assert not engine.checkpoint().full      # 3: incremental
        assert engine.checkpoint().full          # 4: interval reached

    def test_incremental_disabled_always_full(self):
        options = EngineOptions(use_incremental=False)
        *_rest, engine, procs = make_rig(options, nprocs=2, pages_per_proc=4)
        engine.checkpoint()
        result = engine.checkpoint()
        assert result.full
        assert result.saved_pages == 8

    def test_new_pages_after_checkpoint_are_saved(self):
        _k, _c, _f, _s, engine, procs = make_rig(nprocs=1, pages_per_proc=2)
        engine.checkpoint()
        space = procs[0].address_space
        region = space.mmap(2, name="fresh")
        space.write(region.start, b"new data")
        result = engine.checkpoint()
        assert result.saved_pages == 1

    def test_incremental_much_smaller_than_full(self):
        """The storage argument for incremental checkpoints."""
        _k, _c, _f, storage, engine, procs = make_rig(nprocs=2, pages_per_proc=64)
        engine.checkpoint()
        full_bytes = storage.size_of(1)[0]
        space = procs[0].address_space
        region = space.regions()[0]
        space.write(region.start, b"tiny change")
        engine.checkpoint()
        incr_bytes = storage.size_of(2)[0]
        assert incr_bytes < full_bytes / 10


class TestCOW:
    def test_saved_pages_are_protected_after_checkpoint(self):
        *_rest, engine, procs = make_rig(nprocs=1, pages_per_proc=2)
        engine.checkpoint()
        region = procs[0].address_space.regions()[0]
        assert region.ckpt_flagged == {0, 1}

    def test_write_after_checkpoint_faults_once(self):
        *_rest, engine, procs = make_rig(nprocs=1, pages_per_proc=2)
        engine.checkpoint()
        space = procs[0].address_space
        region = space.regions()[0]
        space.write(region.start, b"post-checkpoint")
        assert space.fault_count == 1
        assert 0 not in region.ckpt_flagged
        assert 0 in region.dirty

    def test_cow_preserves_original_content_in_image(self):
        """A write landing between resume and writeback must not leak into
        the checkpoint image — the COW copy holds the original."""
        _k, _c, _f, storage, engine, procs = make_rig(nprocs=1, pages_per_proc=2)
        space = procs[0].address_space
        region = space.regions()[0]

        def mutate_after_resume():
            space.write(region.start, b"dirty-after-resume")

        engine.checkpoint(on_resumed=mutate_after_resume)
        image = storage.load(1)
        key = (procs[0].vpid, region.start, 0)
        assert image.pages[key].startswith(b"init-page-0")
        # The live memory, by contrast, carries the new content.
        assert space.read(region.start, 18) == b"dirty-after-resume"

    def test_cow_disabled_copies_during_downtime(self):
        options_cow = EngineOptions(use_cow=True)
        options_copy = EngineOptions(use_cow=False)
        *_r1, engine_cow, _p1 = make_rig(options_cow, nprocs=2, pages_per_proc=256)
        *_r2, engine_copy, _p2 = make_rig(options_copy, nprocs=2, pages_per_proc=256)
        cow = engine_cow.checkpoint()
        copy = engine_copy.checkpoint()
        assert cow.capture_us < copy.capture_us

    def test_cow_image_matches_stop_and_copy_image(self):
        """Both capture strategies must produce identical page contents."""
        _k1, _c1, _f1, storage_cow, engine_cow, _p1 = make_rig(
            EngineOptions(use_cow=True), nprocs=1, pages_per_proc=4
        )
        _k2, _c2, _f2, storage_copy, engine_copy, _p2 = make_rig(
            EngineOptions(use_cow=False), nprocs=1, pages_per_proc=4
        )
        engine_cow.checkpoint()
        engine_copy.checkpoint()
        pages_cow = storage_cow.load(1).pages
        pages_copy = storage_copy.load(1).pages
        assert {k: v for k, v in pages_cow.items()} == {
            k: v for k, v in pages_copy.items()
        }


class TestDowntimeOptimizations:
    def test_downtime_under_10ms_with_optimizations(self):
        """Figure 3's headline: downtime below 10 ms for app benchmarks."""
        *_rest, engine, _p = make_rig(nprocs=5, pages_per_proc=32)
        engine.checkpoint()
        # Dirty a realistic per-second page count and checkpoint again.
        result = engine.checkpoint()
        assert result.downtime_us < ms(10)

    def test_deferred_writeback_keeps_disk_out_of_downtime(self):
        deferred = EngineOptions(defer_writeback=True)
        sync = EngineOptions(defer_writeback=False)
        *_r1, engine_d, _p1 = make_rig(deferred, nprocs=2, pages_per_proc=128)
        *_r2, engine_s, _p2 = make_rig(sync, nprocs=2, pages_per_proc=128)
        d = engine_d.checkpoint()
        s = engine_s.checkpoint()
        assert d.downtime_us < s.downtime_us
        assert d.writeback_us > 0

    def test_pre_snapshot_shrinks_fs_snapshot_downtime(self):
        pre = EngineOptions(pre_snapshot=True)
        nopre = EngineOptions(pre_snapshot=False)
        _k1, _c1, fs1, _s1, engine1, _p1 = make_rig(pre)
        _k2, _c2, fs2, _s2, engine2, _p2 = make_rig(nopre)
        for fs in (fs1, fs2):
            fs.fs.write_file("/home/user/out.dat", b"x" * (64 * 4096))
        r1 = engine1.checkpoint()
        r2 = engine2.checkpoint()
        assert r1.fs_snapshot_us < r2.fs_snapshot_us
        assert r1.pre_snapshot_us > 0

    def test_pre_quiesce_moves_io_wait_out_of_downtime(self):
        """A process mid-disk-I/O delays stopping; pre-quiescing absorbs
        the wait before the stopped window starts."""
        pre = EngineOptions(pre_quiesce=True, pre_quiesce_timeout_us=ms(100))
        nopre = EngineOptions(pre_quiesce=False)
        _k1, c1, _f1, _s1, engine1, p1 = make_rig(pre)
        _k2, c2, _f2, _s2, engine2, p2 = make_rig(nopre)
        p1[1].begin_io(_k1.clock.now_us, ms(20))
        p2[1].begin_io(_k2.clock.now_us, ms(20))
        r1 = engine1.checkpoint()
        r2 = engine2.checkpoint()
        assert r1.pre_quiesce_us >= ms(19)
        assert r1.quiesce_us < r2.quiesce_us
        assert r1.downtime_us < r2.downtime_us

    def test_pre_quiesce_timeout_bounds_the_wait(self):
        options = EngineOptions(pre_quiesce=True, pre_quiesce_timeout_us=ms(5))
        kernel, _c, _f, _s, engine, procs = make_rig(options)
        procs[1].begin_io(kernel.clock.now_us, seconds(10))
        result = engine.checkpoint()
        assert result.pre_quiesce_us <= ms(6)

    def test_all_optimizations_beat_none(self):
        """The ablation headline: the unoptimized engine's downtime is
        orders of magnitude worse.  Runs on the whole-blob layout — with
        the page store even non-incremental fulls dedup their unchanged
        pages, which hides exactly the cost this ablation measures."""
        optimized = EngineOptions()
        unoptimized = EngineOptions(
            use_cow=False,
            use_incremental=False,
            defer_writeback=False,
            pre_snapshot=False,
            pre_quiesce=False,
        )
        *_r1, engine_o, _p1 = make_rig(optimized, nprocs=3,
                                       pages_per_proc=256, page_store=False)
        *_r2, engine_u, _p2 = make_rig(unoptimized, nprocs=3,
                                       pages_per_proc=256, page_store=False)
        engine_o.checkpoint()
        engine_u.checkpoint()
        o = engine_o.checkpoint()
        u = engine_u.checkpoint()
        assert o.downtime_us * 10 < u.downtime_us

    def test_estimated_buffer_tracks_recent_sizes(self):
        *_rest, engine, _p = make_rig()
        initial = engine.estimated_buffer_bytes
        engine.checkpoint()
        assert engine.estimated_buffer_bytes != initial


class TestRelinking:
    def test_unlinked_open_file_relinked_into_snapshot(self):
        _k, _c, fsstore, storage, engine, procs = make_rig(nprocs=1)
        fs = fsstore.fs
        fs.create("/home/user/scratch", b"unsaved")
        handle = fs.open("/home/user/scratch")
        entry = procs[0].open_fd(path="/home/user/scratch", inode=handle.inode_id)
        fs.unlink("/home/user/scratch")
        entry.unlinked = True
        engine.checkpoint()
        image = storage.load(1)
        assert len(image.relinked_files) == 1
        vpid, fd, target = image.relinked_files[0]
        view = fs.view_for_checkpoint(1)
        assert view.read_file(target) == b"unsaved"

    def test_linked_files_not_relinked(self):
        _k, _c, fsstore, storage, engine, procs = make_rig(nprocs=1)
        fs = fsstore.fs
        fs.create("/home/user/kept", b"data")
        handle = fs.open("/home/user/kept")
        procs[0].open_fd(path="/home/user/kept", inode=handle.inode_id)
        engine.checkpoint()
        assert storage.load(1).relinked_files == []


class TestCompression:
    def test_compressed_storage_accounts_fewer_bytes(self):
        _k1, _c1, _f1, storage_raw, engine_raw, _p1 = make_rig(compress=False)
        _k2, _c2, _f2, storage_z, engine_z, _p2 = make_rig(compress=True)
        engine_raw.checkpoint()
        engine_z.checkpoint()
        unc, comp = storage_z.size_of(1)
        assert comp < unc
