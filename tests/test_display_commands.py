"""Unit tests for regions and the THINC command set."""

import numpy as np
import pytest

from repro.common.errors import DisplayError
from repro.display.commands import (
    COMMAND_TYPES,
    BitmapCmd,
    CopyCmd,
    PatternFillCmd,
    RawCmd,
    Region,
    SolidFillCmd,
)
from repro.display.framebuffer import Framebuffer
from repro.display.protocol import decode_command, encode_command


class TestRegion:
    def test_area_and_edges(self):
        r = Region(2, 3, 10, 20)
        assert r.area == 200
        assert (r.x2, r.y2) == (12, 23)

    def test_negative_extent_rejected(self):
        with pytest.raises(DisplayError):
            Region(0, 0, -1, 5)

    def test_contains(self):
        outer = Region(0, 0, 100, 100)
        assert outer.contains(Region(10, 10, 20, 20))
        assert outer.contains(outer)
        assert not outer.contains(Region(90, 90, 20, 20))

    def test_intersects_and_intersection(self):
        a = Region(0, 0, 10, 10)
        b = Region(5, 5, 10, 10)
        assert a.intersects(b)
        assert a.intersection(b) == Region(5, 5, 5, 5)

    def test_disjoint_intersection_is_empty(self):
        a = Region(0, 0, 10, 10)
        b = Region(20, 20, 5, 5)
        assert not a.intersects(b)
        assert a.intersection(b).is_empty()

    def test_touching_edges_do_not_intersect(self):
        a = Region(0, 0, 10, 10)
        b = Region(10, 0, 10, 10)
        assert not a.intersects(b)

    def test_union_bounds(self):
        a = Region(0, 0, 10, 10)
        b = Region(20, 20, 5, 5)
        assert a.union_bounds(b) == Region(0, 0, 25, 25)

    def test_union_bounds_with_empty(self):
        a = Region(5, 5, 10, 10)
        empty = Region(0, 0, 0, 0)
        assert a.union_bounds(empty) == a
        assert empty.union_bounds(a) == a

    def test_scaled_covers_original_pixels(self):
        r = Region(3, 3, 7, 7).scaled(0.5)
        # ceil of right edge: (3+7)*0.5 = 5
        assert r == Region(1, 1, 4, 4)

    def test_scale_factor_must_be_positive(self):
        with pytest.raises(DisplayError):
            Region(0, 0, 1, 1).scaled(0)

    def test_clipped(self):
        r = Region(-5, -5, 20, 20).clipped(10, 10)
        assert r == Region(0, 0, 10, 10)


def _fb(w=64, h=48):
    return Framebuffer(w, h)


class TestSolidFill:
    def test_apply(self):
        fb = _fb()
        SolidFillCmd(Region(0, 0, 64, 48), 0xAABBCC).apply(fb)
        assert np.all(fb.pixels == 0xAABBCC)

    def test_partial_fill(self):
        fb = _fb()
        SolidFillCmd(Region(10, 10, 5, 5), 7).apply(fb)
        assert fb.pixels[12, 12] == 7
        assert fb.pixels[0, 0] == 0

    def test_roundtrip(self):
        cmd = SolidFillCmd(Region(1, 2, 3, 4), 0xDEADBEEF)
        decoded = SolidFillCmd.decode_payload(cmd.encode_payload())
        assert decoded == cmd

    def test_payload_is_tiny(self):
        """SFILL is the efficiency argument of section 4.1: a full-screen
        solid fill costs a constant few bytes, not w*h pixels."""
        cmd = SolidFillCmd(Region(0, 0, 1024, 768), 0)
        assert cmd.payload_size < 32


class TestRaw:
    def test_apply_and_roundtrip(self):
        fb = _fb()
        pixels = np.arange(20, dtype=np.uint32).reshape(4, 5)
        cmd = RawCmd(Region(2, 3, 5, 4), pixels)
        cmd.apply(fb)
        assert np.array_equal(fb.pixels[3:7, 2:7], pixels)
        decoded = RawCmd.decode_payload(cmd.encode_payload())
        assert decoded == cmd

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DisplayError):
            RawCmd(Region(0, 0, 5, 4), np.zeros((5, 5), dtype=np.uint32))

    def test_scaled_halves_payload(self):
        pixels = np.random.randint(0, 2**32, size=(40, 40), dtype=np.uint32)
        cmd = RawCmd(Region(0, 0, 40, 40), pixels)
        small = cmd.scaled(0.5)
        assert small.region.w == 20 and small.region.h == 20
        assert small.payload_size < cmd.payload_size


class TestCopy:
    def test_apply_moves_pixels(self):
        fb = _fb()
        SolidFillCmd(Region(0, 0, 8, 8), 0x11).apply(fb)
        CopyCmd(Region(20, 20, 8, 8), Region(0, 0, 8, 8)).apply(fb)
        assert np.all(fb.pixels[20:28, 20:28] == 0x11)

    def test_size_mismatch_rejected(self):
        with pytest.raises(DisplayError):
            CopyCmd(Region(0, 0, 4, 4), Region(0, 0, 5, 5))

    def test_not_opaque(self):
        assert not CopyCmd.OPAQUE

    def test_roundtrip(self):
        cmd = CopyCmd(Region(1, 1, 4, 4), Region(9, 9, 4, 4))
        assert CopyCmd.decode_payload(cmd.encode_payload()) == cmd

    def test_scroll_semantics_overlapping(self):
        """Scrolling copies must read the source before writing (no smear)."""
        fb = _fb(8, 8)
        fb.pixels[:] = np.arange(64, dtype=np.uint32).reshape(8, 8)
        original = fb.pixels.copy()
        CopyCmd(Region(0, 0, 8, 7), Region(0, 1, 8, 7)).apply(fb)
        assert np.array_equal(fb.pixels[0:7, :], original[1:8, :])


class TestPatternFill:
    def test_apply_tiles_pattern(self):
        fb = _fb(8, 8)
        pattern = np.array([[1, 2], [3, 4]], dtype=np.uint32)
        PatternFillCmd(Region(0, 0, 8, 8), pattern).apply(fb)
        assert fb.pixels[0, 0] == 1
        assert fb.pixels[0, 1] == 2
        assert fb.pixels[1, 0] == 3
        assert fb.pixels[5, 5] == 4

    def test_roundtrip(self):
        pattern = np.arange(16, dtype=np.uint32).reshape(4, 4)
        cmd = PatternFillCmd(Region(3, 3, 9, 9), pattern)
        assert PatternFillCmd.decode_payload(cmd.encode_payload()) == cmd

    def test_empty_pattern_rejected(self):
        with pytest.raises(DisplayError):
            PatternFillCmd(Region(0, 0, 4, 4), np.zeros((0, 2), dtype=np.uint32))


class TestBitmap:
    def test_apply_expands_fg_bg(self):
        fb = _fb(8, 8)
        bits = np.zeros((4, 4), dtype=bool)
        bits[0, 0] = True
        BitmapCmd(Region(0, 0, 4, 4), bits, fg=9, bg=5).apply(fb)
        assert fb.pixels[0, 0] == 9
        assert fb.pixels[1, 1] == 5

    def test_roundtrip_non_multiple_of_eight(self):
        bits = np.random.default_rng(1).random((5, 7)) > 0.5
        cmd = BitmapCmd(Region(0, 0, 7, 5), bits, fg=1, bg=2)
        decoded = BitmapCmd.decode_payload(cmd.encode_payload())
        assert decoded == cmd
        assert np.array_equal(decoded.bits, bits)

    def test_payload_is_one_bit_per_pixel(self):
        """BITMAP carries glyphs at ~1bpp, far smaller than RAW at 32bpp."""
        bits = np.ones((16, 16), dtype=bool)
        cmd = BitmapCmd(Region(0, 0, 16, 16), bits, 1, 0)
        raw_size = 16 * 16 * 4
        assert cmd.payload_size < raw_size / 4


class TestProtocolCodec:
    @pytest.mark.parametrize("tag", sorted(COMMAND_TYPES))
    def test_all_tags_registered(self, tag):
        assert COMMAND_TYPES[tag].TAG == tag

    def test_encode_decode_with_timestamp(self):
        cmd = SolidFillCmd(Region(0, 0, 2, 2), 3)
        tag, payload = encode_command(cmd, 123456)
        decoded, ts = decode_command(tag, payload)
        assert decoded == cmd
        assert ts == 123456

    def test_unknown_tag_rejected(self):
        with pytest.raises(DisplayError):
            decode_command(99, b"\x00" * 8)
