"""Fleet service tests: admission, scheduling determinism, quotas,
shared-CAS accounting, fleet GC, and the multi-owner PageCAS contract.

The byte-level isolation property (interleaved ≡ solo) lives in
``tests/test_fleet_isolation.py``; this file covers the service layer
itself.
"""

import zlib

import numpy as np
import pytest

from repro.checkpoint.storage import PageCAS
from repro.server import Fleet, FleetError, SessionQuotas
from repro.server.fleet import DONE, RUNNING, THROTTLED
from repro.workloads.fleet_wl import build_fleet, fleet_mix


def small_fleet(seed=0, **kwargs):
    fleet = Fleet(seed=seed, **kwargs)
    fleet.admit("a", "web", units=3)
    fleet.admit("b", "gzip", units=5)
    return fleet


class TestAdmission:
    def test_duplicate_name_rejected(self):
        fleet = small_fleet()
        with pytest.raises(FleetError):
            fleet.admit("a", "gzip", units=2)

    def test_fleet_full_rejected(self):
        fleet = Fleet(max_sessions=1)
        fleet.admit("only", "gzip", units=2)
        with pytest.raises(FleetError):
            fleet.admit("more", "gzip", units=2)
        assert fleet.telemetry.metrics.counter(
            "fleet.admissions_rejected").value == 1

    def test_bad_weight_rejected(self):
        fleet = Fleet()
        with pytest.raises(FleetError):
            fleet.admit("w", "gzip", units=2, weight=0)

    def test_members_admission_ordered(self):
        fleet = small_fleet()
        assert [m.name for m in fleet.members()] == ["a", "b"]
        assert len(fleet) == 2

    def test_unknown_member_raises(self):
        with pytest.raises(FleetError):
            small_fleet().member("nope")


class TestScheduler:
    def test_same_seed_same_interleaving(self):
        def trace(seed):
            fleet = small_fleet(seed=seed)
            order = []
            while True:
                member = fleet.step()
                if member is None:
                    break
                order.append(member.name)
            return order, fleet.clock.now_us

        order_a, clock_a = trace(42)
        order_b, clock_b = trace(42)
        assert order_a == order_b
        assert clock_a == clock_b

    def test_different_seed_may_reorder_but_completes(self):
        orders = set()
        for seed in (1, 2, 3, 4):
            fleet = small_fleet(seed=seed)
            order = []
            while fleet.runnable():
                order.append(fleet.step().name)
            assert {m.state for m in fleet.members()} == {DONE}
            orders.add(tuple(order))
        # Four seeds over an 8-step schedule: at least two interleavings.
        assert len(orders) > 1

    def test_service_clock_sums_member_activity(self):
        fleet = small_fleet(seed=9)
        starts = {m.name: m.session.clock.now_us for m in fleet.members()}
        fleet.run_to_completion()
        consumed = sum(m.session.clock.now_us - starts[m.name]
                       for m in fleet.members())
        assert fleet.clock.now_us == consumed > 0

    def test_step_with_nothing_runnable(self):
        fleet = small_fleet()
        fleet.run_to_completion()
        assert fleet.step() is None

    def test_max_steps_bound(self):
        fleet = small_fleet()
        assert fleet.run_to_completion(max_steps=3) == 3
        assert any(m.state == RUNNING for m in fleet.members())


class TestQuotas:
    def test_checkpoint_byte_quota_throttles(self):
        fleet = Fleet(seed=0)
        fleet.admit("fat", "web", units=4,
                    quotas=SessionQuotas(checkpoint_bytes=1024))
        fleet.admit("ok", "gzip", units=4)
        fleet.run_to_completion()
        fat = fleet.member("fat")
        assert fat.state == THROTTLED
        quota, used, limit = fat.quota_violation
        assert quota == "checkpoint_bytes"
        assert used > limit == 1024
        assert fat.units_done < fat.run.units
        assert fleet.member("ok").state == DONE
        info = fleet.stats()["sessions"]["fat"]
        assert info["quota_violation"]["quota"] == "checkpoint_bytes"

    def test_default_quotas_apply_to_every_member(self):
        fleet = Fleet(quotas=SessionQuotas(log_bytes=1))
        fleet.admit("a", "web", units=3)
        fleet.run_to_completion()
        assert fleet.member("a").state == THROTTLED

    def test_unquotad_sessions_run_to_done(self):
        fleet = small_fleet()
        fleet.run_to_completion()
        assert {m.state for m in fleet.members()} == {DONE}
        assert all(m.units_done == m.run.units for m in fleet.members())


class TestSharedCas:
    def test_identical_scenarios_dedup_across_sessions(self):
        fleet = Fleet(seed=3)
        fleet.admit("one", "web", units=3)
        fleet.admit("two", "web", units=3)
        fleet.run_to_completion()
        stats = fleet.stats()["cas"]
        assert stats["cross_pages_deduped"] > 0
        assert stats["cross_dedup_bytes_saved"] > 0
        # Two byte-identical page streams: every page is stored once and
        # referenced by both owners.
        assert stats["dedup_ratio"] == pytest.approx(0.5, abs=0.01)

    def test_physical_never_exceeds_sum_of_logical(self):
        fleet = build_fleet(4, seed=1)
        fleet.run_to_completion()
        logical = sum(
            fleet.cas.owner_logical_totals(m.dejaview.storage.owner)[0]
            for m in fleet.members())
        assert 0 < fleet.cas.total_uncompressed_bytes < logical

    def test_member_storage_reports_stay_owner_logical(self):
        """A member's own accounting must not see the sharing: its
        logical totals equal its manifests plus its referenced pages."""
        fleet = Fleet(seed=3)
        fleet.admit("one", "web", units=3)
        fleet.admit("two", "web", units=3)
        fleet.run_to_completion()
        for member in fleet.members():
            storage = member.dejaview.storage
            man_raw = sum(storage._manifest_sizes[i][0]
                          for i in storage.stored_ids())
            page_raw = fleet.cas.owner_logical_totals(storage.owner)[0]
            assert storage.total_uncompressed_bytes == man_raw + page_raw

    def test_fleet_gc_prunes_and_compacts(self):
        fleet = Fleet(seed=2)
        fleet.admit("one", "web", units=3)
        fleet.admit("two", "web", units=3)
        fleet.run_to_completion()
        pages_before = len(fleet.cas.sizes)
        report = fleet.gc(keep_last=1)
        assert set(report["sessions"]) == {"one", "two"}
        assert "bytes_reclaimed" in report["compaction"]
        assert len(fleet.cas.sizes) <= pages_before
        # Every surviving checkpoint still revives.
        for member in fleet.members():
            revived = member.dejaview.take_me_back(
                member.session.clock.now_us)
            assert revived.container.live_processes()

    def test_fleet_compaction_charges_service_clock_only(self):
        fleet = Fleet(seed=2)
        fleet.admit("one", "web", units=3)
        fleet.admit("two", "gzip", units=4)
        fleet.run_to_completion()
        # Orphan some pages: drop one owner's manifests wholesale so its
        # exclusive pages lose their last reference.
        storage = fleet.member("one").dejaview.storage
        for image_id in storage.stored_ids():
            storage.delete(image_id)
        clocks = {m.name: m.session.clock.now_us for m in fleet.members()}
        service_before = fleet.clock.now_us
        report = fleet.compact(dead_fraction=0.0)
        for member in fleet.members():
            assert member.session.clock.now_us == clocks[member.name]
        if report["extents_rewritten"]:
            assert fleet.clock.now_us > service_before


class TestFleetObservability:
    def test_stats_shape(self):
        fleet = small_fleet(seed=11)
        fleet.run_to_completion()
        stats = fleet.stats()
        assert stats["seed"] == 11
        assert set(stats["sessions"]) == {"a", "b"}
        for info in stats["sessions"].values():
            assert {"scenario", "state", "units_done", "units_total",
                    "weight", "clock_us", "checkpoints"} <= set(info)
        assert stats["cas"]["owners"] == ["a", "b"]
        assert 0.0 <= stats["cas"]["dedup_ratio"] < 1.0
        counters = stats["fleet_metrics"]["counters"]
        assert counters["fleet.steps"] == 3 + 5 + 2  # units + 2 DONE steps
        assert counters["fleet.sessions_admitted"] == 2
        assert counters["fleet.sessions_done"] == 2

    def test_rollup_sums_member_counters(self):
        fleet = small_fleet(seed=11)
        fleet.run_to_completion()
        rollup = fleet.stats()["rollup"]
        total_ticks = sum(
            m.dejaview.telemetry.metrics.counter("tick.count").value
            for m in fleet.members())
        assert rollup["counters"]["tick.count"] == total_ticks > 0
        down = rollup["histograms"].get("checkpoint.downtime_us")
        assert down and down["count"] > 0 and down["p95"] is not None


class TestFleetMix:
    def test_mix_repeats_scenarios(self):
        assert [s for s, _u in fleet_mix(4)] == ["web", "gzip"] * 2
        assert len({s for s, _u in fleet_mix(16)}) == 8
        mix16 = [s for s, _u in fleet_mix(16)]
        assert mix16[:8] == mix16[8:]

    def test_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            fleet_mix(0)

    def test_units_scale(self):
        fleet = build_fleet(2, seed=0, units_scale=0.5)
        units = [m.run.units for m in fleet.members()]
        assert units == [max(1, u // 2) for _s, u in fleet_mix(2)]


class TestPageCasMultiOwner:
    """The refcount contract sharing rests on, exercised directly."""

    def _committed(self, cas, digest, payload):
        cas.commit_page(digest, payload, len(payload), len(payload) // 2,
                        mode=False)

    def test_unref_reclaims_only_at_global_zero(self):
        cas = PageCAS()
        self._committed(cas, b"d1", b"x" * 64)
        assert cas.add_ref("alice", b"d1") is True
        assert cas.add_ref("bob", b"d1") is True
        assert cas.add_ref("bob", b"d1") is False  # second ref, same owner
        assert cas.unref("alice", b"d1") == (True, False)
        assert b"d1" in cas.pages  # bob still holds it
        assert cas.unref("bob", b"d1") == (False, False)
        assert cas.unref("bob", b"d1") == (True, True)
        assert b"d1" not in cas.pages

    def test_rebuild_one_owner_never_touches_the_other(self):
        cas = PageCAS()
        for digest in (b"a", b"b", b"shared"):
            self._committed(cas, digest, digest * 32)
        cas.add_ref("alice", b"a")
        cas.add_ref("alice", b"shared")
        cas.add_ref("bob", b"b")
        cas.add_ref("bob", b"shared")
        # Alice crashed and lost everything: her rebuilt manifest set is
        # empty.  Only her exclusive page may go.
        reclaimed = cas.rebuild_owner_refs("alice", [])
        assert reclaimed == 1
        assert b"a" not in cas.pages
        assert b"b" in cas.pages and b"shared" in cas.pages
        assert cas.owner_refs["bob"] == {b"b": 1, b"shared": 1}
        assert cas.refs[b"shared"] == 1

    def test_owner_logical_totals(self):
        cas = PageCAS()
        self._committed(cas, b"p", b"y" * 100)
        cas.add_ref("alice", b"p")
        cas.add_ref("bob", b"p")
        assert cas.owner_logical_totals("alice") == (100, 50)
        assert cas.owner_logical_totals("bob") == (100, 50)
        assert cas.total_uncompressed_bytes == 100  # physical: once


class TestStableAppSeeding:
    """Regression: app RNGs must seed from a stable digest of the app
    name, not builtin ``hash`` (which varies with PYTHONHASHSEED across
    processes — and would break cross-session page dedup)."""

    PINNED_SEED = 3438408122  # zlib.crc32(b"editor")
    PINNED_FIRST_8 = "33175f42d7fe0e86"

    def test_editor_first_draw_is_pinned(self):
        from repro.desktop.session import DesktopSession

        session = DesktopSession(width=64, height=48)
        editor = session.launch("editor")
        assert editor._rng.bytes(8).hex() == self.PINNED_FIRST_8

    def test_seed_matches_crc32_of_name(self):
        assert zlib.crc32(b"editor") == self.PINNED_SEED
        rng = np.random.default_rng(self.PINNED_SEED)
        assert rng.bytes(8).hex() == self.PINNED_FIRST_8

    def test_same_name_same_stream_across_sessions(self):
        from repro.desktop.session import DesktopSession

        draws = []
        for _ in range(2):
            session = DesktopSession(width=64, height=48)
            app = session.launch("terminal")
            draws.append(app._rng.bytes(16))
        assert draws[0] == draws[1]
