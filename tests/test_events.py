"""Unit tests for the synchronous event bus."""

import pytest

from repro.common.events import EventBus


class TestEventBus:
    def test_publish_delivers_to_subscriber(self):
        bus = EventBus()
        seen = []
        bus.subscribe("text", seen.append)
        delivered = bus.publish("text", "hello")
        assert delivered == 1
        assert seen == ["hello"]

    def test_publish_without_subscribers_returns_zero(self):
        assert EventBus().publish("nobody", 1) == 0

    def test_multiple_subscribers_in_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda e: order.append("a"))
        bus.subscribe("t", lambda e: order.append("b"))
        bus.publish("t", None)
        assert order == ["a", "b"]

    def test_topics_are_isolated(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", "x")
        assert seen == []

    def test_cancel_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe("t", seen.append)
        sub.cancel()
        bus.publish("t", 1)
        assert seen == []
        assert not sub.active

    def test_cancel_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe("t", lambda e: None)
        sub.cancel()
        sub.cancel()
        assert bus.subscriber_count("t") == 0

    def test_delivery_is_synchronous(self):
        """Handlers run inline: the publisher observes their side effects
        immediately after publish() returns (section 4.2 semantics)."""
        bus = EventBus()
        state = {"handled": False}

        def handler(event):
            state["handled"] = True

        bus.subscribe("t", handler)
        bus.publish("t", None)
        assert state["handled"]

    def test_handler_exception_propagates_to_publisher(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe("t", bad)
        with pytest.raises(RuntimeError):
            bus.publish("t", None)

    def test_subscribe_during_delivery_does_not_receive_current_event(self):
        bus = EventBus()
        late = []

        def handler(event):
            bus.subscribe("t", late.append)

        bus.subscribe("t", handler)
        bus.publish("t", "first")
        assert late == []
        bus.publish("t", "second")
        assert "second" in late

    def test_non_callable_handler_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe("t", "not-callable")

    def test_published_count(self):
        bus = EventBus()
        bus.publish("a", 1)
        bus.publish("b", 2)
        assert bus.published_count == 2

    def test_delivered_count_across_topics(self):
        bus = EventBus()
        bus.subscribe("a", lambda e: None)
        bus.subscribe("a", lambda e: None)
        bus.subscribe("b", lambda e: None)
        bus.publish("a", 1)
        bus.publish("b", 2)
        bus.publish("c", 3)  # no subscribers
        assert bus.published_count == 3
        assert bus.delivered_count == 3
        assert bus.error_count == 0

    def test_delivery_counted_even_when_handler_raises(self):
        """A raising handler was still *delivered to*: the return value,
        delivered_count, and error_count must all reflect that instead of
        silently losing the delivery."""
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe("t", bad)
        bus.subscribe("t", seen.append)  # never reached: exception aborts
        with pytest.raises(RuntimeError):
            bus.publish("t", "x")
        assert seen == ["x"]
        assert bus.delivered_count == 2  # first handler + the raising one
        assert bus.error_count == 1
        # The publisher can retry; accounting keeps accruing consistently.
        with pytest.raises(RuntimeError):
            bus.publish("t", "y")
        assert bus.delivered_count == 4
        assert bus.error_count == 2

    def test_cancel_self_during_delivery(self):
        """A handler cancelling its own subscription mid-delivery still
        finishes the current event, then stops receiving."""
        bus = EventBus()
        seen = []
        holder = {}

        def once(event):
            seen.append(event)
            holder["sub"].cancel()

        holder["sub"] = bus.subscribe("t", once)
        assert bus.publish("t", 1) == 1
        assert bus.publish("t", 2) == 0
        assert seen == [1]
        assert bus.delivered_count == 1

    def test_cancel_other_during_delivery_skips_it(self):
        """Cancelling a later subscriber while the same event is being
        delivered prevents its invocation (the copied snapshot is
        re-checked via ``sub.active``) — and it is not counted."""
        bus = EventBus()
        seen = []
        subs = {}

        def canceller(event):
            seen.append("canceller")
            subs["victim"].cancel()

        bus.subscribe("t", canceller)
        subs["victim"] = bus.subscribe(
            "t", lambda e: seen.append("victim"))
        delivered = bus.publish("t", None)
        assert seen == ["canceller"]
        assert delivered == 1
        assert bus.delivered_count == 1

    def test_subscribe_during_delivery_counts_next_publish(self):
        bus = EventBus()

        def handler(event):
            if bus.subscriber_count("t") == 1:
                bus.subscribe("t", lambda e: None)

        bus.subscribe("t", handler)
        assert bus.publish("t", None) == 1
        assert bus.publish("t", None) == 2
        assert bus.delivered_count == 3
