"""Unit tests for the virtual clock."""

import pytest

from repro.common.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now_us == 0

    def test_custom_start(self):
        assert VirtualClock(start_us=500).now_us == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_us=-1)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance_us(100)
        clock.advance_us(250)
        assert clock.now_us == 350

    def test_advance_rounds_fractional_charges(self):
        clock = VirtualClock()
        clock.advance_us(1.6)
        assert clock.now_us == 2

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance_us(-5)

    def test_advance_to_future_deadline(self):
        clock = VirtualClock()
        clock.advance_to_us(1000)
        assert clock.now_us == 1000

    def test_advance_to_past_deadline_is_noop(self):
        clock = VirtualClock(start_us=2000)
        clock.advance_to_us(1000)
        assert clock.now_us == 2000

    def test_unit_conversions(self):
        clock = VirtualClock(start_us=1_500_000)
        assert clock.now_ms == 1500.0
        assert clock.now_seconds == 1.5


class TestStopwatch:
    def test_elapsed(self):
        clock = VirtualClock()
        watch = clock.stopwatch()
        clock.advance_us(42)
        assert watch.elapsed_us == 42
        assert watch.elapsed_ms == 0.042

    def test_restart_returns_prior_elapsed(self):
        clock = VirtualClock()
        watch = clock.stopwatch()
        clock.advance_us(10)
        assert watch.restart() == 10
        clock.advance_us(5)
        assert watch.elapsed_us == 5

    def test_start_us_records_creation_instant(self):
        clock = VirtualClock(start_us=77)
        watch = clock.stopwatch()
        assert watch.start_us == 77
