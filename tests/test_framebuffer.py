"""Unit tests for the framebuffer."""

import numpy as np
import pytest

from repro.common.errors import DisplayError
from repro.display.commands import Region
from repro.display.framebuffer import Framebuffer


class TestFramebuffer:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(DisplayError):
            Framebuffer(0, 10)

    def test_initial_fill(self):
        fb = Framebuffer(4, 4, fill=0xFF)
        assert np.all(fb.pixels == 0xFF)

    def test_nbytes(self):
        assert Framebuffer(10, 10).nbytes == 400

    def test_fill_clips_out_of_bounds(self):
        fb = Framebuffer(10, 10)
        fb.fill(Region(8, 8, 10, 10), 5)
        assert fb.pixels[9, 9] == 5
        assert fb.pixels[0, 0] == 0

    def test_blit_clips_negative_origin(self):
        fb = Framebuffer(10, 10)
        block = np.arange(25, dtype=np.uint32).reshape(5, 5)
        fb.blit(Region(-2, -2, 5, 5), block)
        # Only the bottom-right 3x3 of the block lands on screen.
        assert fb.pixels[0, 0] == block[2, 2]

    def test_copy_same_size_required(self):
        fb = Framebuffer(10, 10)
        with pytest.raises(DisplayError):
            fb.copy(Region(0, 0, 2, 2), Region(0, 0, 3, 3))

    def test_read_returns_copy(self):
        fb = Framebuffer(10, 10)
        block = fb.read(Region(0, 0, 2, 2))
        block[:] = 99
        assert fb.pixels[0, 0] == 0

    def test_read_out_of_bounds_rejected(self):
        fb = Framebuffer(10, 10)
        with pytest.raises(DisplayError):
            fb.read(Region(5, 5, 10, 10))

    def test_pattern_fill_phase_stable_under_clipping(self):
        """Clipping a pattern fill must not shift the pattern phase."""
        pattern = np.array([[1, 2], [3, 4]], dtype=np.uint32)
        whole = Framebuffer(8, 8)
        whole.pattern_fill(Region(-2, -2, 12, 12), pattern)
        anchored = Framebuffer(8, 8)
        anchored.pattern_fill(Region(0, 0, 8, 8), pattern)
        assert whole.pixels[0, 0] == pattern[(0 - -2) % 2, (0 - -2) % 2]

    def test_snapshot_roundtrip(self):
        fb = Framebuffer(16, 12)
        fb.pixels[:] = np.random.default_rng(0).integers(
            0, 2**32, size=(12, 16), dtype=np.uint32
        )
        restored = Framebuffer.from_snapshot(fb.snapshot_bytes())
        assert restored == fb

    def test_snapshot_truncation_detected(self):
        fb = Framebuffer(16, 12)
        with pytest.raises(DisplayError):
            Framebuffer.from_snapshot(fb.snapshot_bytes()[:-10])

    def test_clone_is_independent(self):
        fb = Framebuffer(4, 4)
        clone = fb.clone()
        clone.fill(Region(0, 0, 4, 4), 1)
        assert fb.pixels[0, 0] == 0

    def test_checksum_changes_with_content(self):
        fb = Framebuffer(4, 4)
        before = fb.checksum()
        fb.fill(Region(0, 0, 1, 1), 1)
        assert fb.checksum() != before

    def test_scaled_down(self):
        fb = Framebuffer(8, 8)
        fb.pixels[:4, :4] = 1
        small = fb.scaled(0.5)
        assert (small.width, small.height) == (4, 4)
        assert small.pixels[0, 0] == 1

    def test_scaled_identity_returns_clone(self):
        fb = Framebuffer(4, 4, fill=3)
        clone = fb.scaled(1.0)
        assert clone == fb
        clone.fill(Region(0, 0, 4, 4), 0)
        assert fb.pixels[0, 0] == 3

    def test_equality(self):
        a = Framebuffer(4, 4, fill=1)
        b = Framebuffer(4, 4, fill=1)
        c = Framebuffer(4, 5, fill=1)
        assert a == b
        assert a != c
        assert a != "not a framebuffer"
