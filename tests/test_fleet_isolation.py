"""The fleet determinism contract, property-tested.

**Isolation**: running K sessions interleaved under the fleet scheduler
produces, for every member, a recording *byte-identical* to running that
session's scenario alone — same display log and screenshot bytes, same
timeline, same checkpoint manifests and storage accounting, same search
results, same final virtual clock.  This must hold for every scheduler
seed (sessions share no behavior-affecting state; the seed only picks
which interleaving the service clock observes), and it must keep holding
when one member crashes mid-checkpoint, because a shared-CAS crash plus
owner-scoped recovery must never leak into healthy sessions.

Seeds: three baked in, plus ``FAULT_SEED`` from the environment when set
(the CI fault-matrix sweep routes extra seeds through here).
"""

import os

import pytest

from repro.checkpoint.verify import verify_chain
from repro.common.faults import FaultPlan
from repro.index.query import Query
from repro.server import Fleet
from repro.server.fleet import CRASHED, DONE, RECOVERED
from repro.workloads import run_scenario

SEEDS = sorted({101, 202, 303, int(os.environ.get("FAULT_SEED", "101"))})

#: The interleaved population: small, mixed, deterministic.
MEMBERS = (
    ("web", 3),
    ("gzip", 5),
    ("cat", 8),
)


def fingerprint(dejaview, session):
    """Everything observable about one recorded session, as bytes and
    exact numbers — the identity the isolation property compares."""
    fp = {"clock_us": session.clock.now_us}
    if dejaview.recorder is not None:
        record = dejaview.display_record()
        fp["display_log"] = record.log_bytes
        fp["screenshots"] = record.screenshot_bytes
        fp["timeline"] = tuple(record.timeline)
        fp["record_span"] = (record.start_us, record.end_us)
    storage = dejaview.storage
    fp["stored_ids"] = tuple(storage.stored_ids())
    fp["manifests"] = {
        image_id: storage.manifest_digests(image_id)
        for image_id in storage.stored_ids()
    }
    fp["storage_totals"] = (storage.total_uncompressed_bytes,
                            storage.total_compressed_bytes)
    fp["dedup"] = (storage.pages_deduped, storage.dedup_bytes_saved)
    if dejaview.database is not None:
        vocabulary = dejaview.database.vocabulary()
        fp["vocabulary"] = tuple(vocabulary)
        if vocabulary:
            word = vocabulary[len(vocabulary) // 2]
            results = dejaview.search(Query.keywords(word), render=False)
            fp["search"] = tuple(
                (r.timestamp_us, r.snippet, r.score) for r in results)
    return fp


def assert_fingerprints_equal(interleaved, solo, label):
    assert set(interleaved) == set(solo), label
    for key in sorted(interleaved):
        assert interleaved[key] == solo[key], "%s: %s differs" % (label, key)


@pytest.fixture(scope="module")
def solo_fingerprints():
    """Each member scenario run alone — the ground truth, computed once
    (it does not depend on any scheduler seed)."""
    prints = {}
    for index, (scenario, units) in enumerate(MEMBERS):
        name = "m%d" % index
        run = run_scenario(scenario, units=units,
                           session_kwargs={"name": name})
        prints[name] = fingerprint(run.dejaview, run.session)
    return prints


def build_member_fleet(seed, fault_plan=None, crash_member=None):
    fleet = Fleet(seed=seed)
    for index, (scenario, units) in enumerate(MEMBERS):
        name = "m%d" % index
        fleet.admit(name, scenario, units=units,
                    fault_plan=fault_plan if name == crash_member else None)
    return fleet


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaved_equals_solo(seed, solo_fingerprints):
    fleet = build_member_fleet(seed)
    fleet.run_to_completion()
    assert {m.state for m in fleet.members()} == {DONE}
    for member in fleet.members():
        assert_fingerprints_equal(
            fingerprint(member.dejaview, member.session),
            solo_fingerprints[member.name],
            "seed %d, member %s" % (seed, member.name))


def _virtual_stats(fleet):
    """The fleet stats with wall-clock span histograms removed — wall
    time is real time and legitimately varies between runs; everything
    else must be bit-deterministic."""
    stats = fleet.stats()
    for section in [stats["rollup"], stats["fleet_metrics"]]:
        section["histograms"] = {
            name: summary
            for name, summary in section["histograms"].items()
            if not name.endswith(".wall_ns")
        }
    for snap in stats["rollup"].get("sessions", {}).values():
        snap["histograms"] = {
            name: summary
            for name, summary in snap["histograms"].items()
            if not name.endswith(".wall_ns")
        }
    return stats


@pytest.mark.parametrize("seed", SEEDS)
def test_every_seed_same_recordings_different_interleavings_ok(seed):
    """Two fleets with the same seed agree on everything simulated (wall
    time excluded); the per-member recordings additionally agree across
    different seeds (covered against solo above) — the seed only
    schedules."""
    fleet_a = build_member_fleet(seed)
    fleet_b = build_member_fleet(seed)
    fleet_a.run_to_completion()
    fleet_b.run_to_completion()
    assert _virtual_stats(fleet_a) == _virtual_stats(fleet_b)


@pytest.mark.parametrize("seed", SEEDS)
def test_isolation_survives_single_member_crash(seed, solo_fingerprints):
    """Kill one member mid-checkpoint (CAS page-append crash): the other
    members must stay byte-identical to solo, and the crashed member's
    owner-scoped recovery must leave the shared store verified with every
    healthy checkpoint still revivable."""
    plan = FaultPlan.parse("storage.cas.page_append:after=40", seed=seed)
    fleet = build_member_fleet(seed, fault_plan=plan, crash_member="m0")
    fleet.run_to_completion()
    crashed = fleet.member("m0")
    assert crashed.state == CRASHED
    assert crashed.crash_site == "storage.cas.page_append"
    healthy = [m for m in fleet.members() if m.name != "m0"]
    assert {m.state for m in healthy} == {DONE}

    # Healthy members: unaffected, bit for bit.
    for member in healthy:
        assert_fingerprints_equal(
            fingerprint(member.dejaview, member.session),
            solo_fingerprints[member.name],
            "seed %d, member %s (with m0 crashed)" % (seed, member.name))

    # Crashed member: recovery reaches a verified state...
    report = fleet.recover_session("m0")
    assert crashed.state == RECOVERED
    assert report["storage"]["verify_ok"]
    # ...and is idempotent (fixpoint): a second recovery drops nothing.
    again = fleet.recover_session("m0")["storage"]
    assert again["verify_ok"]
    assert not again["torn_dropped"] and not again["chain_dropped"]
    assert again["cas_orphans_reclaimed"] == 0

    # The shared store still resolves every healthy manifest digest, the
    # chains verify, and the latest checkpoints revive.
    for member in healthy:
        storage = member.dejaview.storage
        for image_id in storage.stored_ids():
            for digest in storage.manifest_digests(image_id):
                assert fleet.cas.pages.get(digest) is not None
        verdict = verify_chain(storage, member.session.fsstore)
        assert verdict.ok, [str(i) for i in verdict.issues]
        revived = member.dejaview.take_me_back(member.session.clock.now_us)
        assert revived.container.live_processes()


SHARD_COUNTS = [1, 2, 4, 8]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_interleaved_equals_solo_across_shard_counts(
        shards, solo_fingerprints):
    """The owner-visibility invariant is shard-layout-independent: for
    every shard count the interleaved recordings stay byte-identical to
    solo (sharding moves physical appends around; it must never move a
    logical byte or a charged microsecond)."""
    fleet = Fleet(seed=SEEDS[0], shards=shards)
    for index, (scenario, units) in enumerate(MEMBERS):
        fleet.admit("m%d" % index, scenario, units=units)
    fleet.run_to_completion()
    assert {m.state for m in fleet.members()} == {DONE}
    assert fleet.cas.shard_count == shards
    # Shutdown drained the pipeline; every page is physically placed in
    # an extent of its own consistent-hash shard.
    assert fleet.cas.backlog_pages() == 0
    for digest, eid in fleet.cas.extent_of.items():
        assert fleet.cas.extents[eid].shard == fleet.cas.shard_of(digest)
    for member in fleet.members():
        assert_fingerprints_equal(
            fingerprint(member.dejaview, member.session),
            solo_fingerprints[member.name],
            "shards=%d, member %s" % (shards, member.name))


@pytest.mark.parametrize("shards", [1, 4])
def test_crash_with_nonempty_append_queue(shards, solo_fingerprints):
    """A member dies while the shared store's append queues are loaded
    (group-commit triggers disabled, so every stored page is still
    in flight): the victim's owner-scoped fsck drops only *its own*
    unreferenced queued pages, healthy members' queued pages survive to
    the next flush, and the final recordings stay byte-identical to
    solo."""
    huge = 1 << 40  # never triggers a size-based flush
    plan = FaultPlan.parse("storage.cas.page_append:after=40",
                           seed=SEEDS[0])
    fleet = Fleet(seed=SEEDS[0], shards=shards, rollup_every=0,
                  group_commit_bytes=huge, max_backlog_bytes=huge)
    for index, (scenario, units) in enumerate(MEMBERS):
        name = "m%d" % index
        fleet.admit(name, scenario, units=units,
                    fault_plan=plan if name == "m0" else None)

    victim = fleet.member("m0")
    while fleet.runnable() and victim.state != CRASHED:
        fleet.step()
    assert victim.state == CRASHED
    assert victim.crash_site == "storage.cas.page_append"
    # The crash landed with a non-empty append queue.
    assert fleet.cas.backlog_pages() > 0

    # Owner-scoped recovery while the backlog is live: queued pages the
    # healthy members reference must survive the victim's fsck.
    healthy_queued = set()
    for member in fleet.members():
        if member.name == "m0":
            continue
        storage = member.dejaview.storage
        for image_id in storage.stored_ids():
            healthy_queued.update(
                d for d in storage.manifest_digests(image_id)
                if d in fleet.cas.unflushed_digests())
    report = fleet.recover_session("m0")
    assert report["storage"]["verify_ok"]
    still_queued = fleet.cas.unflushed_digests()
    for digest in healthy_queued:
        assert digest in still_queued or digest in fleet.cas.extent_of, \
            "victim fsck reclaimed a healthy member's queued page"

    # Finish the fleet; shutdown drains what recovery left queued.
    fleet.run_to_completion()
    assert fleet.cas.backlog_pages() == 0
    for member in fleet.members():
        if member.name == "m0":
            continue
        assert member.state == DONE
        assert_fingerprints_equal(
            fingerprint(member.dejaview, member.session),
            solo_fingerprints[member.name],
            "shards=%d, member %s (m0 crashed mid-queue)"
            % (shards, member.name))
        verdict = verify_chain(member.dejaview.storage,
                               member.session.fsstore)
        assert verdict.ok, [str(i) for i in verdict.issues]
