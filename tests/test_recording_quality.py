"""Recording quality knobs (section 2 / 4.1).

"Users can change the resolution and the frequency at which display
updates are recorded" — reduced-resolution recording cuts storage; the
viewer resolution is independent of the record's; and the recorded stream
still replays correctly at its own scale.
"""

import numpy as np

from repro.common.clock import VirtualClock
from repro.common.units import seconds
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.session import DesktopSession
from repro.display.commands import RawCmd, Region
from repro.display.playback import PlaybackEngine
from repro.display.recorder import RecorderConfig


def _record_session(record_scale=1.0, recorder_config=None):
    session = DesktopSession(width=64, height=48)
    dv = DejaView(
        session,
        RecordingConfig(record_index=False, record_checkpoints=False,
                        record_scale=record_scale,
                        recorder_config=recorder_config),
    )
    app = session.launch("painter")
    rng = np.random.default_rng(9)
    for i in range(12):
        pixels = rng.integers(0, 2**32, size=(48, 64), dtype=np.uint32)
        app.draw(RawCmd(Region(0, 0, 64, 48), pixels))
        dv.tick()
        session.clock.advance_us(seconds(1))
    return session, dv, app


class TestReducedResolutionRecording:
    def test_half_scale_record_is_smaller(self):
        _s1, full, _a1 = _record_session(record_scale=1.0)
        _s2, half, _a2 = _record_session(record_scale=0.5)
        assert half.recorder.total_nbytes < full.recorder.total_nbytes / 2

    def test_half_scale_record_replays_at_its_resolution(self):
        session, dv, _app = _record_session(record_scale=0.5)
        record = dv.display_record()
        assert (record.width, record.height) == (32, 24)
        engine = PlaybackEngine(record, clock=VirtualClock())
        fb, _stats = engine.seek(session.clock.now_us)
        assert (fb.width, fb.height) == (32, 24)

    def test_full_scale_viewer_unaffected_by_record_scale(self):
        session, dv, _app = _record_session(record_scale=0.25)
        # The live screen is still full resolution and matches the viewer.
        assert session.viewer.checksum() == session.driver.framebuffer.checksum()

    def test_scaled_record_content_tracks_original(self):
        """The scaled record is a subsampled view of the same screen."""
        session, dv, _app = _record_session(record_scale=0.5)
        record = dv.display_record()
        engine = PlaybackEngine(record, clock=VirtualClock())
        fb, _stats = engine.seek(session.clock.now_us)
        expected = session.driver.framebuffer.scaled(0.5)
        # Subsampling the live screen and replaying the scaled record use
        # the same nearest-neighbour grid, so they agree exactly.
        assert np.array_equal(fb.pixels, expected.pixels)


class TestUpdateFrequencyLimiting:
    def test_queue_merging_limits_recorded_updates(self):
        """Deferring flushes merges covered updates, so "only the result
        of the last update is logged" (section 4.1)."""
        clock = VirtualClock()
        from repro.display.driver import VirtualDisplayDriver
        from repro.display.recorder import DisplayRecorder

        driver = VirtualDisplayDriver(32, 24, clock=clock)
        recorder = DisplayRecorder(32, 24, clock=clock)
        driver.attach_sink(recorder)
        from repro.display.commands import SolidFillCmd

        # Ten full-screen updates between flushes merge into one command.
        for color in range(10):
            driver.submit(SolidFillCmd(Region(0, 0, 32, 24), color))
        driver.flush()
        assert recorder.command_count == 1

    def test_screenshot_interval_config(self):
        config = RecorderConfig(screenshot_interval_us=seconds(2),
                                screenshot_min_change_fraction=0.0)
        _session, dv, _app = _record_session(recorder_config=config)
        # 12 seconds of full-screen updates with 2 s keyframes: >= 5 shots.
        assert len(dv.display_record().timeline) >= 5
