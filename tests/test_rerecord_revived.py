"""Re-recording revived sessions (section 5.2).

"By using the same log structured file system for the writable layer, the
revived session retains DejaView's ability to continuously checkpoint
session state and later revive it."  These tests checkpoint a *revived*
container and revive second-generation sessions from it.
"""

import pytest

from repro.checkpoint.engine import CheckpointEngine
from repro.checkpoint.restore import ReviveManager
from repro.checkpoint.storage import CheckpointStorage
from repro.fs.branch import RevivedStore
from repro.fs.union import ReadOnlyUnionView

from tests.test_checkpoint_engine import make_rig


def first_generation():
    """A session with one checkpoint, revived once."""
    kernel, container, fsstore, storage, engine, procs = make_rig(
        nprocs=2, pages_per_proc=4
    )
    fsstore.fs.create("/home/user/gen0.txt", b"generation zero")
    engine.checkpoint()
    manager = ReviveManager(kernel, fsstore, storage)
    revive = manager.revive(1)
    return kernel, fsstore, storage, engine, procs, manager, revive


class TestReadOnlyUnionView:
    def _view(self):
        from repro.common.clock import VirtualClock
        from repro.fs.lfs import LogStructuredFS

        clock = VirtualClock()
        lower = LogStructuredFS(clock=clock)
        lower.create("/base.txt", b"base")
        lower.create("/shadowed.txt", b"old")
        lower.create("/deleted.txt", b"gone")
        lower_view = lower.view_at(lower.snapshot())
        upper = LogStructuredFS(clock=clock)
        upper.create("/shadowed.txt", b"new")
        upper.create("/.wh.deleted.txt", b"")
        upper.create("/fresh.txt", b"fresh")
        upper_view = upper.view_at(upper.snapshot())
        return ReadOnlyUnionView([upper_view, lower_view])

    def test_requires_layers(self):
        from repro.common.errors import FileSystemError

        with pytest.raises(FileSystemError):
            ReadOnlyUnionView([])

    def test_upper_shadows_lower(self):
        view = self._view()
        assert view.read_file("/shadowed.txt") == b"new"

    def test_lower_visible_through(self):
        view = self._view()
        assert view.read_file("/base.txt") == b"base"

    def test_whiteout_hides_lower(self):
        view = self._view()
        assert not view.exists("/deleted.txt")
        with pytest.raises(Exception):
            view.read_file("/deleted.txt")

    def test_listdir_merges_and_hides(self):
        view = self._view()
        assert view.listdir("/") == ["base.txt", "fresh.txt", "shadowed.txt"]

    def test_walk_files(self):
        view = self._view()
        assert sorted(view.walk_files()) == [
            "/base.txt", "/fresh.txt", "/shadowed.txt",
        ]

    def test_stat_and_is_dir(self):
        view = self._view()
        assert view.stat("/fresh.txt")["size"] == 5
        assert view.is_dir("/")
        assert not view.is_dir("/fresh.txt")


class TestRerecordRevived:
    def test_checkpoint_revived_session(self):
        kernel, _fsstore, _storage, _engine, procs, _mgr, revive = \
            first_generation()
        container2 = revive.container
        mount2 = container2.mount
        # The revived session does new work.
        mount2.write_file("/home/user/gen1.txt", b"generation one")
        clone = container2.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        clone.address_space.write(region.start, b"gen1 memory")
        # Attach a fresh engine to the revived container.
        store2 = RevivedStore(mount2)
        storage2 = CheckpointStorage(clock=kernel.clock)
        engine2 = CheckpointEngine(kernel, container2, store2, storage2)
        result = engine2.checkpoint()
        assert result.checkpoint_id == 1
        assert 1 in storage2

    def test_second_generation_revive(self):
        kernel, _fsstore, _storage, _engine, procs, _mgr, revive = \
            first_generation()
        container2 = revive.container
        mount2 = container2.mount
        mount2.write_file("/home/user/gen1.txt", b"generation one")
        clone = container2.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        clone.address_space.write(region.start, b"gen1 memory")

        store2 = RevivedStore(mount2)
        storage2 = CheckpointStorage(clock=kernel.clock)
        engine2 = CheckpointEngine(kernel, container2, store2, storage2)
        engine2.checkpoint()
        # Divergence after the checkpoint.
        mount2.write_file("/home/user/gen1.txt", b"changed later")
        clone.address_space.write(region.start, b"later memory")

        manager2 = ReviveManager(kernel, store2, storage2)
        revive2 = manager2.revive(1)
        container3 = revive2.container
        mount3 = container3.mount
        # Generation-2 sees: gen0 file (original lower), gen1 file at its
        # checkpointed content, and the checkpointed memory.
        assert mount3.read_file("/home/user/gen0.txt") == b"generation zero"
        assert mount3.read_file("/home/user/gen1.txt") == b"generation one"
        grandclone = container3.process_by_vpid(procs[0].vpid)
        assert grandclone.address_space.read(region.start, 11) == b"gen1 memory"

    def test_second_generation_is_isolated(self):
        kernel, _fsstore, _storage, _engine, procs, _mgr, revive = \
            first_generation()
        container2 = revive.container
        mount2 = container2.mount
        mount2.write_file("/home/user/gen1.txt", b"generation one")
        store2 = RevivedStore(mount2)
        storage2 = CheckpointStorage(clock=kernel.clock)
        engine2 = CheckpointEngine(kernel, container2, store2, storage2)
        engine2.checkpoint()
        manager2 = ReviveManager(kernel, store2, storage2)
        a = manager2.revive(1).container.mount
        b = manager2.revive(1).container.mount
        a.write_file("/home/user/gen2.txt", b"branch a")
        assert not b.exists("/home/user/gen2.txt")
        assert not mount2.exists("/home/user/gen2.txt")

    def test_deletion_in_revived_session_propagates_to_gen2(self):
        kernel, _fsstore, _storage, _engine, _procs, _mgr, revive = \
            first_generation()
        container2 = revive.container
        mount2 = container2.mount
        mount2.unlink("/home/user/gen0.txt")  # whiteout in gen1's upper
        store2 = RevivedStore(mount2)
        storage2 = CheckpointStorage(clock=kernel.clock)
        engine2 = CheckpointEngine(kernel, container2, store2, storage2)
        engine2.checkpoint()
        manager2 = ReviveManager(kernel, store2, storage2)
        mount3 = manager2.revive(1).container.mount
        assert not mount3.exists("/home/user/gen0.txt")
