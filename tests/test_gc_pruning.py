"""Tests for log-cleaner garbage collection and checkpoint pruning."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import CheckpointError, SnapshotError
from repro.checkpoint.gc import prune_checkpoints, required_images
from repro.checkpoint.restore import ReviveManager
from repro.fs.lfs import BLOCK_SIZE, LogStructuredFS

from tests.test_checkpoint_engine import make_rig


class TestLfsGarbageCollection:
    def test_unreachable_blocks_reclaimed(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"x" * (4 * BLOCK_SIZE))
        fs.write_file("/f", b"y" * (4 * BLOCK_SIZE))  # old blocks now dead
        reclaimed = fs.collect_garbage(protected_txns=[])
        assert reclaimed == 4 * BLOCK_SIZE
        assert fs.read_file("/f") == b"y" * (4 * BLOCK_SIZE)

    def test_protected_snapshot_blocks_survive(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"v1" + bytes(BLOCK_SIZE))
        snap = fs.snapshot()
        fs.write_file("/f", b"v2" + bytes(BLOCK_SIZE))
        reclaimed = fs.collect_garbage(protected_txns=[snap])
        assert reclaimed == 0
        assert fs.view_at(snap).read_file("/f").startswith(b"v1")

    def test_unprotected_history_reclaimed_but_live_kept(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"v1" + bytes(BLOCK_SIZE))
        fs.write_file("/f", b"v2" + bytes(BLOCK_SIZE))
        fs.write_file("/f", b"v3" + bytes(BLOCK_SIZE))
        reclaimed = fs.collect_garbage(protected_txns=[])
        # v1 and v2 each stored BLOCK_SIZE+2 content bytes; both are dead.
        assert reclaimed == 2 * (BLOCK_SIZE + 2)
        assert fs.read_file("/f").startswith(b"v3")

    def test_deleted_file_reclaimed_when_unprotected(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/dead", b"z" * (2 * BLOCK_SIZE))
        fs.unlink("/dead")
        reclaimed = fs.collect_garbage(protected_txns=[])
        assert reclaimed == 2 * BLOCK_SIZE

    def test_open_unlinked_file_not_reclaimed(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/scratch", b"held" + bytes(BLOCK_SIZE))
        handle = fs.open("/scratch")
        fs.unlink("/scratch")
        reclaimed = fs.collect_garbage(protected_txns=[])
        assert reclaimed == 0
        assert handle.read().startswith(b"held")
        handle.close()
        assert fs.collect_garbage(protected_txns=[]) > 0

    def test_live_log_bytes_shrinks(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.create("/f", b"x" * (8 * BLOCK_SIZE))
        fs.write_file("/f", b"y")
        before = fs.live_log_bytes
        fs.collect_garbage(protected_txns=[])
        assert fs.live_log_bytes < before

    def test_unprotect_and_protected_txns(self):
        fs = LogStructuredFS(clock=VirtualClock())
        fs.associate_checkpoint(1)
        fs.associate_checkpoint(2)
        assert len(fs.protected_txns()) >= 1
        fs.unprotect_checkpoint(1)
        with pytest.raises(SnapshotError):
            fs.unprotect_checkpoint(1)


class TestCheckpointPruning:
    def _chain(self, checkpoints=4):
        kernel, container, fsstore, storage, engine, procs = make_rig(
            nprocs=1, pages_per_proc=8
        )
        space = procs[0].address_space
        region = space.regions()[0]
        fsstore.fs.create("/home/user/story.txt", b"v0")
        for i in range(checkpoints):
            space.write(region.start, b"round-%d" % i)
            fsstore.fs.write_file("/home/user/story.txt",
                                  b"v%d" % (i + 1) + bytes(BLOCK_SIZE))
            engine.checkpoint()
        manager = ReviveManager(kernel, fsstore, storage)
        return kernel, fsstore, storage, engine, procs, manager

    def test_required_images_follow_chain(self):
        _k, _f, storage, _e, _p, _m = self._chain()
        # Reviving checkpoint 3 needs image 1 (the full) for clean pages.
        required = required_images(storage, [3])
        assert 3 in required
        assert 1 in required

    def test_required_images_unknown_checkpoint(self):
        _k, _f, storage, _e, _p, _m = self._chain()
        with pytest.raises(CheckpointError):
            required_images(storage, [99])

    def test_prune_deletes_unneeded_images(self):
        _k, fsstore, storage, _e, _p, _m = self._chain(checkpoints=4)
        report = prune_checkpoints(storage, fsstore, keep_ids=[4])
        # 4 needs the full image 1; 2 and 3 may go unless they own pages.
        assert 4 in report.kept_images
        assert 1 in report.kept_images
        for deleted in report.deleted_images:
            assert deleted not in storage

    def test_kept_checkpoint_still_revivable_after_prune(self):
        kernel, fsstore, storage, _e, procs, manager = self._chain(4)
        prune_checkpoints(storage, fsstore, keep_ids=[4])
        revive = manager.revive(4)
        clone = revive.container.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        assert clone.address_space.read(region.start, 7) == b"round-3"
        assert revive.container.mount.read_file(
            "/home/user/story.txt"
        ).startswith(b"v4")

    def test_prune_reclaims_fs_space(self):
        _k, fsstore, storage, _e, _p, _m = self._chain(4)
        report = prune_checkpoints(storage, fsstore, keep_ids=[4])
        assert report.fs_bytes_reclaimed > 0
        assert report.image_bytes_freed > 0

    def test_prune_everything_except_latest_full(self):
        """Keeping only the latest checkpoint keeps the chain's full."""
        _k, fsstore, storage, engine, _p, manager = self._chain(4)
        before = len(storage)
        report = prune_checkpoints(storage, fsstore, keep_ids=[4])
        assert len(storage) < before
        assert set(report.kept_images) == set(storage.stored_ids())


def _image_with(image_id, pages):
    """A self-contained full image with explicit page payloads."""
    from repro.checkpoint.image import CheckpointImage

    image = CheckpointImage(image_id, image_id * 1000, "gc", full=True)
    image.regions = {1: [{"start": 0x1000_0000, "npages": 16, "prot": 3,
                          "name": "heap"}]}
    for index, content in enumerate(pages):
        key = (1, 0x1000_0000, index)
        image.pages[key] = content
        image.page_locations[key] = image_id
    return image


class TestPageStoreReclamation:
    """Refcounted deletes: pruning reclaims only orphaned pages."""

    def test_delete_reclaims_only_orphaned_pages(self):
        from repro.checkpoint.image import page_digest
        from repro.checkpoint.storage import CheckpointStorage

        storage = CheckpointStorage(clock=VirtualClock())
        shared = bytes(range(64)) * 4
        unique_a = b"A" * 256
        unique_b = b"B" * 256
        storage.store(_image_with(1, [shared, unique_a]), charge_time=False)
        receipt = storage.store(_image_with(2, [shared, unique_b]),
                                charge_time=False)
        assert receipt.pages_deduped == 1  # the shared page was not rewritten
        storage.delete(1)
        entries = storage.cas_entries()
        assert entries[page_digest(shared)]["refs"] == 1
        assert page_digest(unique_a) not in entries
        # The survivor still reads back whole.
        loaded = storage.load(2, cached=True)
        assert loaded.pages[(1, 0x1000_0000, 0)] == shared
        assert loaded.pages[(1, 0x1000_0000, 1)] == unique_b

    def test_compaction_rewrites_fragmented_extents(self):
        from repro.checkpoint.storage import CheckpointStorage

        storage = CheckpointStorage(clock=VirtualClock())
        for image_id in range(1, 11):
            pages = [bytes([image_id, page]) * 200 for page in range(4)]
            storage.store(_image_with(image_id, pages), charge_time=False)
        for image_id in range(1, 8):
            storage.delete(image_id)
        before = storage.fragmentation()
        assert before["dead_bytes"] > 0
        report = storage.compact(charge_time=False)
        assert report["extents_rewritten"] >= 1
        assert report["bytes_reclaimed"] > 0
        after = storage.fragmentation()
        assert after["dead_bytes"] < before["dead_bytes"]
        # Survivors still load; no orphans remain.
        for image_id in range(8, 11):
            assert storage.load(image_id, cached=True).pages
        assert all(entry["refs"] >= 1
                   for entry in storage.cas_entries().values())

    def test_prune_runs_compaction_and_reports_it(self):
        kernel, container, fsstore, storage, engine, procs = make_rig(
            nprocs=1, pages_per_proc=8
        )
        space = procs[0].address_space
        region = space.regions()[0]
        for i in range(6):
            # Same page every round: checkpoint 6's directory only needs
            # itself and the initial full image, so pruning can actually
            # drop the middle of the chain.
            space.write(region.start, b"prune-round-%d" % i)
            engine.checkpoint()
        report = prune_checkpoints(storage, fsstore, keep_ids=[6])
        assert report.deleted_images
        assert report.image_bytes_freed > 0
        assert report.cas_orphans_reclaimed >= 0
        assert report.extent_bytes_reclaimed >= 0
        assert all(entry["refs"] >= 1
                   for entry in storage.cas_entries().values())
