"""Integration tests: display recording and playback (sections 4.1, 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import DisplayError
from repro.common.units import seconds
from repro.display.commands import (
    BitmapCmd,
    CopyCmd,
    RawCmd,
    Region,
    SolidFillCmd,
)
from repro.display.driver import VirtualDisplayDriver
from repro.display.playback import PlaybackEngine, prune_commands
from repro.display.recorder import DisplayRecorder, RecorderConfig

W, H = 64, 48


def _rig(config=None):
    clock = VirtualClock()
    driver = VirtualDisplayDriver(W, H, clock=clock)
    recorder = DisplayRecorder(W, H, clock=clock, config=config)
    driver.attach_sink(recorder)
    return clock, driver, recorder


def _random_commands(rng, n):
    commands = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        x, y = int(rng.integers(0, W - 8)), int(rng.integers(0, H - 8))
        w, h = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        region = Region(x, y, w, h)
        if kind == 0:
            commands.append(SolidFillCmd(region, int(rng.integers(0, 2**32))))
        elif kind == 1:
            pixels = rng.integers(0, 2**32, size=(h, w), dtype=np.uint32)
            commands.append(RawCmd(region, pixels))
        elif kind == 2:
            bits = rng.random((h, w)) > 0.5
            commands.append(BitmapCmd(region, bits, 0xFFFFFF, 0))
        else:
            sx, sy = int(rng.integers(0, W - w)), int(rng.integers(0, H - h))
            commands.append(CopyCmd(region, Region(sx, sy, w, h)))
    return commands


class TestRecorder:
    def test_initial_screenshot_taken(self):
        _clock, _driver, recorder = _rig()
        assert len(recorder.timeline) == 1

    def test_commands_logged(self):
        clock, driver, recorder = _rig()
        driver.submit(SolidFillCmd(Region(0, 0, 8, 8), 1))
        driver.flush()
        assert recorder.command_count == 1

    def test_screenshot_requires_interval_and_change(self):
        config = RecorderConfig(
            screenshot_interval_us=seconds(10),
            screenshot_min_change_fraction=0.5,
        )
        clock, driver, recorder = _rig(config)
        # Interval passed but change too small: no screenshot.
        clock.advance_us(seconds(11))
        driver.submit(SolidFillCmd(Region(0, 0, 2, 2), 1))
        driver.flush()
        assert len(recorder.timeline) == 1
        # Now a big change: screenshot due.
        driver.submit(SolidFillCmd(Region(0, 0, W, H), 2))
        driver.flush()
        assert len(recorder.timeline) == 2

    def test_no_display_activity_records_nothing(self):
        """"If the screen does not change ... nothing is recorded.""" ""
        clock, driver, recorder = _rig()
        before = recorder.log_nbytes
        clock.advance_us(seconds(60))
        driver.flush()
        assert recorder.log_nbytes == before

    def test_storage_scales_with_activity_not_time(self):
        config = RecorderConfig(screenshot_interval_us=seconds(3600))
        _clock1, driver1, rec1 = _rig(config)
        _clock2, driver2, rec2 = _rig(config)
        for _ in range(10):
            driver1.submit(SolidFillCmd(Region(0, 0, 4, 4), 1))
            driver1.flush()
        for _ in range(100):
            driver2.submit(SolidFillCmd(Region(0, 0, 4, 4), 1))
            driver2.flush()
        assert rec2.log_nbytes > rec1.log_nbytes

    def test_force_screenshot(self):
        _clock, _driver, recorder = _rig()
        recorder.force_screenshot()
        assert len(recorder.timeline) == 2

    def test_finalize_bundles_everything(self):
        clock, driver, recorder = _rig()
        driver.submit(SolidFillCmd(Region(0, 0, 8, 8), 1))
        driver.flush()
        record = recorder.finalize()
        assert record.command_count == 1
        assert record.width == W and record.height == H
        assert record.total_bytes > 0


class TestPlaybackSeek:
    def test_seek_reconstructs_current_screen(self):
        clock, driver, recorder = _rig()
        rng = np.random.default_rng(7)
        for cmd in _random_commands(rng, 60):
            driver.submit(cmd)
            driver.flush()
            clock.advance_us(10_000)
        engine = PlaybackEngine(recorder.finalize())
        fb, stats = engine.seek(clock.now_us)
        assert fb.checksum() == driver.framebuffer.checksum()

    def test_seek_to_intermediate_time(self):
        clock, driver, recorder = _rig()
        driver.submit(SolidFillCmd(Region(0, 0, W, H), 1))
        driver.flush()
        mid_us = clock.now_us
        mid_checksum = driver.framebuffer.checksum()
        clock.advance_us(seconds(1))
        driver.submit(SolidFillCmd(Region(0, 0, W, H), 2))
        driver.flush()
        engine = PlaybackEngine(recorder.finalize())
        fb, _stats = engine.seek(mid_us)
        assert fb.checksum() == mid_checksum

    def test_seek_before_first_screenshot_rejected(self):
        clock = VirtualClock(start_us=seconds(5))
        driver = VirtualDisplayDriver(W, H, clock=clock)
        recorder = DisplayRecorder(W, H, clock=clock)
        driver.attach_sink(recorder)
        engine = PlaybackEngine(recorder.finalize())
        with pytest.raises(DisplayError):
            engine.seek(0)

    def test_pruning_reduces_applied_commands(self):
        clock, driver, recorder = _rig()
        for color in range(30):
            driver.submit(SolidFillCmd(Region(0, 0, W, H), color))
            driver.flush()
            clock.advance_us(10_000)
        engine = PlaybackEngine(recorder.finalize())
        fb, stats = engine.seek(clock.now_us)
        assert stats.commands_applied < stats.commands_considered
        assert fb.checksum() == driver.framebuffer.checksum()

    def test_unpruned_playback_agrees(self):
        clock, driver, recorder = _rig()
        rng = np.random.default_rng(3)
        for cmd in _random_commands(rng, 40):
            driver.submit(cmd)
            driver.flush()
            clock.advance_us(5_000)
        record = recorder.finalize()
        pruned, _ = PlaybackEngine(record, prune=True).seek(clock.now_us)
        naive, _ = PlaybackEngine(record, prune=False).seek(clock.now_us)
        assert pruned == naive

    def test_keyframe_cache_hits_on_repeat_seek(self):
        clock, driver, recorder = _rig()
        driver.submit(SolidFillCmd(Region(0, 0, W, H), 1))
        driver.flush()
        engine = PlaybackEngine(recorder.finalize())
        engine.seek(clock.now_us)
        engine.seek(clock.now_us)
        assert engine.cache_stats["hits"] >= 1

    def test_cached_seek_is_faster(self):
        """LRU screenshot caching "provides significant speedup ... going
        back to specific points in time" (section 4.4)."""
        clock, driver, recorder = _rig()
        driver.submit(SolidFillCmd(Region(0, 0, W, H), 1))
        driver.flush()
        engine = PlaybackEngine(recorder.finalize())
        watch = engine.clock.stopwatch()
        engine.seek(clock.now_us)
        uncached_us = watch.restart()
        engine.seek(clock.now_us)
        cached_us = watch.elapsed_us
        assert cached_us < uncached_us


class TestPlaybackPlay:
    def _record_session(self, n=50, gap_us=40_000):
        clock, driver, recorder = _rig()
        rng = np.random.default_rng(11)
        for cmd in _random_commands(rng, n):
            driver.submit(cmd)
            driver.flush()
            clock.advance_us(gap_us)
        return clock, driver, recorder.finalize()

    def test_play_at_normal_rate_takes_about_recorded_time(self):
        clock, _driver, record = self._record_session()
        engine = PlaybackEngine(record)
        _fb, stats = engine.play(0, clock.now_us, speed=1.0)
        assert stats.playback_duration_us >= stats.recorded_duration_us * 0.9

    def test_play_double_speed_halves_waits(self):
        clock, _driver, record = self._record_session()
        _fb1, normal = PlaybackEngine(record).play(0, clock.now_us, speed=1.0)
        _fb2, double = PlaybackEngine(record).play(0, clock.now_us, speed=2.0)
        assert double.playback_duration_us < normal.playback_duration_us

    def test_fastest_playback_is_faster_than_realtime(self):
        clock, _driver, record = self._record_session()
        _fb, stats = PlaybackEngine(record).play(0, clock.now_us, fastest=True)
        assert stats.speedup > 1.0

    def test_play_final_screen_matches_live(self):
        clock, driver, record = self._record_session()
        fb, _stats = PlaybackEngine(record).play(0, clock.now_us, fastest=True)
        assert fb.checksum() == driver.framebuffer.checksum()

    def test_invalid_speed_rejected(self):
        _clock, _driver, record = self._record_session(n=2)
        with pytest.raises(DisplayError):
            PlaybackEngine(record).play(0, 1, speed=0)


class TestFastForwardRewind:
    def _long_session(self):
        config = RecorderConfig(
            screenshot_interval_us=seconds(5),
            screenshot_min_change_fraction=0.01,
        )
        clock, driver, recorder = _rig(config)
        for i in range(20):
            driver.submit(SolidFillCmd(Region(0, 0, W, H), i))
            driver.flush()
            clock.advance_us(seconds(2))
        return clock, driver, recorder

    def test_fast_forward_shows_keyframes(self):
        clock, driver, recorder = self._long_session()
        engine = PlaybackEngine(recorder.finalize())
        fb, _stats, shown = engine.fast_forward(0, clock.now_us)
        assert shown >= 2
        assert fb.checksum() == driver.framebuffer.checksum()

    def test_rewind_reaches_earlier_state(self):
        clock, driver, recorder = self._long_session()
        target_us = seconds(9)
        engine = PlaybackEngine(recorder.finalize())
        fb, _stats, shown = engine.rewind(clock.now_us, target_us)
        replay, _ = PlaybackEngine(recorder.finalize()).seek(target_us)
        assert fb == replay

    def test_fast_forward_backwards_rejected(self):
        clock, _driver, recorder = self._long_session()
        engine = PlaybackEngine(recorder.finalize())
        with pytest.raises(DisplayError):
            engine.fast_forward(clock.now_us, 0)

    def test_rewind_forwards_rejected(self):
        clock, _driver, recorder = self._long_session()
        engine = PlaybackEngine(recorder.finalize())
        with pytest.raises(DisplayError):
            engine.rewind(0, clock.now_us)


class TestPruneCommands:
    def test_covered_command_dropped(self):
        commands = [
            SolidFillCmd(Region(10, 10, 4, 4), 1),
            SolidFillCmd(Region(0, 0, W, H), 2),
        ]
        kept = prune_commands(commands)
        assert kept == [commands[1]]

    def test_copy_pins_earlier_commands(self):
        commands = [
            SolidFillCmd(Region(0, 0, 8, 8), 1),
            CopyCmd(Region(20, 20, 8, 8), Region(0, 0, 8, 8)),
            SolidFillCmd(Region(0, 0, W, H), 2),
        ]
        # The final fill covers everything, so both earlier commands can go.
        kept = prune_commands(commands)
        assert kept == [commands[2]]

    def test_copy_kept_preserves_dependencies(self):
        commands = [
            SolidFillCmd(Region(0, 0, 8, 8), 1),
            SolidFillCmd(Region(0, 0, 8, 8), 3),
            CopyCmd(Region(20, 20, 8, 8), Region(0, 0, 8, 8)),
        ]
        kept = prune_commands(commands)
        # The copy survives and pins everything before it.
        assert kept == commands

    def test_empty_list(self):
        assert prune_commands([]) == []


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(1, 80))
def test_property_replay_reproduces_screen_exactly(seed, n):
    """WYSIWYS core invariant: for any command sequence, seeking to the end
    of the record reproduces the live screen bit-for-bit."""
    clock, driver, recorder = _rig()
    rng = np.random.default_rng(seed)
    for cmd in _random_commands(rng, n):
        driver.submit(cmd)
        driver.flush()
        clock.advance_us(int(rng.integers(0, 50_000)))
    engine = PlaybackEngine(recorder.finalize())
    fb, _stats = engine.seek(clock.now_us)
    assert fb.checksum() == driver.framebuffer.checksum()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(1, 60))
def test_property_prune_preserves_final_framebuffer(seed, n):
    """Pruning must never change the reconstructed screen."""
    rng = np.random.default_rng(seed)
    commands = _random_commands(rng, n)
    from repro.display.framebuffer import Framebuffer

    full = Framebuffer(W, H)
    for cmd in commands:
        cmd.apply(full)
    pruned = Framebuffer(W, H)
    for cmd in prune_commands(commands):
        cmd.apply(pruned)
    assert full == pruned
