"""Unit tests for the virtual display driver and viewer."""

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import DisplayError
from repro.display.commands import RawCmd, Region, SolidFillCmd
from repro.display.driver import VirtualDisplayDriver
from repro.display.viewer import Viewer


class _CollectingSink:
    def __init__(self):
        self.batches = []

    def handle_commands(self, commands, timestamp_us):
        self.batches.append((list(commands), timestamp_us))


def _driver(w=64, h=48):
    return VirtualDisplayDriver(w, h, clock=VirtualClock())


class TestSubmitAndFlush:
    def test_submit_applies_immediately_to_server_framebuffer(self):
        drv = _driver()
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 7))
        assert np.all(drv.framebuffer.pixels == 7)

    def test_submit_charges_clock(self):
        drv = _driver()
        before = drv.clock.now_us
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 7))
        assert drv.clock.now_us > before

    def test_flush_delivers_to_all_sinks(self):
        drv = _driver()
        a, b = _CollectingSink(), _CollectingSink()
        drv.attach_sink(a)
        drv.attach_sink(b)
        drv.submit(SolidFillCmd(Region(0, 0, 4, 4), 1))
        sent = drv.flush()
        assert sent == 1
        assert len(a.batches) == len(b.batches) == 1

    def test_flush_empty_queue_is_noop(self):
        drv = _driver()
        sink = _CollectingSink()
        drv.attach_sink(sink)
        assert drv.flush() == 0
        assert sink.batches == []

    def test_detach_sink(self):
        drv = _driver()
        sink = _CollectingSink()
        drv.attach_sink(sink)
        drv.detach_sink(sink)
        drv.submit(SolidFillCmd(Region(0, 0, 4, 4), 1))
        drv.flush()
        assert sink.batches == []

    def test_fully_offscreen_command_dropped(self):
        drv = _driver()
        drv.submit(SolidFillCmd(Region(100, 100, 4, 4), 1))
        assert drv.pending_count == 0


class TestQueueMerging:
    def test_covered_command_is_merged_away(self):
        """THINC merging: an opaque command covering a queued one replaces
        it, so only the last update's result is logged (section 4.1)."""
        drv = _driver()
        drv.submit(SolidFillCmd(Region(10, 10, 4, 4), 1))
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 2))
        assert drv.pending_count == 1

    def test_partial_overlap_not_merged(self):
        drv = _driver()
        drv.submit(SolidFillCmd(Region(0, 0, 10, 10), 1))
        drv.submit(SolidFillCmd(Region(5, 5, 10, 10), 2))
        assert drv.pending_count == 2

    def test_merged_stream_still_reconstructs_screen(self):
        drv = _driver()
        viewer = Viewer(64, 48)
        drv.attach_sink(viewer)
        drv.submit(SolidFillCmd(Region(10, 10, 4, 4), 1))
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 2))
        drv.flush()
        assert viewer.checksum() == drv.framebuffer.checksum()


class TestScaling:
    def test_sink_scale_must_be_positive(self):
        drv = _driver()
        with pytest.raises(DisplayError):
            drv.attach_sink(_CollectingSink(), scale=0)

    def test_scaled_sink_receives_scaled_commands(self):
        drv = _driver(64, 48)
        sink = _CollectingSink()
        drv.attach_sink(sink, scale=0.5)
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 3))
        drv.flush()
        (commands, _ts) = sink.batches[0]
        assert commands[0].region == Region(0, 0, 32, 24)

    def test_reduced_resolution_viewer_coexists_with_full_recording(self):
        """Section 4.1: record at full resolution while viewing reduced."""
        drv = _driver(64, 48)
        small_viewer = Viewer(32, 24)
        full_viewer = Viewer(64, 48)
        drv.attach_sink(small_viewer, scale=0.5)
        drv.attach_sink(full_viewer)
        pixels = np.random.default_rng(0).integers(
            0, 2**32, size=(48, 64), dtype=np.uint32
        )
        drv.submit(RawCmd(Region(0, 0, 64, 48), pixels))
        drv.flush()
        assert full_viewer.checksum() == drv.framebuffer.checksum()
        assert small_viewer.framebuffer.width == 32


class TestActivityTracking:
    def test_drain_activity_resets(self):
        drv = _driver()
        drv.submit(SolidFillCmd(Region(0, 0, 64, 48), 1))
        activity = drv.drain_activity()
        assert activity.command_count == 1
        assert activity.fullscreen_updates == 1
        assert drv.peek_activity().command_count == 0

    def test_changed_fraction(self):
        drv = _driver(10, 10)
        drv.submit(SolidFillCmd(Region(0, 0, 5, 5), 1))
        activity = drv.drain_activity()
        assert activity.changed_fraction == pytest.approx(0.25)

    def test_bounds_accumulate(self):
        drv = _driver()
        drv.submit(SolidFillCmd(Region(0, 0, 2, 2), 1))
        drv.submit(SolidFillCmd(Region(10, 10, 2, 2), 1))
        activity = drv.drain_activity()
        assert activity.bounds.contains(Region(0, 0, 2, 2))
        assert activity.bounds.contains(Region(10, 10, 2, 2))

    def test_empty_activity_changed_fraction_zero(self):
        from repro.display.driver import DisplayActivity

        assert DisplayActivity().changed_fraction == 0.0


class TestViewer:
    def test_tracks_command_count_and_timestamp(self):
        viewer = Viewer(8, 8)
        viewer.handle_commands([SolidFillCmd(Region(0, 0, 8, 8), 1)], 555)
        assert viewer.commands_received == 1
        assert viewer.last_update_us == 555

    def test_viewer_with_clock_charges_processing(self):
        clock = VirtualClock()
        viewer = Viewer(8, 8, clock=clock)
        viewer.handle_commands([SolidFillCmd(Region(0, 0, 8, 8), 1)], 0)
        assert clock.now_us > 0
