"""Property tests: mirror-tree consistency and temporal query semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS, CostModel
from repro.access.daemon import IndexingDaemon
from repro.access.registry import DesktopRegistry
from repro.access.toolkit import AccessibleApp, Role
from repro.index.database import TemporalTextDatabase
from repro.index.query import Clause, Query
from repro.index.search import SearchEngine


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 50), st.text(max_size=12)),
        max_size=40,
    )
)
def test_property_mirror_tree_tracks_real_tree(ops):
    """After any event sequence, the daemon's mirror tree is an exact
    replica of the application's accessible tree (the section 4.2
    invariant that makes hash-map event handling sound)."""
    clock = VirtualClock()
    registry = DesktopRegistry(clock)
    database = TemporalTextDatabase(clock)
    app = AccessibleApp("app", registry, clock, DEFAULT_COSTS)
    daemon = IndexingDaemon(registry, database)
    nodes = [app.root]

    for kind, pick, text in ops:
        if kind == 0:  # add a node under a random existing parent
            parent = nodes[pick % len(nodes)]
            nodes.append(app.add_node(parent, Role.TEXT, text=text))
        elif kind == 1:  # change a node's text
            node = nodes[pick % len(nodes)]
            if node is not app.root:
                app.set_text(node, text)
        else:  # remove a non-root subtree
            node = nodes[pick % len(nodes)]
            if node is not app.root and node.parent is not None:
                removed = set(n.node_id for n in node.subtree())
                app.remove_node(node)
                nodes = [n for n in nodes if n.node_id not in removed]

    real = {node.node_id: node.text for node in app.root.subtree()}
    mirror_root = daemon.mirror_root("app")
    mirrored = {node.node_id: node.text for node in mirror_root.subtree()}
    assert mirrored == real
    assert daemon.mirror_size() == len(real)


_TIMELINE = st.lists(
    st.tuples(
        st.integers(0, 3),              # node id
        st.sampled_from(["alpha", "beta", "alpha beta", "gamma", ""]),
        st.integers(1, 20),             # dwell seconds
        st.sampled_from(["appA", "appB"]),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(events=_TIMELINE, probe_step=st.integers(1, 7))
def test_property_query_intervals_match_pointwise_model(events, probe_step):
    """satisfied_intervals agrees with brute-force evaluation: at every
    probe instant, the query holds iff the instant is inside one of the
    returned intervals."""
    clock = VirtualClock()
    db = TemporalTextDatabase(
        clock,
        costs=CostModel(index_token_us=0, index_query_term_us=0,
                        index_posting_us=0),
    )
    visible = {}  # node -> (tokens, app)
    history = []  # (time, snapshot of visible dict)

    for node, text, dwell, app in events:
        db.open_occurrence(node, text, app=app)
        tokens = frozenset(text.split()) if text else frozenset()
        if tokens:
            visible[node] = (tokens, app)
        else:
            visible.pop(node, None)
        history.append((clock.now_us, dict(visible)))
        clock.advance_us(dwell * 1_000_000)
    end_us = clock.now_us

    def visible_at(t):
        state = {}
        for when, snapshot in history:
            if when <= t:
                state = snapshot
        return state

    engine = SearchEngine(db)
    queries = [
        Query(clauses=(Clause(all_of="alpha"),)),
        Query(clauses=(Clause(all_of="alpha beta"),)),
        Query(clauses=(Clause(any_of=["alpha", "gamma"]),)),
        Query(clauses=(Clause(all_of="alpha", none_of="gamma"),)),
        Query(clauses=(Clause(all_of="alpha", app="appA"),)),
    ]

    def holds(query, state):
        for clause in query.clauses:
            tokens_by_ctx = [
                tokens for tokens, app in state.values()
                if clause.app is None or app == clause.app
            ]
            present = set().union(*tokens_by_ctx) if tokens_by_ctx else set()
            if clause.all_of and not set(clause.all_of) <= present:
                return False
            if clause.any_of and not set(clause.any_of) & present:
                return False
            if clause.none_of and set(clause.none_of) & present:
                return False
        return True

    for query in queries:
        intervals = engine.satisfied_intervals(query, now_us=end_us)
        for t in range(0, end_us, probe_step * 1_000_000):
            inside = any(start <= t < end for start, end in intervals)
            assert inside == holds(query, visible_at(t)), (
                query, t, intervals
            )
