"""Seeded fault fuzzing: random fault plans over the scripted workload.

Two layers of invariants:

* **Crash-only fuzz** compares the recovered state against per-unit
  snapshots of a clean run of the same deterministic script.  A crash
  during unit *k+1* must recover to a state sandwiched between the clean
  run truncated at unit *k* (nothing committed before the crash may be
  lost) and the full clean run (nothing may be invented).
* **Mixed fuzz** adds transient ``IOError`` rules the driver absorbs
  per-operation, so the two runs' scripts diverge; the invariants weaken
  to upper bounds plus full post-recovery usability (chain verifies,
  playback completes, search answers).

Seeds are fixed for reproducibility; ``FAULT_SEED`` adds one more seed
from the environment (the CI fault-matrix job uses it to vary coverage
across jobs without editing the file).
"""

import os
import random

import pytest

from repro import Query
from repro.checkpoint.gc import ThinningPolicy
from repro.checkpoint.verify import verify_chain
from repro.common.faults import FaultPlan, InjectedCrash, registered_failpoints
from repro.common.units import seconds
from repro.replay import assert_replays_clean

from tests.faulthelpers import (
    WORDS,
    assert_recovered_run_replays,
    build_session,
    drive,
    record_fault_matrix,
    summarize,
    thin_drive,
    thin_replay_driver_factory,
)

UNITS = 8

SEEDS = [101, 202, 303]
if os.environ.get("FAULT_SEED"):
    SEEDS = SEEDS + [int(os.environ["FAULT_SEED"])]


@pytest.fixture(scope="module")
def clean_snapshots():
    """The clean run's comparable facts after every unit (index ``k``
    holds the state once unit ``k`` completed), plus the final facts."""
    session, dejaview = build_session()
    snapshots = []
    drive(session, dejaview, units=UNITS,
          after_unit=lambda i: snapshots.append(summarize(session, dejaview)))
    return {"per_unit": snapshots, "final": summarize(session, dejaview)}


def _assert_usable(session, dejaview, clean_final):
    """Post-recovery usability: the recovered record must serve every
    user-facing verb without errors, and never invent state the clean
    run does not have."""
    chain = verify_chain(dejaview.storage, session.fsstore)
    assert chain.ok, chain.issues

    record = dejaview.display_record()
    engine = dejaview.playback_engine()
    framebuffer, _stats = engine.play(record.start_us, record.end_us,
                                      fastest=True)
    assert framebuffer is not None

    facts = summarize(session, dejaview)
    assert len(facts["checkpoint_ids"]) <= len(clean_final["checkpoint_ids"])
    # recover() appends one re-anchor keyframe, hence the +1.
    assert facts["timeline_entries"] <= clean_final["timeline_entries"] + 1
    assert set(facts["texts"]) <= set(clean_final["texts"])
    for token, count in facts["posting_counts"].items():
        assert count <= clean_final["posting_counts"].get(token, 0), token

    for word in WORDS:
        dejaview.search(Query.keywords(word), render=False)
    return facts


class TestCrashOnlyFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovers_to_truncated_clean_run(self, seed, clean_snapshots):
        rng = random.Random(seed)
        plan = FaultPlan(seed=seed)
        site = rng.choice(registered_failpoints())
        rule = plan.add(site, mode="crash", after=rng.randrange(2, 20))

        holder = {}
        progress = {"units": 0}
        try:
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview, units=UNITS, progress=progress)
        except InjectedCrash:
            pass
        session = holder["session"]
        dejaview = holder["dejaview"]

        # The reopen path runs on a fresh host: the plan's faults died
        # with the simulated machine.
        plan.disarm()
        report = dejaview.recover()
        record_fault_matrix(plan)
        assert report["ok"], report

        facts = _assert_usable(session, dejaview, clean_snapshots["final"])

        # Replay-divergence oracle: whatever the crash left behind, the
        # surviving event-log prefix must re-derive bit-identically.
        assert_recovered_run_replays(session, plan, units=UNITS)

        # Until the crash the two runs executed the same script, so
        # everything committed through the last completed unit survives
        # recovery: the truncation lower bound.
        completed = progress["units"]
        if rule.fired and completed > 0:
            base = clean_snapshots["per_unit"][completed - 1]
            assert set(base["texts"]) <= set(facts["texts"])
            assert facts["timeline_entries"] >= base["timeline_entries"]
            for token, count in base["posting_counts"].items():
                assert facts["posting_counts"].get(token, 0) >= count, token
            # The only checkpoint the crash may cost is the one being
            # written; every earlier id must still verify and revive.
            assert len(facts["checkpoint_ids"]) >= \
                len(base["checkpoint_ids"]) - 1
        if not rule.fired:
            # The rule armed past the site's activity: the run completed
            # cleanly and recover() must then be harmless (idempotence).
            assert completed == UNITS
            assert set(facts["texts"]) == \
                set(clean_snapshots["final"]["texts"])


class TestMixedFaultFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_transient_faults_plus_crash(self, seed, clean_snapshots):
        rng = random.Random(seed ^ 0x5EED)
        plan = FaultPlan(seed=seed)
        sites = registered_failpoints()
        for _ in range(rng.randrange(2, 5)):
            # after >= 2 keeps transient faults out of session
            # construction (the recorder's initial keyframe is hit 1 of
            # its site); the driver only absorbs IOError once it runs.
            plan.add(rng.choice(sites), mode="io",
                     after=rng.randrange(2, 8),
                     probability=rng.choice([1.0, 0.5]),
                     once=rng.random() < 0.5)
        plan.add(rng.choice(sites), mode="crash",
                 after=rng.randrange(2, 15))

        holder = {}
        progress = {"units": 0}
        crashed = False
        try:
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview, units=UNITS, resilient=True,
                  progress=progress)
        except InjectedCrash:
            crashed = True
        session = holder["session"]
        dejaview = holder["dejaview"]

        # Disarm before reopening: repeat-mode io rules must not fire
        # inside recover() — the injected faults belong to the host that
        # just died, not to the fresh one running recovery.
        plan.disarm()
        report = dejaview.recover()
        record_fault_matrix(plan)
        assert report["ok"], report
        _assert_usable(session, dejaview, clean_snapshots["final"])
        assert crashed or progress["units"] == UNITS

        # Replay-divergence oracle: re-executing under a fresh copy of
        # the same plan (transient faults and all) must re-derive the
        # surviving event-log prefix bit-identically.
        assert_recovered_run_replays(session, plan, units=UNITS,
                                     resilient=True)

    def test_double_recover_is_stable(self, clean_snapshots):
        """recover() twice in a row must be a fixpoint."""
        plan = FaultPlan(seed=1)
        plan.add("storage.store.pre_commit", mode="crash", after=3)
        holder = {}
        with pytest.raises(InjectedCrash):
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview, units=UNITS)
        session = holder["session"]
        dejaview = holder["dejaview"]
        first = dejaview.recover()
        assert first["ok"]
        before = summarize(session, dejaview)
        second = dejaview.recover()
        assert second["ok"]
        # Each recover appends a replay barrier; the oracle verifies the
        # pre-crash prefix before the *first* one regardless.
        assert_recovered_run_replays(session, plan, units=UNITS)
        assert second["storage"]["torn_dropped"] == []
        assert second["storage"]["chain_dropped"] == []
        after = summarize(session, dejaview)
        assert before["checkpoint_ids"] == after["checkpoint_ids"]
        assert before["texts"] == after["texts"]
        assert before["posting_counts"] == after["posting_counts"]


class TestFleetFuzz:
    """Seeded random crash plans against one fleet member: whatever the
    site and timing, the blast radius is that member — peers finish,
    stay verified and revivable, and the shared page store recovers to a
    fixpoint."""

    STORAGE_SITES = [site for site in registered_failpoints()
                     if site.startswith("storage.")]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_storage_crash_is_contained(self, seed):
        from repro.checkpoint.verify import verify_chain as _verify
        from repro.server import Fleet

        rng = random.Random(seed)
        site = rng.choice(self.STORAGE_SITES)
        plan = FaultPlan(seed=seed)
        plan.add(site, mode="crash",
                 after=rng.randrange(1, 60), once=True)

        fleet = Fleet(seed=seed)
        fleet.admit("victim", "web", units=3, fault_plan=plan, weight=4)
        fleet.admit("peer-a", "gzip", units=5)
        fleet.admit("peer-b", "cat", units=8)
        fleet.run_to_completion()
        record_fault_matrix(plan)

        victim = fleet.member("victim")
        peers = [fleet.member("peer-a"), fleet.member("peer-b")]
        assert all(peer.state == "done" for peer in peers)

        if victim.state == "crashed":
            report = fleet.recover_session("victim")
            assert report["storage"]["verify_ok"], report["storage"]
            again = fleet.recover_session("victim")["storage"]
            assert again["verify_ok"]
            assert not again["torn_dropped"]
            assert not again["chain_dropped"]
            assert again["cas_orphans_reclaimed"] == 0
        else:
            # The armed hit count outran the short run: still a valid
            # draw, the fleet just completed clean.
            assert victim.state == "done"

        # Shared-store invariants hold either way: every live manifest
        # digest resolves, no committed page is unreferenced after a
        # compaction sweep, and peers revive.
        for member in fleet.members():
            storage = member.dejaview.storage
            for image_id in storage.stored_ids():
                ok, _reason = storage.blob_ok(image_id)
                if not ok:
                    continue  # crash wreckage awaiting recovery
                for digest in storage.manifest_digests(image_id):
                    assert fleet.cas.pages.get(digest) is not None
        for peer in peers:
            assert _verify(peer.dejaview.storage,
                           peer.session.fsstore).ok
            revived = peer.dejaview.take_me_back(
                peer.session.clock.now_us)
            assert revived.container.live_processes()


class TestThinFuzz:
    """Seeded random crash plans against the *thinning pass*: wherever
    the crash lands among the pass's tombstone commits and ref drops,
    recovery converges, a re-run of the pass reaches the crash-free
    outcome, and the (clean — the crash hit the pass, not the recording)
    event log still replays and replay-revives thinned instants."""

    THIN_SITES = [site for site in registered_failpoints()
                  if site.startswith("thin.")]
    POLICY = ThinningPolicy(recent_window_us=seconds(2),
                            tiers=((None, 2),))
    THIN_UNITS = 12

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_mid_thin_crash_converges(self, seed):
        rng = random.Random(seed ^ 0x7417)
        site = rng.choice(self.THIN_SITES)
        plan = FaultPlan(seed=seed)
        rule = plan.add(site, mode="crash",
                        after=rng.randrange(1, 8), once=True)

        # The crash-free control over the identical timeline: whatever
        # the faulted run goes through, it must converge to this.
        control_session, control_dv = build_session()
        thin_drive(control_session, control_dv, units=self.THIN_UNITS)
        control = control_dv.thin_checkpoints(policy=self.POLICY)
        assert control.thinned_images

        session, dejaview = build_session(fault_plan=plan)
        thin_drive(session, dejaview, units=self.THIN_UNITS)
        crashed = False
        try:
            dejaview.thin_checkpoints(policy=self.POLICY)
        except InjectedCrash:
            crashed = True
        record_fault_matrix(plan)
        plan.disarm()
        if crashed:
            assert rule.fired == 1
            report = dejaview.recover()
            assert report["ok"], report
            # Double-recover fixpoint.
            second = dejaview.recover()
            assert second["ok"]
            assert not second["storage"]["torn_dropped"]
            assert not second["storage"]["chain_dropped"]
            assert second["storage"]["cas_orphans_reclaimed"] == 0
            dejaview.thin_checkpoints(policy=self.POLICY)
        # Converged on the control's survivors either way (the armed
        # hit count may outrun a short pass: a valid draw — the pass
        # then simply completed clean), and another pass is a no-op.
        assert sorted(dejaview.storage.thinned_ids()) \
            == sorted(control.thinned_images)
        assert not dejaview.thin_checkpoints(policy=self.POLICY) \
            .thinned_images
        chain = verify_chain(dejaview.storage, session.fsstore)
        assert chain.ok, chain.issues

        # The recording itself never crashed: it replays end-to-end,
        # and a randomly drawn tombstone still replay-revives.
        factory = thin_replay_driver_factory(units=self.THIN_UNITS)
        assert_replays_clean(session.replay.getvalue(),
                             driver=factory(None, {}))
        dejaview.reviver.replay_driver_factory = factory
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dejaview.engine.history}
        target = rng.choice(sorted(control.thinned_images))
        revived = dejaview.take_me_back(timestamps[target])
        assert revived.checkpoint_id == target
        assert revived.replayed


class TestBranchForkFuzz:
    """Seeded random crash plans against a *branch fork*: the fork dies
    at one of the two branch failpoints (union mount / manifest
    pinning), recovery reclaims the shell, the refcount fsck converges,
    and neither the parent nor a healthy sibling branch moves."""

    BRANCH_SITES = [site for site in registered_failpoints()
                    if site.startswith("revive.branch.")]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_fork_crash_is_contained(self, seed):
        from repro.server import Fleet

        rng = random.Random(seed ^ 0xB4A9C4)
        site = rng.choice(self.BRANCH_SITES)
        plan = FaultPlan(seed=seed)
        rule = plan.add(site, mode="crash",
                        after=rng.randrange(1, 4), once=True)

        fleet = Fleet(seed=seed)
        fleet.admit("p0", "web", units=6)
        fleet.run_to_completion()
        source = fleet.member("p0").dejaview.engine.history[-1]
        fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                     name="sib", scenario="untar", units=2)
        fleet.run_to_completion()
        parent_refs = dict(fleet.cas.owner_refs.get("p0", {}))
        sibling_refs = dict(fleet.cas.owner_refs.get("sib", {}))

        crashed = False
        try:
            fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                         name="doomed", scenario="make", units=2,
                         fault_plan=plan)
        except InjectedCrash:
            crashed = True
        record_fault_matrix(plan)

        if crashed:
            assert rule.fired == 1
            doomed = fleet.member("doomed")
            assert doomed.state == "crashed"
            assert doomed.crash_site == site
            report = fleet.recover_session("doomed")
            assert report["ok"], report
            # No *uncommitted* refs survive: whatever the dead branch
            # still holds is exactly what its durably committed
            # base-manifest pins account for (the crash may land after
            # an earlier pin committed — those refs are legitimate
            # on-disk state until the shell is deleted).
            if doomed.dejaview is None:
                assert not fleet.cas.owner_refs.get("doomed")
            else:
                committed = set()
                for digests in \
                        doomed.dejaview.storage.base_manifests.values():
                    committed.update(digests)
                assert set(fleet.cas.owner_refs.get("doomed", ())) \
                    <= committed
            # Fixpoint: the second fsck changes nothing.
            live = {digest: count
                    for digest, count in fleet.cas.refs.items() if count}
            again = fleet.recover_session("doomed")
            assert again["ok"], again
            assert live == {digest: count for digest, count
                            in fleet.cas.refs.items() if count}
            # Deleting the shell returns every last ref it held.
            fleet.delete_branch("doomed")
            assert not fleet.cas.owner_refs.get("doomed")
        else:
            # The armed hit count outran the (short) fork: a valid
            # draw — the branch must then simply run to completion.
            fleet.run_to_completion()
            assert fleet.member("doomed").state == "done"

        # Blast radius: parent and sibling refcounts are untouched and
        # both remain verified.
        assert dict(fleet.cas.owner_refs.get("p0", {})) == parent_refs
        assert dict(fleet.cas.owner_refs.get("sib", {})) == sibling_refs
        for name in ("p0", "sib"):
            member = fleet.member(name)
            assert verify_chain(member.dejaview.storage,
                                member.session.fsstore).ok
