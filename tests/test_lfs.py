"""Unit and property tests for the log-structured file system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import FileSystemError, SnapshotError
from repro.fs.lfs import BLOCK_SIZE, RELINK_DIR, LogStructuredFS
from repro.fs.vfs import join_path, normalize_path, path_components, split_path


def _fs():
    return LogStructuredFS(clock=VirtualClock())


class TestPaths:
    def test_normalize(self):
        assert normalize_path("//a///b/") == "/a/b"
        assert normalize_path("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(FileSystemError):
            normalize_path("a/b")

    def test_dotdot_rejected(self):
        with pytest.raises(FileSystemError):
            normalize_path("/a/../b")

    def test_split(self):
        assert split_path("/a/b") == ("/a", "b")
        assert split_path("/a") == ("/", "a")
        with pytest.raises(FileSystemError):
            split_path("/")

    def test_join(self):
        assert join_path("/", "a") == "/a"
        assert join_path("/a", "b") == "/a/b"
        with pytest.raises(FileSystemError):
            join_path("/a", "b/c")

    def test_components(self):
        assert path_components("/a/b") == ["a", "b"]
        assert path_components("/") == []


class TestBasicOperations:
    def test_create_and_read(self):
        fs = _fs()
        fs.create("/hello.txt", b"world")
        assert fs.read_file("/hello.txt") == b"world"

    def test_create_duplicate_rejected(self):
        fs = _fs()
        fs.create("/x", b"")
        with pytest.raises(FileSystemError):
            fs.create("/x", b"")

    def test_mkdir_and_nested_files(self):
        fs = _fs()
        fs.mkdir("/docs")
        fs.create("/docs/a.txt", b"a")
        assert fs.listdir("/docs") == ["a.txt"]
        assert fs.is_dir("/docs")
        assert not fs.is_dir("/docs/a.txt")

    def test_makedirs(self):
        fs = _fs()
        fs.makedirs("/a/b/c")
        assert fs.is_dir("/a/b/c")
        fs.makedirs("/a/b/c")  # idempotent

    def test_write_file_replaces_content(self):
        fs = _fs()
        fs.write_file("/f", b"one")
        fs.write_file("/f", b"two")
        assert fs.read_file("/f") == b"two"

    def test_append(self):
        fs = _fs()
        fs.write_file("/log", b"a" * 10)
        fs.write_file("/log", b"b" * 10, append=True)
        assert fs.read_file("/log") == b"a" * 10 + b"b" * 10

    def test_append_across_block_boundary(self):
        fs = _fs()
        fs.write_file("/log", b"x" * (BLOCK_SIZE + 10))
        fs.write_file("/log", b"y" * 20, append=True)
        data = fs.read_file("/log")
        assert len(data) == BLOCK_SIZE + 30
        assert data.endswith(b"y" * 20)

    def test_write_at(self):
        fs = _fs()
        fs.write_file("/f", b"abcdef")
        fs.write_at("/f", 2, b"XY")
        assert fs.read_file("/f") == b"abXYef"

    def test_write_at_beyond_end_zero_fills(self):
        fs = _fs()
        fs.write_file("/f", b"ab")
        fs.write_at("/f", 5, b"Z")
        assert fs.read_file("/f") == b"ab\x00\x00\x00Z"

    def test_truncate(self):
        fs = _fs()
        fs.write_file("/f", b"abcdef")
        fs.truncate("/f", 3)
        assert fs.read_file("/f") == b"abc"

    def test_unlink(self):
        fs = _fs()
        fs.create("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileSystemError):
            fs.read_file("/f")

    def test_unlink_nonempty_dir_rejected(self):
        fs = _fs()
        fs.mkdir("/d")
        fs.create("/d/f", b"")
        with pytest.raises(FileSystemError):
            fs.unlink("/d")

    def test_unlink_empty_dir(self):
        fs = _fs()
        fs.mkdir("/d")
        fs.unlink("/d")
        assert not fs.exists("/d")

    def test_rename(self):
        fs = _fs()
        fs.create("/old", b"data")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.read_file("/new") == b"data"

    def test_hard_link_shares_inode(self):
        fs = _fs()
        fs.create("/a", b"shared")
        fs.link("/a", "/b")
        assert fs.stat("/a")["inode"] == fs.stat("/b")["inode"]
        assert fs.stat("/a")["nlink"] == 2
        fs.unlink("/a")
        assert fs.read_file("/b") == b"shared"

    def test_stat(self):
        fs = _fs()
        fs.create("/f", b"12345")
        st_ = fs.stat("/f")
        assert st_["kind"] == "file"
        assert st_["size"] == 5
        assert st_["nlink"] == 1

    def test_recreate_after_unlink(self):
        fs = _fs()
        fs.create("/f", b"one")
        fs.unlink("/f")
        fs.create("/f", b"two")
        assert fs.read_file("/f") == b"two"

    def test_walk_files(self):
        fs = _fs()
        fs.makedirs("/a/b")
        fs.create("/a/x", b"")
        fs.create("/a/b/y", b"")
        assert sorted(fs.walk_files()) == ["/a/b/y", "/a/x"]

    def test_large_file_blocks(self):
        fs = _fs()
        data = bytes(range(256)) * 64  # 16 KiB = 4 blocks
        fs.create("/big", data)
        assert fs.read_file("/big") == data


class TestSnapshots:
    def test_snapshot_preserves_old_content(self):
        fs = _fs()
        fs.create("/f", b"v1")
        snap = fs.snapshot()
        fs.write_file("/f", b"v2")
        assert fs.read_file("/f") == b"v2"
        assert fs.view_at(snap).read_file("/f") == b"v1"

    def test_snapshot_preserves_deleted_file(self):
        """The /tmp/foo scenario of section 5.1.1: a file deleted after a
        checkpoint must still be readable from the snapshot."""
        fs = _fs()
        fs.create("/tmp-foo", b"precious")
        snap = fs.snapshot()
        fs.unlink("/tmp-foo")
        view = fs.view_at(snap)
        assert view.exists("/tmp-foo")
        assert view.read_file("/tmp-foo") == b"precious"

    def test_snapshot_does_not_see_future_files(self):
        fs = _fs()
        snap = fs.snapshot()
        fs.create("/later", b"")
        assert not fs.view_at(snap).exists("/later")

    def test_every_transaction_is_a_snapshot_point(self):
        """Core NILFS property: any txn value is a valid snapshot."""
        fs = _fs()
        fs.create("/f", b"v1")
        txn_after_create = fs.current_txn
        fs.write_file("/f", b"v2")
        fs.write_file("/f", b"v3")
        assert fs.view_at(txn_after_create).read_file("/f") == b"v1"

    def test_future_snapshot_rejected(self):
        fs = _fs()
        with pytest.raises(SnapshotError):
            fs.view_at(fs.current_txn + 1)

    def test_checkpoint_association(self):
        fs = _fs()
        fs.create("/f", b"v1")
        txn = fs.snapshot()
        fs.associate_checkpoint(17, txn)
        fs.write_file("/f", b"v2")
        assert fs.view_for_checkpoint(17).read_file("/f") == b"v1"

    def test_duplicate_checkpoint_counter_rejected(self):
        fs = _fs()
        fs.associate_checkpoint(1)
        with pytest.raises(SnapshotError):
            fs.associate_checkpoint(1)

    def test_unknown_checkpoint_counter(self):
        fs = _fs()
        with pytest.raises(SnapshotError):
            fs.txn_for_checkpoint(99)

    def test_snapshot_listing(self):
        fs = _fs()
        fs.create("/a", b"")
        snap = fs.snapshot()
        fs.create("/b", b"")
        assert fs.view_at(snap).listdir("/") == ["a"]
        assert fs.listdir("/") == ["a", "b"]


class TestSyncAccounting:
    def test_pending_blocks_accumulate_and_flush(self):
        fs = _fs()
        fs.create("/f", b"x" * (2 * BLOCK_SIZE))
        assert fs.pending_blocks == 2
        assert fs.sync() == 2
        assert fs.pending_blocks == 0

    def test_sync_charges_clock(self):
        fs = _fs()
        fs.create("/f", b"x" * BLOCK_SIZE)
        before = fs.clock.now_us
        fs.sync()
        assert fs.clock.now_us > before

    def test_presync_shrinks_snapshot_work(self):
        """Pre-snapshot sync means the snapshot itself flushes nothing."""
        fs = _fs()
        fs.create("/f", b"x" * (8 * BLOCK_SIZE))
        fs.sync()
        watch = fs.clock.stopwatch()
        fs.snapshot()
        synced_cost = watch.elapsed_us
        fs2 = _fs()
        fs2.create("/f", b"x" * (8 * BLOCK_SIZE))
        watch2 = fs2.clock.stopwatch()
        fs2.snapshot()
        unsynced_cost = watch2.elapsed_us
        assert synced_cost < unsynced_cost

    def test_log_bytes_grow_monotonically(self):
        fs = _fs()
        before = fs.log_bytes
        fs.create("/f", b"x" * 100)
        mid = fs.log_bytes
        fs.write_file("/f", b"y" * 100)
        assert fs.log_bytes > mid > before

    def test_visible_bytes_excludes_old_versions(self):
        fs = _fs()
        fs.create("/f", b"x" * 1000)
        fs.write_file("/f", b"y" * 500)
        assert fs.visible_bytes() == 500
        # But the log keeps both versions (snapshot history).
        assert fs.log_bytes > 1500


class TestOpenUnlinkedAndRelink:
    def test_open_file_survives_unlink(self):
        fs = _fs()
        fs.create("/tmp-data", b"still here")
        handle = fs.open("/tmp-data")
        fs.unlink("/tmp-data")
        assert handle.read() == b"still here"
        handle.close()
        with pytest.raises(FileSystemError):
            handle.read()

    def test_relink_preserves_content_into_snapshot(self):
        """Section 5.1.2 optimization 2: relink open-unlinked files so the
        snapshot retains their contents."""
        fs = _fs()
        fs.create("/scratch", b"unsaved work")
        handle = fs.open("/scratch")
        fs.unlink("/scratch")
        target = fs.relink(handle)
        assert target.startswith(RELINK_DIR)
        snap = fs.snapshot()
        view = fs.view_at(snap)
        assert view.read_file(target) == b"unsaved work"
        # The relink directory stays hidden from normal listings.
        assert RELINK_DIR[1:] not in fs.listdir("/")
        assert RELINK_DIR[1:] in fs.listdir("/", include_hidden=True)

    def test_relink_noop_for_still_linked_file(self):
        fs = _fs()
        fs.create("/f", b"x")
        handle = fs.open("/f")
        assert fs.relink(handle) is None

    def test_unlink_relinked_restores_invisibility(self):
        fs = _fs()
        fs.create("/f", b"x")
        handle = fs.open("/f")
        fs.unlink("/f")
        target = fs.relink(handle)
        fs.unlink_relinked(target)
        assert not fs.exists(target)
        assert handle.read() == b"x"

    def test_handle_stat(self):
        fs = _fs()
        fs.create("/f", b"abc")
        with fs.open("/f") as handle:
            assert handle.stat()["size"] == 3


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "append", "unlink"]),
        st.sampled_from(["/f0", "/f1", "/f2"]),
        st.binary(max_size=64),
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, snap_after=st.integers(min_value=0, max_value=40))
def test_property_snapshot_isolation(ops, snap_after):
    """A snapshot taken mid-sequence is immune to all later operations."""
    fs = _fs()

    def apply(op):
        kind, path, data = op
        try:
            if kind == "create":
                fs.create(path, data)
            elif kind == "write":
                fs.write_file(path, data)
            elif kind == "append":
                fs.write_file(path, data, append=True)
            elif kind == "unlink":
                fs.unlink(path)
        except FileSystemError:
            pass  # duplicate create / unlink of missing file etc.

    cut = min(snap_after, len(ops))
    for op in ops[:cut]:
        apply(op)
    snap = fs.snapshot()
    frozen = {
        path: fs.read_file(path, txn=snap) for path in fs.walk_files("/", txn=snap)
    }
    for op in ops[cut:]:
        apply(op)
    view = fs.view_at(snap)
    assert {path: view.read_file(path) for path in view.walk_files("/")} == frozen
