"""Tests for demand-paged revive (the section 6 suggested improvement)."""

from repro.common.costs import PAGE_SIZE
from repro.checkpoint.restore import ReviveManager

from tests.test_checkpoint_engine import make_rig


def make_demand_rig(**kwargs):
    kernel, container, fsstore, storage, engine, procs = make_rig(**kwargs)
    manager = ReviveManager(kernel, fsstore, storage)
    return kernel, container, fsstore, storage, engine, procs, manager


class TestDemandPagedRevive:
    def test_revive_latency_far_below_eager(self):
        *_rest, engine, _procs, manager = make_demand_rig(
            nprocs=3, pages_per_proc=512
        )
        engine.checkpoint()
        eager = manager.revive(1, cached=False)
        lazy = manager.revive(1, cached=False, demand_paging=True)
        assert lazy.demand_paged
        assert lazy.duration_us < eager.duration_us / 5

    def test_no_pages_resident_until_touched(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=8
        )
        engine.checkpoint()
        result = manager.revive(1, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        assert clone.address_space.resident_pages == 0
        assert result.pages_deferred == 8

    def test_read_faults_in_correct_content(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=4
        )
        engine.checkpoint()
        result = manager.revive(1, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        data = clone.address_space.read(region.start, 11)
        assert data == b"init-page-0"
        assert result.pager.faults == 1
        assert clone.address_space.resident_pages == 1

    def test_write_to_unloaded_page_faults_first(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=4
        )
        engine.checkpoint()
        result = manager.revive(1, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        # Partial write: the rest of the page must carry checkpoint data.
        clone.address_space.write(region.start + 2 * PAGE_SIZE + 100, b"XY")
        page = clone.address_space.read(region.start + 2 * PAGE_SIZE, 11)
        assert page == b"init-page-2"

    def test_second_touch_of_same_page_no_refault(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=4
        )
        engine.checkpoint()
        result = manager.revive(1, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        region = clone.address_space.regions()[0]
        clone.address_space.read(region.start, 4)
        clone.address_space.read(region.start + 10, 4)
        assert result.pager.faults == 1

    def test_touch_all_converges_to_eager_content(self):
        """After every page faults in, memory equals the eager revive's."""
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=2, pages_per_proc=6
        )
        engine.checkpoint()
        eager = manager.revive(1)
        lazy = manager.revive(1, demand_paging=True)
        lazy.pager.touch_all()
        assert lazy.pager.remaining() == 0
        for proc in procs:
            e = eager.container.process_by_vpid(proc.vpid)
            l = lazy.container.process_by_vpid(proc.vpid)
            for er, lr in zip(e.address_space.regions(),
                              l.address_space.regions()):
                assert er.pages == lr.pages

    def test_demand_paging_works_across_incremental_chain(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=4
        )
        space = procs[0].address_space
        region = space.regions()[0]
        engine.checkpoint()                 # full
        space.write(region.start, b"updated-page-0")
        engine.checkpoint()                 # incremental
        result = manager.revive(2, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        # Page 0 comes from image 2, page 1 from image 1 — both lazily.
        assert clone.address_space.read(region.start, 14) == b"updated-page-0"
        assert clone.address_space.read(
            region.start + PAGE_SIZE, 11
        ) == b"init-page-1"

    def test_fresh_pages_in_revived_session_do_not_fault(self):
        *_rest, engine, procs, manager = make_demand_rig(
            nprocs=1, pages_per_proc=2
        )
        engine.checkpoint()
        result = manager.revive(1, demand_paging=True)
        clone = result.container.process_by_vpid(procs[0].vpid)
        fresh = clone.address_space.mmap(2, name="fresh")
        clone.address_space.write(fresh.start, b"new work")
        assert result.pager.faults == 0
        assert clone.address_space.read(fresh.start, 8) == b"new work"

    def test_total_lazy_io_exceeds_eager_sequential_read(self):
        """The latency/throughput trade: loading everything by faults costs
        more total time than one eager sequential read."""
        kernel, *_rest, engine, _procs, manager = make_demand_rig(
            nprocs=2, pages_per_proc=256
        )
        engine.checkpoint()
        eager = manager.revive(1, cached=False)
        lazy = manager.revive(1, cached=False, demand_paging=True)
        watch = kernel.clock.stopwatch()
        lazy.pager.touch_all()
        lazy_total = lazy.duration_us + watch.elapsed_us
        assert lazy_total > eager.duration_us
