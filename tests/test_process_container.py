"""Unit tests for processes, signals, namespaces and containers."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import NamespaceError, ProcessError
from repro.vex.container import Container
from repro.vex.kernel import Kernel
from repro.vex.namespace import Namespace
from repro.vex.process import Process, ProcessState
from repro.vex.signals import SIGCONT, SIGKILL, SIGSTOP, SIGUSR1, signal_name
from repro.vex.sockets import Socket, SocketState


class TestProcessSignals:
    def test_stop_and_continue(self):
        proc = Process(1, "app")
        proc.deliver_signal(SIGSTOP, now_us=0)
        assert proc.state is ProcessState.STOPPED
        proc.deliver_signal(SIGCONT, now_us=0)
        assert proc.state is ProcessState.RUNNABLE

    def test_uninterruptible_process_queues_stop(self):
        """Disk I/O delays signal handling — the pre-quiesce motivation."""
        proc = Process(1, "app")
        proc.begin_io(now_us=0, duration_us=1000)
        assert proc.run_state_for(500) is ProcessState.UNINTERRUPTIBLE
        assert not proc.deliver_signal(SIGSTOP, now_us=500)
        assert proc.state is not ProcessState.STOPPED
        # After the I/O completes, flushing delivers the queued stop.
        assert proc.flush_pending_signals(now_us=2000) == 1
        assert proc.state is ProcessState.STOPPED

    def test_sigkill_acts_even_during_io(self):
        proc = Process(1, "app")
        proc.begin_io(now_us=0, duration_us=1000)
        proc.deliver_signal(SIGKILL, now_us=500)
        assert proc.state is ProcessState.ZOMBIE
        assert proc.exit_code == -9

    def test_blocked_signal_queues(self):
        proc = Process(1, "app")
        proc.blocked_signals.add(SIGUSR1)
        assert not proc.deliver_signal(SIGUSR1, now_us=0)
        assert SIGUSR1 in proc.pending_signals
        # Flushing with the signal still blocked keeps it pending.
        proc.flush_pending_signals(now_us=0)
        assert SIGUSR1 in proc.pending_signals

    def test_sigstop_cannot_be_blocked(self):
        proc = Process(1, "app")
        proc.blocked_signals.add(SIGSTOP)
        proc.deliver_signal(SIGSTOP, now_us=0)
        assert proc.state is ProcessState.STOPPED

    def test_cont_restores_prior_state(self):
        proc = Process(1, "app")
        proc.state = ProcessState.RUNNING
        proc.deliver_signal(SIGSTOP, now_us=0)
        proc.deliver_signal(SIGCONT, now_us=0)
        assert proc.state is ProcessState.RUNNING

    def test_signal_name(self):
        assert signal_name(SIGSTOP) == "SIGSTOP"
        assert signal_name(42) == "SIG42"

    def test_signalable(self):
        proc = Process(1, "app")
        assert proc.signalable(0)
        proc.begin_io(0, 100)
        assert not proc.signalable(50)
        assert proc.signalable(200)

    def test_threads(self):
        proc = Process(1, "app")
        t = proc.spawn_thread({"pc": 42})
        assert t.tid == 1
        assert len(proc.threads) == 2
        snap = t.snapshot()
        from repro.vex.process import Thread

        restored = Thread.from_snapshot(snap)
        assert restored.registers == {"pc": 42}

    def test_fds(self):
        proc = Process(1, "app")
        entry = proc.open_fd(path="/tmp/x", inode=5)
        assert entry.fd == 3
        assert proc.close_fd(entry.fd) is entry
        with pytest.raises(ProcessError):
            proc.close_fd(entry.fd)


class TestNamespace:
    def test_vpid_allocation_sequential(self):
        ns = Namespace(1)
        p1, p2 = Process(0, "a"), Process(0, "b")
        assert ns.allocate_vpid(p1) == 1
        assert ns.allocate_vpid(p2) == 2

    def test_explicit_vpid_for_revive(self):
        ns = Namespace(1)
        proc = Process(0, "a")
        assert ns.allocate_vpid(proc, vpid=42) == 42
        assert ns.lookup_vpid(42) is proc

    def test_duplicate_vpid_rejected(self):
        ns = Namespace(1)
        ns.allocate_vpid(Process(0, "a"), vpid=5)
        with pytest.raises(NamespaceError):
            ns.allocate_vpid(Process(0, "b"), vpid=5)

    def test_two_namespaces_can_reuse_vpids(self):
        """The core revive property: same names, different namespaces."""
        ns_a, ns_b = Namespace(1), Namespace(2)
        ns_a.allocate_vpid(Process(0, "a"), vpid=7)
        ns_b.allocate_vpid(Process(0, "b"), vpid=7)
        assert ns_a.lookup_vpid(7).name == "a"
        assert ns_b.lookup_vpid(7).name == "b"

    def test_release_and_lookup_missing(self):
        ns = Namespace(1)
        ns.allocate_vpid(Process(0, "a"), vpid=3)
        ns.release_vpid(3)
        with pytest.raises(NamespaceError):
            ns.lookup_vpid(3)
        with pytest.raises(NamespaceError):
            ns.release_vpid(3)

    def test_named_resources(self):
        ns = Namespace(1)
        ns.bind("display", ":0", "server-object")
        assert ns.resolve("display", ":0") == "server-object"
        assert ns.bound_names("display") == [":0"]
        with pytest.raises(NamespaceError):
            ns.bind("display", ":0", "other")
        ns.unbind("display", ":0")
        with pytest.raises(NamespaceError):
            ns.resolve("display", ":0")


class TestContainer:
    def _container(self):
        return Container(1, "desktop", VirtualClock())

    def test_spawn_builds_forest(self):
        c = self._container()
        init = c.spawn("init")
        child = c.spawn("xserver", parent=init)
        assert child in init.children
        assert c.process_by_vpid(child.vpid) is child

    def test_spawn_foreign_parent_rejected(self):
        c = self._container()
        other = Process(9, "foreign")
        with pytest.raises(ProcessError):
            c.spawn("child", parent=other)

    def test_reap_zombie(self):
        c = self._container()
        init = c.spawn("init")
        child = c.spawn("app", parent=init)
        child.exit(0)
        c.reap(child)
        assert child not in c.processes
        assert child not in init.children

    def test_reap_live_rejected(self):
        c = self._container()
        proc = c.spawn("app")
        with pytest.raises(ProcessError):
            c.reap(proc)

    def test_live_processes_excludes_zombies(self):
        c = self._container()
        a = c.spawn("a")
        b = c.spawn("b")
        b.exit(1)
        assert c.live_processes() == [a]

    def test_aggregate_page_counts(self):
        c = self._container()
        proc = c.spawn("app")
        region = proc.address_space.mmap(4)
        proc.address_space.write(region.start, b"data")
        assert c.total_resident_pages == 1
        assert c.total_dirty_pages == 1

    def test_all_signalable(self):
        c = self._container()
        proc = c.spawn("app")
        assert c.all_signalable(0)
        proc.begin_io(0, 1000)
        assert not c.all_signalable(500)

    def test_network_policy(self):
        c = self._container()
        c.network_enabled = False
        assert not c.network_allowed_for("firefox")
        c.network_policy["firefox"] = True
        assert c.network_allowed_for("firefox")
        assert not c.network_allowed_for("mail")


class TestKernel:
    def test_stop_all_and_continue_all(self):
        kernel = Kernel()
        c = kernel.create_container("desktop")
        procs = [c.spawn("p%d" % i) for i in range(3)]
        assert kernel.stop_all(c) == 3
        assert all(p.state is ProcessState.STOPPED for p in procs)
        kernel.continue_all(c)
        assert all(p.state is ProcessState.RUNNABLE for p in procs)

    def test_signals_charge_clock(self):
        kernel = Kernel()
        c = kernel.create_container("desktop")
        c.spawn("p")
        before = kernel.clock.now_us
        kernel.stop_all(c)
        assert kernel.clock.now_us > before

    def test_destroy_container(self):
        kernel = Kernel()
        c = kernel.create_container("x")
        kernel.destroy_container(c)
        assert kernel.containers == []

    def test_wait_until(self):
        kernel = Kernel()
        kernel.wait_until(5000)
        assert kernel.clock.now_us == 5000


class TestSockets:
    def test_external_tcp_reset_on_revive(self):
        sock = Socket("tcp", "10.0.0.5:3000", "93.184.216.34:80",
                      state=SocketState.ESTABLISHED)
        assert not sock.restore_for_revive()
        assert sock.state is SocketState.RESET

    def test_internal_tcp_survives(self):
        sock = Socket("tcp", "127.0.0.1:6000", "127.0.0.1:35000",
                      state=SocketState.ESTABLISHED, internal=True)
        assert sock.restore_for_revive()
        assert sock.state is SocketState.ESTABLISHED

    def test_udp_always_restored(self):
        sock = Socket("udp", "10.0.0.5:1234", "8.8.8.8:53",
                      state=SocketState.ESTABLISHED)
        assert sock.restore_for_revive()
        assert sock.state is SocketState.ESTABLISHED

    def test_non_established_tcp_untouched(self):
        sock = Socket("tcp", "0.0.0.0:80", state=SocketState.LISTENING)
        assert sock.restore_for_revive()
        assert sock.state is SocketState.LISTENING

    def test_snapshot_roundtrip(self):
        sock = Socket("tcp", "a:1", "b:2", state=SocketState.ESTABLISHED)
        restored = Socket.from_snapshot(sock.snapshot())
        assert restored.proto == "tcp"
        assert restored.remote == "b:2"
        assert restored.state is SocketState.ESTABLISHED

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            Socket("sctp", "a:1")
