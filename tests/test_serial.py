"""Unit tests for the TLV record codec."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.serial import (
    RecordReader,
    RecordWriter,
    StreamCorrupt,
    read_at,
)


class TestRecordWriter:
    def test_header_written_on_construction(self):
        writer = RecordWriter(kind=7)
        data = writer.getvalue()
        assert data.startswith(b"DJVW")
        assert writer.bytes_written == len(data)

    def test_write_returns_offset(self):
        writer = RecordWriter()
        off1 = writer.write(1, b"abc")
        off2 = writer.write(2, b"defg")
        assert off2 > off1 > 0

    def test_tag_out_of_range_rejected(self):
        writer = RecordWriter()
        with pytest.raises(ValueError):
            writer.write(-1, b"")
        with pytest.raises(ValueError):
            writer.write(2**32, b"")

    def test_external_fileobj(self):
        buf = io.BytesIO()
        writer = RecordWriter(buf)
        writer.write(5, b"payload")
        assert buf.getvalue().startswith(b"DJVW")


class TestRecordReader:
    def test_roundtrip(self):
        writer = RecordWriter(kind=3)
        writer.write(10, b"first")
        writer.write(20, b"second")
        records = list(RecordReader(writer.getvalue(), expect_kind=3))
        assert [(t, p) for t, p, _o in records] == [(10, b"first"), (20, b"second")]

    def test_offsets_support_random_access(self):
        writer = RecordWriter()
        writer.write(1, b"aaa")
        off = writer.write(2, b"bbb")
        tag, payload = read_at(writer.getvalue(), off)
        assert (tag, payload) == (2, b"bbb")

    def test_seek_to_resumes_iteration(self):
        writer = RecordWriter()
        writer.write(1, b"x")
        off = writer.write(2, b"y")
        writer.write(3, b"z")
        reader = RecordReader(writer.getvalue()).seek_to(off)
        tags = [t for t, _p, _o in reader]
        assert tags == [2, 3]

    def test_kind_mismatch_rejected(self):
        writer = RecordWriter(kind=1)
        with pytest.raises(StreamCorrupt):
            RecordReader(writer.getvalue(), expect_kind=2)

    def test_bad_magic_rejected(self):
        with pytest.raises(StreamCorrupt):
            RecordReader(b"XXXX\x01\x00\x00\x00")

    def test_short_stream_rejected(self):
        with pytest.raises(StreamCorrupt):
            RecordReader(b"DJ")

    def test_truncated_payload_detected(self):
        writer = RecordWriter()
        writer.write(1, b"full-payload")
        data = writer.getvalue()[:-3]
        reader = RecordReader(data)
        with pytest.raises(StreamCorrupt):
            list(reader)

    def test_read_at_bad_offset(self):
        writer = RecordWriter()
        writer.write(1, b"x")
        with pytest.raises(StreamCorrupt):
            read_at(writer.getvalue(), len(writer.getvalue()))

    def test_empty_stream_iterates_nothing(self):
        writer = RecordWriter()
        assert list(RecordReader(writer.getvalue())) == []


@given(
    records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=200)),
        max_size=30,
    )
)
def test_property_tlv_roundtrip(records):
    """Any sequence of (tag, payload) records survives a write/read cycle."""
    writer = RecordWriter(kind=9)
    offsets = [writer.write(tag, payload) for tag, payload in records]
    out = [(t, p) for t, p, _o in RecordReader(writer.getvalue(), expect_kind=9)]
    assert out == records
    for offset, (tag, payload) in zip(offsets, records):
        assert read_at(writer.getvalue(), offset) == (tag, payload)
