"""Unit tests for the TLV record codec."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.serial import (
    RecordReader,
    RecordWriter,
    StreamCorrupt,
    read_at,
)


class TestRecordWriter:
    def test_header_written_on_construction(self):
        writer = RecordWriter(kind=7)
        data = writer.getvalue()
        assert data.startswith(b"DJVW")
        assert writer.bytes_written == len(data)

    def test_write_returns_offset(self):
        writer = RecordWriter()
        off1 = writer.write(1, b"abc")
        off2 = writer.write(2, b"defg")
        assert off2 > off1 > 0

    def test_tag_out_of_range_rejected(self):
        writer = RecordWriter()
        with pytest.raises(ValueError):
            writer.write(-1, b"")
        with pytest.raises(ValueError):
            writer.write(2**32, b"")

    def test_external_fileobj(self):
        buf = io.BytesIO()
        writer = RecordWriter(buf)
        writer.write(5, b"payload")
        assert buf.getvalue().startswith(b"DJVW")


class TestRecordReader:
    def test_roundtrip(self):
        writer = RecordWriter(kind=3)
        writer.write(10, b"first")
        writer.write(20, b"second")
        records = list(RecordReader(writer.getvalue(), expect_kind=3))
        assert [(t, p) for t, p, _o in records] == [(10, b"first"), (20, b"second")]

    def test_offsets_support_random_access(self):
        writer = RecordWriter()
        writer.write(1, b"aaa")
        off = writer.write(2, b"bbb")
        tag, payload = read_at(writer.getvalue(), off)
        assert (tag, payload) == (2, b"bbb")

    def test_seek_to_resumes_iteration(self):
        writer = RecordWriter()
        writer.write(1, b"x")
        off = writer.write(2, b"y")
        writer.write(3, b"z")
        reader = RecordReader(writer.getvalue()).seek_to(off)
        tags = [t for t, _p, _o in reader]
        assert tags == [2, 3]

    def test_kind_mismatch_rejected(self):
        writer = RecordWriter(kind=1)
        with pytest.raises(StreamCorrupt):
            RecordReader(writer.getvalue(), expect_kind=2)

    def test_bad_magic_rejected(self):
        with pytest.raises(StreamCorrupt):
            RecordReader(b"XXXX\x01\x00\x00\x00")

    def test_short_stream_rejected(self):
        with pytest.raises(StreamCorrupt):
            RecordReader(b"DJ")

    def test_truncated_payload_detected(self):
        writer = RecordWriter()
        writer.write(1, b"full-payload")
        data = writer.getvalue()[:-3]
        reader = RecordReader(data)
        with pytest.raises(StreamCorrupt):
            list(reader)

    def test_read_at_bad_offset(self):
        writer = RecordWriter()
        writer.write(1, b"x")
        with pytest.raises(StreamCorrupt):
            read_at(writer.getvalue(), len(writer.getvalue()))

    def test_empty_stream_iterates_nothing(self):
        writer = RecordWriter()
        assert list(RecordReader(writer.getvalue())) == []


@given(
    records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=200)),
        max_size=30,
    )
)
def test_property_tlv_roundtrip(records):
    """Any sequence of (tag, payload) records survives a write/read cycle."""
    writer = RecordWriter(kind=9)
    offsets = [writer.write(tag, payload) for tag, payload in records]
    out = [(t, p) for t, p, _o in RecordReader(writer.getvalue(), expect_kind=9)]
    assert out == records
    for offset, (tag, payload) in zip(offsets, records):
        assert read_at(writer.getvalue(), offset) == (tag, payload)


class TestResume:
    def _stream(self, kind=9, records=3):
        writer = RecordWriter(kind=kind)
        for i in range(records):
            writer.write(i + 1, b"payload-%d" % i)
        return writer

    def test_resume_clean_stream_appends(self):
        buf = io.BytesIO(self._stream().getvalue())
        writer, dropped, count = RecordWriter.resume(buf, expect_kind=9)
        assert (dropped, count) == (0, 3)
        assert writer.kind == 9
        writer.write(7, b"appended")
        tags = [tag for tag, _p, _o in RecordReader(
            io.BytesIO(buf.getvalue()), expect_kind=9)]
        assert tags == [1, 2, 3, 7]

    def test_resume_truncates_torn_tail(self):
        data = self._stream().getvalue() + b"\xff\xee torn tail"
        buf = io.BytesIO(data)
        writer, dropped, count = RecordWriter.resume(buf, expect_kind=9)
        assert count == 3
        assert dropped == len(b"\xff\xee torn tail")
        writer.write(4, b"after")
        records = list(RecordReader(io.BytesIO(buf.getvalue())))
        assert [tag for tag, _p, _o in records] == [1, 2, 3, 4]
        assert writer.bytes_written == len(buf.getvalue())

    def test_resume_header_only_stream(self):
        buf = io.BytesIO(RecordWriter(kind=2).getvalue())
        writer, dropped, count = RecordWriter.resume(buf, expect_kind=2)
        assert (dropped, count) == (0, 0)
        writer.write(1, b"first")
        assert [t for t, _p, _o in RecordReader(
            io.BytesIO(buf.getvalue()))] == [1]

    def test_resume_rejects_wrong_kind_or_bad_header(self):
        buf = io.BytesIO(self._stream(kind=9).getvalue())
        with pytest.raises(StreamCorrupt):
            RecordWriter.resume(buf, expect_kind=10)
        with pytest.raises(StreamCorrupt):
            RecordWriter.resume(io.BytesIO(b"not a stream at all"))
