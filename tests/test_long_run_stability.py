"""Long-run stability: a half-hour (simulated) desktop session.

Exercises the whole stack continuously — policy-driven checkpointing,
display recording, indexing — then verifies the record stays coherent end
to end: playback fidelity, search, revives across the full span, and
pruning down to a handful of checkpoints without breaking the survivors.
"""

from repro.checkpoint.gc import prune_checkpoints
from repro.index.query import Query
from repro.workloads import run_scenario


class TestLongDesktopRun:
    @classmethod
    def setup_class(cls):
        # 30 simulated minutes of policy-driven desktop usage.
        cls.run = run_scenario("desktop", units=1800)
        cls.dv = cls.run.dejaview

    def test_policy_statistics_stay_in_band(self):
        stats = self.dv.policy.stats
        assert stats.total == 1800
        assert 0.10 < stats.taken_fraction() < 0.35

    def test_checkpoint_count_tracks_activity(self):
        assert 150 < self.dv.checkpoint_count < 700

    def test_downtime_stays_bounded_throughout(self):
        history = self.dv.engine.history
        # No checkpoint's downtime degrades over the session.
        worst = max(r.downtime_us for r in history)
        assert worst < 60_000  # 60 ms
        late = history[len(history) // 2 :]
        early = history[: len(history) // 2]
        avg = lambda rs: sum(r.downtime_us for r in rs) / len(rs)
        assert avg(late) < 3 * avg(early)

    def test_full_playback_matches_live_screen(self):
        fb, stats = self.dv.playback(0, self.run.end_us, fastest=True)
        assert fb.checksum() == self.run.session.driver.framebuffer.checksum()
        assert stats.speedup > 100

    def test_search_spans_the_whole_session(self):
        results = self.dv.search(Query.keywords("report"), render=False)
        assert results
        # The document text persisted across most of the session.
        total = sum(r.substream.duration_us for r in results)
        assert total > self.run.duration_us / 2

    def test_revives_at_quarter_points(self):
        span = self.run.end_us - self.run.start_us
        for fraction in (0.25, 0.5, 0.75, 1.0):
            t = self.run.start_us + int(span * fraction)
            revived = self.dv.take_me_back(t)
            assert revived.container.live_processes()

    def test_prune_to_recent_history_keeps_latest_revivable(self):
        history = self.dv.engine.history
        keep = [r.checkpoint_id for r in history[-3:]]
        report = prune_checkpoints(self.dv.storage, self.run.session.fsstore,
                                   keep_ids=keep)
        assert report.image_bytes_freed > 0
        revived = self.dv.reviver.revive(keep[-1])
        assert revived.container.live_processes()
