"""Property-based invariants for the content-addressed page store.

Random interleavings of store/delete/prune/compact are checked against
brute-force oracles recomputed from a shadow model after every step:

* **reachability** — every live checkpoint's pages load back exactly;
* **refcounts** — each CAS entry's refcount equals the number of
  (image, key) references across live manifests, recomputed from the
  model's page contents;
* **accounting** — the storage totals equal the sum over live manifest
  blobs plus live CAS entries (recomputed from the per-entry tables, not
  the incremental counters);
* **no orphan survives compaction** — after ``compact()`` every CAS
  payload is referenced at least once.

The suite runs under three seeds; the CI fault-matrix job varies the
third via ``FAULT_SEED`` so every CI run explores fresh interleavings.
"""

import os
import random

import pytest

from repro.common.clock import VirtualClock
from repro.common.costs import PAGE_SIZE
from repro.common.errors import CheckpointError
from repro.checkpoint.engine import EngineOptions
from repro.checkpoint.gc import prune_checkpoints
from repro.checkpoint.image import CheckpointImage, page_digest
from repro.checkpoint.storage import CheckpointStorage, ShardedPageCAS
from repro.checkpoint.verify import verify_chain
from tests.test_checkpoint_engine import make_rig

SEEDS = [13, 2024, int(os.environ.get("FAULT_SEED", "7"))]


def _payload(rng, pool):
    """A page payload: frequently one from the shared pool (dedup bait),
    sometimes fresh content that joins the pool."""
    if pool and rng.random() < 0.6:
        return rng.choice(pool)
    content = bytes(rng.getrandbits(8) for _ in range(64)) + bytes(192)
    pool.append(content)
    return content


def _make_image(image_id, rng, pool):
    """A self-contained full image with 1-6 pages (full images keep the
    chain verifier happy under arbitrary deletions)."""
    image = CheckpointImage(image_id, timestamp_us=image_id * 1000,
                            container_name="prop", full=True)
    image.regions = {1: [{"start": 0x1000_0000, "npages": 64, "prot": 3,
                          "name": "heap"}]}
    for page in range(rng.randint(1, 6)):
        key = (1, 0x1000_0000, page)
        image.pages[key] = _payload(rng, pool)
        image.page_locations[key] = image_id
    return image


class TestStorageInvariants:
    """Direct-storage interleavings of store/delete/compact/recover."""

    def check_invariants(self, storage, model):
        # Reachability: every live image's pages load back exactly.
        for image_id, pages in model.items():
            loaded = storage.load(image_id, cached=True)
            assert loaded.pages == pages, \
                "image %d pages drifted" % image_id
        # Refcounts: recomputed brute-force from the model's contents.
        expected_refs = {}
        for pages in model.values():
            for content in pages.values():
                digest = page_digest(content)
                expected_refs[digest] = expected_refs.get(digest, 0) + 1
        entries = storage.cas_entries()
        assert {d: e["refs"] for d, e in entries.items()} == expected_refs
        # Every payload map entry is a committed, referenced entry.
        assert set(storage._cas) == set(entries)
        # Accounting: totals equal the sum over live per-entry tables.
        expected_raw = sum(raw for raw, _comp
                           in storage._manifest_sizes.values())
        expected_comp = sum(comp for _raw, comp
                            in storage._manifest_sizes.values())
        expected_raw += sum(e["uncompressed"] for e in entries.values())
        expected_comp += sum(e["compressed"] for e in entries.values())
        assert storage.total_uncompressed_bytes == expected_raw
        assert storage.total_compressed_bytes == expected_comp

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_interleaving(self, seed):
        rng = random.Random(seed)
        storage = CheckpointStorage(clock=VirtualClock())
        model = {}
        pool = []
        next_id = 1
        for _step in range(120):
            op = rng.random()
            if op < 0.45 or not model:
                image = _make_image(next_id, rng, pool)
                receipt = storage.store(image, charge_time=False)
                assert receipt.pages_stored + receipt.pages_deduped == \
                    len(image.pages)
                model[next_id] = dict(image.pages)
                next_id += 1
            elif op < 0.75:
                victim = rng.choice(sorted(model))
                freed = storage.delete(victim)
                assert freed >= 0
                del model[victim]
                with pytest.raises(CheckpointError):
                    storage.load(victim)
            elif op < 0.90:
                report = storage.compact(charge_time=False)
                assert report["orphans_reclaimed"] == 0  # nothing leaks
                entries = storage.cas_entries()
                assert all(e["refs"] >= 1 for e in entries.values())
            else:
                report = storage.recover()
                assert report["verify_ok"]
                assert sorted(model) == storage.stored_ids()
            if rng.random() < 0.25:
                self.check_invariants(storage, model)
        self.check_invariants(storage, model)
        # Drain everything: the store must return to empty.
        for image_id in sorted(model):
            storage.delete(image_id)
        storage.compact(charge_time=False)
        assert storage.cas_entries() == {}
        assert storage._cas == {}
        assert storage.total_uncompressed_bytes == 0
        assert storage.total_compressed_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dedup_counters_match_model(self, seed):
        rng = random.Random(seed)
        storage = CheckpointStorage(clock=VirtualClock())
        pool = []
        stored_digests = set()
        expected_dedup = 0
        for image_id in range(1, 30):
            image = _make_image(image_id, rng, pool)
            seen_in_image = set()
            for content in image.pages.values():
                digest = page_digest(content)
                # A repeat within one image is a dedup hit too: only the
                # first occurrence writes a payload.
                if digest in stored_digests or digest in seen_in_image:
                    expected_dedup += 1
                else:
                    seen_in_image.add(digest)
            receipt = storage.store(image, charge_time=False)
            stored_digests.update(page_digest(c)
                                  for c in image.pages.values())
            assert receipt.pages_deduped >= 0
        assert storage.pages_deduped == expected_dedup
        if expected_dedup:
            assert storage.dedup_bytes_saved > 0


class TestAccountingModeSnapshot:
    """Regression: the accounted mode is snapshotted at store time, so
    toggling ``compress`` between ``store()`` and ``delete()`` can no
    longer drift the books (the old code read ``self.compress`` at
    delete time)."""

    @pytest.mark.parametrize("page_store", [True, False])
    def test_freed_bytes_match_store_time_accounting(self, page_store):
        storage = CheckpointStorage(clock=VirtualClock(), compress=False,
                                    page_store=page_store)
        rng = random.Random(5)
        image = _make_image(1, rng, pool=[])
        receipt = storage.store(image, charge_time=False)
        # Operator flips the accounting mode mid-run.
        storage.compress = True
        freed = storage.delete(1)
        assert freed == receipt.accounted_bytes
        storage.compact(charge_time=False)
        assert storage.total_uncompressed_bytes == 0
        assert storage.total_compressed_bytes == 0

    @pytest.mark.parametrize("page_store", [True, False])
    def test_toggle_both_directions_drains_to_zero(self, page_store):
        storage = CheckpointStorage(clock=VirtualClock(), compress=True,
                                    page_store=page_store)
        rng = random.Random(9)
        pool = []
        receipts = {}
        for image_id in (1, 2, 3):
            image = _make_image(image_id, rng, pool)
            receipts[image_id] = storage.store(image, charge_time=False)
            storage.compress = not storage.compress
        # Deletion order differs from store order; every blob and page is
        # freed under whatever mode it was stored with.
        for image_id in (2, 1, 3):
            assert storage.delete(image_id) >= 0
        storage.compact(charge_time=False)
        assert storage.cas_entries() == {}
        assert storage.total_uncompressed_bytes == 0
        assert storage.total_compressed_bytes == 0


class TestEngineInterleaving:
    """Checkpoint/prune/compact through the real engine and GC."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checkpoint_prune_compact_interleaving(self, seed):
        rng = random.Random(seed)
        options = EngineOptions(full_checkpoint_interval=5)
        kernel, _container, fsstore, storage, engine, procs = make_rig(
            options, nprocs=2, pages_per_proc=4)
        for _round in range(8):
            for _ in range(rng.randint(1, 4)):
                proc = rng.choice(procs)
                region = proc.address_space.regions()[0]
                page = rng.randrange(region.npages)
                proc.address_space.write(
                    region.start + page * PAGE_SIZE,
                    bytes(rng.getrandbits(8) for _ in range(32)),
                )
                engine.checkpoint()
            stored = storage.stored_ids()
            if len(stored) > 3 and rng.random() < 0.7:
                keep = set(rng.sample(stored, rng.randint(1, 3)))
                keep.add(stored[-1])  # never drop the live head
                # Close the keep set over the owner relation so every
                # surviving image's own page directory stays resolvable
                # (donor images kept for their pages may reference even
                # older donors).
                while True:
                    owners = set()
                    for image_id in keep:
                        image = storage.load(image_id, cached=True)
                        owners.update(image.page_locations.values())
                    if owners <= keep:
                        break
                    keep |= owners
                report = prune_checkpoints(storage, fsstore, sorted(keep))
                assert set(report.deleted_images).isdisjoint(
                    report.kept_images)
                # Compaction ran inside the prune; no orphans survive.
                assert all(e["refs"] >= 1
                           for e in storage.cas_entries().values())
            verdict = verify_chain(storage, fsstore)
            assert verdict.ok, [str(issue) for issue in verdict.issues]
            # Reachability through the chain: the latest checkpoint's
            # page-location directory must fully resolve.
            latest = storage.stored_ids()[-1]
            image = storage.load(latest, cached=True)
            for key, owner_id in image.page_locations.items():
                owner = storage.load(owner_id, cached=True)
                assert key in owner.pages


class TestShardedLayout:
    """Sharding is a *physical* layout choice: every shard count yields
    the same logical state (payloads, refcounts, totals), extents only
    ever hold digests of their own shard, and a shard-count change on
    reopen (``reshard``) is invisible to readers — v3 manifests name
    digests, never extents."""

    SHARD_COUNTS = [1, 2, 4, 8]

    @staticmethod
    def _logical_state(storage):
        cas = storage.cas
        return (
            dict(cas.pages),
            dict(cas.sizes),
            dict(cas.refs),
            {owner: dict(refs)
             for owner, refs in cas.owner_refs.items()},
            cas.total_uncompressed_bytes,
            cas.total_compressed_bytes,
        )

    @staticmethod
    def _drive(storage, seed, steps=60):
        rng = random.Random(seed)
        model = {}
        pool = []
        next_id = 1
        for _step in range(steps):
            op = rng.random()
            if op < 0.55 or not model:
                image = _make_image(next_id, rng, pool)
                storage.store(image, charge_time=False)
                model[next_id] = dict(image.pages)
                next_id += 1
            elif op < 0.8:
                victim = rng.choice(sorted(model))
                storage.delete(victim)
                del model[victim]
            else:
                storage.compact(charge_time=False)
        return model

    def _check_placement(self, cas):
        """Every committed digest sits in an extent tagged with its own
        consistent-hash shard."""
        for digest, eid in cas.extent_of.items():
            extent = cas.extents[eid]
            assert extent.shard == cas.shard_of(digest), \
                "digest %s landed on shard %d, hashes to %d" % (
                    digest.hex()[:12], extent.shard, cas.shard_of(digest))
            assert digest in extent.digests

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_logical_state_is_shard_count_invariant(self, seed, shards):
        baseline = CheckpointStorage(clock=VirtualClock(), shards=1)
        sharded = CheckpointStorage(clock=VirtualClock(), shards=shards)
        model_a = self._drive(baseline, seed)
        model_b = self._drive(sharded, seed)
        assert model_a == model_b
        assert self._logical_state(baseline) == self._logical_state(sharded)
        assert baseline.cas_entries() == sharded.cas_entries()
        self._check_placement(sharded.cas)
        # Readers see identical bytes regardless of physical layout.
        for image_id, pages in model_b.items():
            assert sharded.load(image_id, cached=True).pages == pages

    @pytest.mark.parametrize("reopen_shards", [2, 4, 8])
    def test_reshard_preserves_logical_state(self, reopen_shards):
        storage = CheckpointStorage(clock=VirtualClock(), shards=1)
        model = self._drive(storage, seed=SEEDS[0])
        before = self._logical_state(storage)
        cas = storage.cas
        cas.reshard(reopen_shards)
        assert cas.shard_count == reopen_shards
        assert self._logical_state(storage) == before
        assert set(cas.extent_of) == set(cas.sizes)
        self._check_placement(cas)
        for image_id, pages in model.items():
            assert storage.load(image_id, cached=True).pages == pages
        # And back down to one shard: still lossless.
        cas.reshard(1)
        assert self._logical_state(storage) == before
        for image_id, pages in model.items():
            assert storage.load(image_id, cached=True).pages == pages

    def test_async_store_queues_then_drain_flushes(self):
        cas = ShardedPageCAS(shards=4, async_writeback=True)
        storage = CheckpointStorage(clock=VirtualClock(), cas=cas)
        rng = random.Random(SEEDS[0])
        pool = []
        image = _make_image(1, rng, pool)
        storage.store(image, charge_time=False)
        assert storage.writeback_async
        assert storage.writeback_backlog_bytes > 0
        assert cas.backlog_pages() > 0
        # Queued pages are fully readable: logical commit is immediate.
        assert storage.load(1, cached=True).pages == dict(image.pages)
        assert cas.unflushed_digests()
        report = storage.drain_writeback()
        assert report["pages"] > 0 and report["bytes"] > 0
        assert storage.writeback_backlog_bytes == 0
        assert cas.backlog_pages() == 0
        assert set(cas.extent_of) == set(cas.sizes)
        self._check_placement(cas)

    def test_compact_drains_pending_appends_first(self):
        """Regression (satellite): compaction must never rewrite an
        extent while appends for its shard are still queued — compact()
        drains everything before touching extents."""
        cas = ShardedPageCAS(shards=2, async_writeback=True)
        storage = CheckpointStorage(clock=VirtualClock(), cas=cas)
        rng = random.Random(SEEDS[1])
        pool = []
        for image_id in (1, 2, 3):
            storage.store(_make_image(image_id, rng, pool),
                          charge_time=False)
        storage.delete(2)  # make some dead bytes worth compacting
        assert cas.backlog_pages() > 0  # appends still in flight
        report = storage.compact(charge_time=False)
        assert report["drained_pages"] > 0
        assert cas.backlog_pages() == 0
        assert cas.backlog_bytes() == 0
        # Post-compaction: every committed digest physically placed.
        assert set(cas.extent_of) == set(cas.sizes)
        self._check_placement(cas)
        for image_id in (1, 3):
            assert storage.load(image_id, cached=True) is not None

    def test_delete_cancels_queued_appends(self):
        """Regression (satellite): deleting an image whose pages are
        still queued cancels the pending appends in place — no stale
        payload ever reaches an extent, and a later flush writes only
        surviving pages."""
        cas = ShardedPageCAS(shards=2, async_writeback=True)
        storage = CheckpointStorage(clock=VirtualClock(), cas=cas)
        rng = random.Random(SEEDS[2])
        pool = []
        image = _make_image(1, rng, pool)
        storage.store(image, charge_time=False)
        queued_before = cas.backlog_pages()
        assert queued_before > 0
        storage.delete(1)
        assert cas.backlog_pages() == 0  # every queued append cancelled
        assert cas.backlog_bytes() == 0
        report = storage.drain_writeback()
        assert report["pages"] == 0  # nothing stale left to write
        assert cas.pages == {} and cas.extent_of == {}
        assert storage.total_uncompressed_bytes == 0

    def test_sync_mode_never_leaves_a_backlog(self):
        """Sync stores force-flush at manifest commit, so the queue is
        empty at every durability point — for every shard count."""
        for shards in self.SHARD_COUNTS:
            storage = CheckpointStorage(clock=VirtualClock(),
                                        shards=shards)
            rng = random.Random(SEEDS[0])
            pool = []
            for image_id in (1, 2):
                storage.store(_make_image(image_id, rng, pool),
                              charge_time=False)
                assert storage.writeback_backlog_bytes == 0
                assert not storage.cas.unflushed_digests()
            verdict = verify_chain(storage)
            assert verdict.ok, [str(i) for i in verdict.issues]
