"""Checkpoint image format: roundtrips, corruption handling, fuzzing."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckpointError
from repro.common.serial import (
    FORMAT_VERSION_MANIFEST,
    RecordWriter,
    StreamCorrupt,
)
from repro.checkpoint.image import (
    DIGEST_SIZE,
    STREAM_KIND_CHECKPOINT,
    TAG_METADATA,
    TAG_PAGE,
    TAG_PAGE_REF,
    CheckpointImage,
    page_digest,
)
from repro.checkpoint.storage import CheckpointStorage

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _fixture(name):
    with open(os.path.join(DATA_DIR, name), "rb") as handle:
        return handle.read()


def _image(pages=3):
    image = CheckpointImage(
        checkpoint_id=7,
        timestamp_us=123456,
        container_name="desktop",
        parent_id=6,
        full=False,
        fs_txn=42,
    )
    image.processes = [{
        "vpid": 1, "parent_vpid": None, "name": "init", "state": "runnable",
        "nice": 0, "uid": 1000, "gid": 1000, "groups": [1000],
        "pending_signals": [], "blocked_signals": [], "signal_handlers": {},
        "threads": [{"tid": 0, "registers": {"pc": 0}, "fpu_state": ""}],
        "ptraced_by": None, "cwd": "/", "open_files": [],
    }]
    image.regions = {1: [{"start": 0x1000_0000, "npages": 8, "prot": 3,
                          "name": "heap"}]}
    for page in range(pages):
        key = (1, 0x1000_0000, page)
        image.pages[key] = bytes([page]) * 64
        image.page_locations[key] = 7
    image.relinked_files = [(1, 3, "/.dejaview/relink-9")]
    return image


class TestImageRoundtrip:
    def test_full_roundtrip(self):
        image = _image()
        restored = CheckpointImage.deserialize(image.serialize())
        assert restored.checkpoint_id == 7
        assert restored.parent_id == 6
        assert not restored.full
        assert restored.fs_txn == 42
        assert restored.container_name == "desktop"
        assert restored.processes == image.processes
        assert restored.regions == image.regions
        assert restored.pages == image.pages
        assert restored.page_locations == image.page_locations
        assert restored.relinked_files == image.relinked_files

    def test_size_accounting(self):
        image = _image(pages=4)
        assert image.saved_page_count == 4
        assert image.page_bytes == 4 * 64
        assert image.metadata_bytes > 0
        assert image.nbytes >= image.metadata_bytes + image.page_bytes

    def test_empty_image_roundtrip(self):
        image = CheckpointImage(1, 0, "empty")
        restored = CheckpointImage.deserialize(image.serialize())
        assert restored.pages == {}
        assert restored.processes == []

    def test_repr(self):
        assert "incremental" in repr(_image())
        full = CheckpointImage(1, 0, "x", full=True)
        assert "full" in repr(full)


class TestManifestFormat:
    """Serial format v3: digest-reference page records."""

    def test_v3_roundtrip_carries_digests_not_pages(self):
        image = _image()
        restored = CheckpointImage.deserialize(
            image.serialize(format=FORMAT_VERSION_MANIFEST))
        assert restored.pages == {}
        assert restored.page_digests == {
            key: page_digest(content) for key, content in image.pages.items()
        }
        assert restored.page_locations == image.page_locations
        assert restored.processes == image.processes

    def test_manifest_from_pages_and_from_digests_agree(self):
        image = _image()
        v3 = image.serialize(format=FORMAT_VERSION_MANIFEST)
        restored = CheckpointImage.deserialize(v3)
        assert restored.manifest() == image.manifest()

    def test_unknown_format_rejected(self):
        with pytest.raises(CheckpointError):
            _image().serialize(format=4)

    def test_v2_stream_rejects_digest_records(self):
        image = CheckpointImage(1, 0, "x")
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        writer.write(TAG_METADATA, image._metadata_json())
        writer.write(TAG_PAGE_REF, b"\x00" * (12 + DIGEST_SIZE))
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_v3_stream_rejects_inline_page_records(self):
        image = CheckpointImage(1, 0, "x")
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT,
                              version=FORMAT_VERSION_MANIFEST)
        writer.write(TAG_METADATA, image._metadata_json())
        writer.write(TAG_PAGE, b"\x00" * 80)
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_malformed_digest_length_rejected(self):
        image = CheckpointImage(1, 0, "x")
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT,
                              version=FORMAT_VERSION_MANIFEST)
        writer.write(TAG_METADATA, image._metadata_json())
        writer.write(TAG_PAGE_REF, b"\x00" * (12 + DIGEST_SIZE - 1))
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())


class TestGoldenFixtures:
    """Committed on-disk blobs: the formats must stay readable forever."""

    def test_v2_fixture_deserializes(self):
        restored = CheckpointImage.deserialize(_fixture("ckpt_v2.bin"))
        expected = _image()
        assert restored.checkpoint_id == expected.checkpoint_id
        assert restored.pages == expected.pages
        assert restored.page_locations == expected.page_locations
        assert restored.relinked_files == expected.relinked_files

    def test_v3_fixture_deserializes(self):
        restored = CheckpointImage.deserialize(_fixture("ckpt_v3.bin"))
        expected = _image()
        assert restored.checkpoint_id == expected.checkpoint_id
        assert restored.pages == {}
        assert restored.page_digests == {
            key: page_digest(content)
            for key, content in expected.pages.items()
        }

    def test_v2_fixture_matches_current_serializer(self):
        assert _image().serialize() == _fixture("ckpt_v2.bin")

    def test_v3_reserialization_is_byte_identical(self):
        data = _fixture("ckpt_v3.bin")
        restored = CheckpointImage.deserialize(data)
        assert restored.serialize(format=FORMAT_VERSION_MANIFEST) == data
        # And serializing the payload-carrying original lands on the same
        # bytes: digests are derived, not stateful.
        assert _image().serialize(format=FORMAT_VERSION_MANIFEST) == data

    def test_torn_v3_manifest_detected_by_blob_ok(self):
        storage = CheckpointStorage()
        image = _image()
        storage.store(image, charge_time=False)
        frame = storage._blobs[image.checkpoint_id]
        storage._blobs[image.checkpoint_id] = frame[:len(frame) // 2]
        ok, reason = storage.blob_ok(image.checkpoint_id)
        assert not ok
        assert "torn" in reason


class TestCorruption:
    def test_empty_stream_rejected(self):
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_wrong_first_tag_rejected(self):
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        writer.write(TAG_PAGE, b"\x00" * 16)
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_unknown_tag_rejected(self):
        image = CheckpointImage(1, 0, "x")
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        writer.write(TAG_METADATA, image._metadata_json())
        writer.write(99, b"junk")
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_wrong_stream_kind_rejected(self):
        writer = RecordWriter(kind=0xBEEF)
        writer.write(TAG_METADATA, b"{}")
        with pytest.raises(StreamCorrupt):
            CheckpointImage.deserialize(writer.getvalue())

    def test_truncated_stream_rejected(self):
        data = _image().serialize()
        with pytest.raises((CheckpointError, StreamCorrupt)):
            CheckpointImage.deserialize(data[: len(data) - 7])


@settings(max_examples=40, deadline=None)
@given(
    pages=st.dictionaries(
        st.tuples(
            st.integers(min_value=1, max_value=99),
            st.sampled_from([0x1000_0000, 0x2000_0000]),
            st.integers(min_value=0, max_value=500),
        ),
        st.binary(min_size=0, max_size=128),
        max_size=20,
    ),
    checkpoint_id=st.integers(min_value=1, max_value=10**6),
    full=st.booleans(),
)
def test_property_image_roundtrip(pages, checkpoint_id, full):
    image = CheckpointImage(checkpoint_id, 5, "fuzz", full=full)
    image.pages = dict(pages)
    image.page_locations = {key: checkpoint_id for key in pages}
    restored = CheckpointImage.deserialize(image.serialize())
    assert restored.pages == image.pages
    assert restored.page_locations == image.page_locations
    assert restored.checkpoint_id == checkpoint_id
    assert restored.full == full
