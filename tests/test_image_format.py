"""Checkpoint image format: roundtrips, corruption handling, fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckpointError
from repro.common.serial import RecordWriter, StreamCorrupt
from repro.checkpoint.image import (
    STREAM_KIND_CHECKPOINT,
    TAG_METADATA,
    TAG_PAGE,
    CheckpointImage,
)


def _image(pages=3):
    image = CheckpointImage(
        checkpoint_id=7,
        timestamp_us=123456,
        container_name="desktop",
        parent_id=6,
        full=False,
        fs_txn=42,
    )
    image.processes = [{
        "vpid": 1, "parent_vpid": None, "name": "init", "state": "runnable",
        "nice": 0, "uid": 1000, "gid": 1000, "groups": [1000],
        "pending_signals": [], "blocked_signals": [], "signal_handlers": {},
        "threads": [{"tid": 0, "registers": {"pc": 0}, "fpu_state": ""}],
        "ptraced_by": None, "cwd": "/", "open_files": [],
    }]
    image.regions = {1: [{"start": 0x1000_0000, "npages": 8, "prot": 3,
                          "name": "heap"}]}
    for page in range(pages):
        key = (1, 0x1000_0000, page)
        image.pages[key] = bytes([page]) * 64
        image.page_locations[key] = 7
    image.relinked_files = [(1, 3, "/.dejaview/relink-9")]
    return image


class TestImageRoundtrip:
    def test_full_roundtrip(self):
        image = _image()
        restored = CheckpointImage.deserialize(image.serialize())
        assert restored.checkpoint_id == 7
        assert restored.parent_id == 6
        assert not restored.full
        assert restored.fs_txn == 42
        assert restored.container_name == "desktop"
        assert restored.processes == image.processes
        assert restored.regions == image.regions
        assert restored.pages == image.pages
        assert restored.page_locations == image.page_locations
        assert restored.relinked_files == image.relinked_files

    def test_size_accounting(self):
        image = _image(pages=4)
        assert image.saved_page_count == 4
        assert image.page_bytes == 4 * 64
        assert image.metadata_bytes > 0
        assert image.nbytes >= image.metadata_bytes + image.page_bytes

    def test_empty_image_roundtrip(self):
        image = CheckpointImage(1, 0, "empty")
        restored = CheckpointImage.deserialize(image.serialize())
        assert restored.pages == {}
        assert restored.processes == []

    def test_repr(self):
        assert "incremental" in repr(_image())
        full = CheckpointImage(1, 0, "x", full=True)
        assert "full" in repr(full)


class TestCorruption:
    def test_empty_stream_rejected(self):
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_wrong_first_tag_rejected(self):
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        writer.write(TAG_PAGE, b"\x00" * 16)
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_unknown_tag_rejected(self):
        image = CheckpointImage(1, 0, "x")
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
        writer.write(TAG_METADATA, image._metadata_json())
        writer.write(99, b"junk")
        with pytest.raises(CheckpointError):
            CheckpointImage.deserialize(writer.getvalue())

    def test_wrong_stream_kind_rejected(self):
        writer = RecordWriter(kind=0xBEEF)
        writer.write(TAG_METADATA, b"{}")
        with pytest.raises(StreamCorrupt):
            CheckpointImage.deserialize(writer.getvalue())

    def test_truncated_stream_rejected(self):
        data = _image().serialize()
        with pytest.raises((CheckpointError, StreamCorrupt)):
            CheckpointImage.deserialize(data[: len(data) - 7])


@settings(max_examples=40, deadline=None)
@given(
    pages=st.dictionaries(
        st.tuples(
            st.integers(min_value=1, max_value=99),
            st.sampled_from([0x1000_0000, 0x2000_0000]),
            st.integers(min_value=0, max_value=500),
        ),
        st.binary(min_size=0, max_size=128),
        max_size=20,
    ),
    checkpoint_id=st.integers(min_value=1, max_value=10**6),
    full=st.booleans(),
)
def test_property_image_roundtrip(pages, checkpoint_id, full):
    image = CheckpointImage(checkpoint_id, 5, "fuzz", full=full)
    image.pages = dict(pages)
    image.page_locations = {key: checkpoint_id for key in pages}
    restored = CheckpointImage.deserialize(image.serialize())
    assert restored.pages == image.pages
    assert restored.page_locations == image.page_locations
    assert restored.checkpoint_id == checkpoint_id
    assert restored.full == full
