"""Tests for viewer input routing and the section 4.4 annotation flows."""

import pytest

from repro.common.errors import DejaViewError
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.input import KeyEvent, MouseEvent
from repro.desktop.session import DesktopSession
from repro.index.query import Query


def _session():
    session = DesktopSession(width=64, height=48)
    dv = DejaView(session, RecordingConfig(record_display=False,
                                           record_checkpoints=False))
    return session, dv


class TestInputRouting:
    def test_typing_goes_to_focused_app(self):
        session, _dv = _session()
        editor = session.launch("editor")
        other = session.launch("other")
        editor.focus()
        session.type_text("hello")
        assert editor.typed_text == "hello"
        assert other.typed_text == ""

    def test_typing_accumulates(self):
        session, _dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("hello ")
        session.type_text("world")
        assert editor.typed_text == "hello world"

    def test_focus_switch_redirects_input(self):
        session, _dv = _session()
        editor = session.launch("editor")
        browser = session.launch("browser")
        editor.focus()
        session.type_text("to editor")
        browser.focus()
        session.type_text("to browser")
        assert editor.typed_text == "to editor"
        assert browser.typed_text == "to browser"

    def test_no_focus_rejected(self):
        session, _dv = _session()
        session.launch("editor")  # never focused
        with pytest.raises(DejaViewError):
            session.type_text("lost")
        with pytest.raises(DejaViewError):
            session.select_text("lost")

    def test_router_counts(self):
        session, _dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("a")
        session.select_text("a")
        assert session.input_router.keys_delivered == 1
        assert session.input_router.mouse_delivered == 1

    def test_empty_key_event_is_noop(self):
        session, _dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.input_router.deliver_key(KeyEvent())
        assert editor.typed_text == ""

    def test_click_event_is_accepted(self):
        session, _dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.input_router.deliver_mouse(MouseEvent(x=5, y=5))


class TestTypedAnnotations:
    def test_typed_text_is_indexed(self):
        """"annotations can be simply created by the user by typing text in
        some visible part of the screen since the indexing daemon will
        automatically add it to the record stream.""" ""
        session, dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("REMEMBER-XYZZY budget meeting friday")
        results = dv.search(Query.keywords("xyzzy"), render=False)
        assert len(results) == 1

    def test_select_and_combo_annotates_typed_text(self):
        """The explicit flow: type, select with the mouse, press the
        combination key (section 4.4)."""
        from repro.access.daemon import IndexingDaemon

        session, dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("key insight about caching")
        session.select_text("key insight")
        session.press_combo(IndexingDaemon.ANNOTATE_COMBO)
        results = dv.search(Query.annotations(), render=False)
        assert len(results) == 1
        assert "key insight" in results[0].snippet

    def test_wrong_combo_does_not_annotate(self):
        session, dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("ordinary words")
        session.select_text("ordinary")
        session.press_combo("ctrl+s")
        assert dv.search(Query.annotations(), render=False) == []

    def test_input_not_recorded_directly(self):
        """Section 2: "user input is not directly recorded; only the
        changes it effects on the display are kept"."""
        session, dv = _session()
        editor = session.launch("editor")
        editor.focus()
        session.type_text("secret passphrase")
        # The router keeps no transcript of events.
        assert not hasattr(session.input_router, "log")
        assert not hasattr(session.input_router, "events")
