"""Tests for substream-restricted PVR playback (section 4.4)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import DisplayError
from repro.common.units import seconds
from repro.display.commands import Region, SolidFillCmd
from repro.display.driver import VirtualDisplayDriver
from repro.display.playback import PlaybackEngine, SubstreamPlayer
from repro.display.recorder import DisplayRecorder, RecorderConfig


def _record_colors(n=10, gap_s=2):
    """A record that shows color i during [i*gap, (i+1)*gap)."""
    clock = VirtualClock()
    driver = VirtualDisplayDriver(32, 24, clock=clock)
    recorder = DisplayRecorder(
        32, 24, clock=clock,
        config=RecorderConfig(screenshot_interval_us=seconds(5),
                              screenshot_min_change_fraction=0.01),
    )
    driver.attach_sink(recorder)
    for i in range(n):
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), i + 1))
        driver.flush()
        clock.advance_us(seconds(gap_s))
    return clock, recorder.finalize()


class TestSubstreamPlayer:
    def _player(self, start_s, end_s):
        clock, record = _record_colors()
        engine = PlaybackEngine(record, clock=VirtualClock())
        return SubstreamPlayer(engine, seconds(start_s), seconds(end_s))

    def test_invalid_window_rejected(self):
        clock, record = _record_colors()
        engine = PlaybackEngine(record, clock=VirtualClock())
        with pytest.raises(DisplayError):
            SubstreamPlayer(engine, seconds(5), seconds(1))

    def test_duration(self):
        player = self._player(4, 10)
        assert player.duration_us == seconds(6)

    def test_seek_clamps_to_window(self):
        player = self._player(4, 10)
        # Color i+1 is submitted at ~i*2s (plus sub-ms cost drift), so at
        # the window start (4 s) color 2 is showing, and at the end (10 s)
        # color 5.
        fb, _ = player.seek(0)
        assert int(fb.pixels[0, 0]) == 2
        fb, _ = player.seek(seconds(100))
        assert int(fb.pixels[0, 0]) == 5

    def test_seek_inside_window_passes_through(self):
        player = self._player(4, 10)
        fb, _ = player.seek(seconds(7))
        assert int(fb.pixels[0, 0]) == 4

    def test_first_last_frames(self):
        player = self._player(4, 10)
        first, _ = player.first_frame()
        last, _ = player.last_frame()
        assert int(first.pixels[0, 0]) == 2
        assert int(last.pixels[0, 0]) == 5

    def test_play_defaults_to_whole_substream(self):
        player = self._player(4, 10)
        fb, stats = player.play(fastest=True)
        assert stats.recorded_duration_us == seconds(6)
        assert int(fb.pixels[0, 0]) == 5

    def test_play_cannot_escape_window(self):
        player = self._player(4, 10)
        _fb, stats = player.play(0, seconds(100), fastest=True)
        assert stats.recorded_duration_us == seconds(6)

    def test_fast_forward_and_rewind_clamped(self):
        player = self._player(4, 10)
        fb, _stats, _shown = player.fast_forward(0, seconds(100))
        assert int(fb.pixels[0, 0]) == 5
        fb, _stats, _shown = player.rewind(seconds(100), 0)
        assert int(fb.pixels[0, 0]) == 2


class TestSearchIntegration:
    def test_player_for_search_result(self):
        """A search hit can be explored as its own little recording."""
        from repro.common.costs import CostModel
        from repro.index.database import TemporalTextDatabase
        from repro.index.query import Query
        from repro.index.search import SearchEngine

        clock = VirtualClock()
        driver = VirtualDisplayDriver(32, 24, clock=clock)
        recorder = DisplayRecorder(32, 24, clock=clock)
        driver.attach_sink(recorder)
        db = TemporalTextDatabase(
            clock, costs=CostModel(index_token_us=0, index_query_term_us=0,
                                   index_posting_us=0)
        )
        driver.submit(SolidFillCmd(Region(0, 0, 32, 24), 0xBEEF))
        driver.flush()
        db.open_occurrence(1, "substream demo text", app="a")
        clock.advance_us(seconds(8))
        db.close_occurrence(1)
        engine = SearchEngine(
            db, playback=PlaybackEngine(recorder.finalize(),
                                        clock=VirtualClock()),
        )
        results = engine.search(Query.keywords("substream"), render=False)
        player = engine.player_for(results[0].substream)
        fb, stats = player.play(fastest=True)
        assert int(fb.pixels[0, 0]) == 0xBEEF

    def test_player_requires_playback(self):
        from repro.index.database import TemporalTextDatabase
        from repro.index.search import SearchEngine, Substream

        engine = SearchEngine(TemporalTextDatabase(VirtualClock()),
                              playback=None)
        with pytest.raises(ValueError):
            engine.player_for(Substream(0, 10))
