"""Unit tests for the timeline index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DisplayError
from repro.display.timeline import TimelineEntry, TimelineIndex


def _index(times):
    index = TimelineIndex()
    for i, t in enumerate(times):
        index.append(TimelineEntry(t, i * 100, i * 200))
    return index


class TestTimelineIndex:
    def test_append_and_len(self):
        index = _index([0, 10, 20])
        assert len(index) == 3
        assert index[1].time_us == 10

    def test_out_of_order_append_rejected(self):
        index = _index([10])
        with pytest.raises(DisplayError):
            index.append(TimelineEntry(5, 0, 0))

    def test_equal_times_allowed(self):
        index = _index([10, 10])
        assert len(index) == 2

    def test_locate_exact(self):
        index = _index([0, 10, 20])
        i, entry = index.locate(10)
        assert entry.time_us == 10

    def test_locate_between(self):
        index = _index([0, 10, 20])
        _i, entry = index.locate(15)
        assert entry.time_us == 10

    def test_locate_after_last(self):
        index = _index([0, 10, 20])
        _i, entry = index.locate(10_000)
        assert entry.time_us == 20

    def test_locate_before_first(self):
        index = _index([10, 20])
        i, entry = index.locate(5)
        assert (i, entry) == (None, None)

    def test_locate_empty(self):
        assert TimelineIndex().locate(5) == (None, None)

    def test_entries_between(self):
        index = _index([0, 10, 20, 30])
        times = [e.time_us for e in index.entries_between(10, 20)]
        assert times == [10, 20]

    def test_first_last(self):
        index = _index([3, 9])
        assert index.first_time_us == 3
        assert index.last_time_us == 9
        assert TimelineIndex().first_time_us is None

    def test_serialization_roundtrip(self):
        index = _index([0, 10, 20])
        restored = TimelineIndex.from_bytes(index.to_bytes())
        assert list(restored) == list(index)

    def test_fixed_size_entries(self):
        index = _index([0, 10])
        assert len(index.to_bytes()) == 2 * TimelineIndex.ENTRY_SIZE
        assert index.nbytes == 2 * TimelineIndex.ENTRY_SIZE

    def test_corrupt_size_rejected(self):
        with pytest.raises(DisplayError):
            TimelineIndex.from_bytes(b"\x00" * (TimelineIndex.ENTRY_SIZE + 1))


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=60))
def test_property_locate_matches_linear_scan(times):
    """Binary search over the timeline must agree with a linear scan for
    every probe point (the section 4.3 seek correctness property)."""
    times = sorted(times)
    index = _index(times)
    probes = set(times) | {0, times[0] - 1, times[-1] + 1, times[len(times) // 2] + 1}
    for probe in probes:
        if probe < 0:
            continue
        _i, entry = index.locate(probe)
        expected = None
        for t in times:
            if t <= probe:
                expected = t
        if expected is None:
            assert entry is None
        else:
            assert entry.time_us == expected
