"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_scenarios_lists_all_eight(self):
        code, output = run_cli("scenarios")
        assert code == 0
        for name in ("web", "video", "untar", "gzip", "make", "octave",
                     "cat", "desktop"):
            assert name in output

    def test_run_reports_checkpoints_and_storage(self):
        code, output = run_cli("run", "gzip", "--units", "16")
        assert code == 0
        assert "checkpoints:" in output
        assert "storage growth:" in output
        assert "sample search" in output

    def test_run_with_components_disabled(self):
        code, output = run_cli(
            "run", "gzip", "--units", "8",
            "--no-display", "--no-index", "--no-checkpoints",
        )
        assert code == 0
        assert "checkpoints:" not in output

    def test_run_compress_flag(self):
        code, output = run_cli("run", "octave", "--units", "4", "--compress")
        assert code == 0

    def test_run_policy_flag(self):
        code, output = run_cli("run", "desktop", "--units", "30", "--policy")
        assert code == 0

    def test_run_unknown_scenario_errors(self):
        from repro.common.errors import DejaViewError

        with pytest.raises(DejaViewError):
            run_cli("run", "quake3")

    def test_demo(self):
        code, output = run_cli("demo")
        assert code == 0
        assert "revived" in output
        assert "deleted file restored" in output

    def test_figures_map(self):
        code, output = run_cli("figures")
        assert code == 0
        for path in FIGURES.values():
            assert path in output

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
