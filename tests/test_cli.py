"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_scenarios_lists_all_eight(self):
        code, output = run_cli("scenarios")
        assert code == 0
        for name in ("web", "video", "untar", "gzip", "make", "octave",
                     "cat", "desktop"):
            assert name in output

    def test_run_reports_checkpoints_and_storage(self):
        code, output = run_cli("run", "gzip", "--units", "16")
        assert code == 0
        assert "checkpoints:" in output
        assert "storage growth:" in output
        assert "sample search" in output

    def test_run_with_components_disabled(self):
        code, output = run_cli(
            "run", "gzip", "--units", "8",
            "--no-display", "--no-index", "--no-checkpoints",
        )
        assert code == 0
        assert "checkpoints:" not in output

    def test_run_compress_flag(self):
        code, output = run_cli("run", "octave", "--units", "4", "--compress")
        assert code == 0

    def test_run_policy_flag(self):
        code, output = run_cli("run", "desktop", "--units", "30", "--policy")
        assert code == 0

    def test_run_unknown_scenario_errors(self):
        from repro.common.errors import DejaViewError

        with pytest.raises(DejaViewError):
            run_cli("run", "quake3")

    def test_demo(self):
        code, output = run_cli("demo")
        assert code == 0
        assert "revived" in output
        assert "deleted file restored" in output

    def test_figures_map(self):
        code, output = run_cli("figures")
        assert code == 0
        for path in FIGURES.values():
            assert path in output

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFlightRecorderCli:
    CRASH = "storage.cas.page_append:after=2"

    def test_doctor_post_mortem_text(self, tmp_path):
        journal = str(tmp_path / "journal")
        code, output = run_cli(
            "doctor", "web", "--faults", self.CRASH,
            "--post-mortem", "--journal-dir", journal, "--last", "12")
        assert code == 0
        assert "flight journal:" in output
        assert "CRC prefix verified" in output
        assert "FAULT" in output and "storage.cas.page_append" in output
        assert "recover.done" in output

    def test_doctor_post_mortem_json(self, tmp_path):
        import json as _json

        code, output = run_cli(
            "doctor", "web", "--faults", self.CRASH, "--post-mortem",
            "--journal-dir", str(tmp_path / "j"), "--json")
        assert code == 0
        data = _json.loads(output)
        post = data["post_mortem"]
        assert post["verified"] is True
        assert post["records_total"] > 0
        types = [r["type"] for r in post["records"]]
        assert "FAULT" in types and "RECOVERY" in types

    def test_doctor_post_mortem_in_memory(self):
        code, output = run_cli("doctor", "gzip", "--units", "4",
                               "--post-mortem")
        assert code == 0
        assert "flight journal:" in output

    def test_doctor_trace_out(self, tmp_path):
        import json as _json

        trace = str(tmp_path / "trace.json")
        code, _ = run_cli("doctor", "gzip", "--units", "4",
                          "--post-mortem", "--trace-out", trace)
        assert code == 0
        document = _json.loads(open(trace).read())
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_stats_faults_table(self):
        code, output = run_cli(
            "stats", "web", "--units", "4", "--faults",
            "recorder.log.append:mode=io,after=5")
        assert code == 0
        assert "failpoints (hits / fired):" in output
        assert "recorder.log.append" in output
        assert "fired=1" in output

    def test_stats_faults_json(self):
        import json as _json

        code, output = run_cli(
            "stats", "web", "--units", "4", "--json", "--faults",
            "recorder.log.append:mode=io,after=5")
        assert code == 0
        faults = _json.loads(output)["faults"]
        assert faults["recorder.log.append"]["fired"] == 1

    def test_top_text(self):
        code, output = run_cli("top", "--sessions", "2", "--frames", "3",
                               "--steps-per-frame", "8")
        assert code == 0
        assert "frame 0" in output
        assert "queue=" in output and "dedup=" in output
        assert "slo=" in output
        assert "fleet settled:" in output

    def test_top_json(self):
        import json as _json

        code, output = run_cli("top", "--sessions", "2", "--frames", "2",
                               "--steps-per-frame", "8", "--json")
        assert code == 0
        data = _json.loads(output)
        assert data["frames"]
        frame = data["frames"][0]
        assert frame["queue_depth"] >= 0
        assert {m["name"] for m in frame["members"]} == {"s00", "s01"}
        assert "slo_standing" in frame
        assert "final" in data

    def test_serve_exports(self, tmp_path):
        import json as _json

        trace = str(tmp_path / "trace.json")
        prom = str(tmp_path / "metrics.prom")
        code, output = run_cli(
            "serve", "--sessions", "2", "--trace-out", trace,
            "--prom-out", prom)
        assert code == 0
        assert "slo standings" in output
        assert "flight journal:" in output
        document = _json.loads(open(trace).read())
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        body = open(prom).read()
        assert "# TYPE dejaview_checkpoint_count counter" in body
        assert 'fleet_seed="0"' in body

    def test_replay_clean_text(self):
        code, output = run_cli("replay", "web", "--units", "4")
        assert code == 0
        assert "replay clean:" in output
        assert "anchors [1, 2]" in output

    def test_replay_from_checkpoint_verify(self):
        code, output = run_cli("replay", "web", "--units", "4",
                               "--from-checkpoint", "2", "--verify")
        assert code == 0
        assert "fast-forwarded to checkpoint 2 anchor" in output

    def test_replay_faulted_json(self, tmp_path):
        import json as _json

        report_path = str(tmp_path / "replay.json")
        code, output = run_cli(
            "replay", "web", "--units", "4", "--faults", self.CRASH,
            "--report-out", report_path, "--json")
        assert code == 0
        data = _json.loads(output)
        assert data["verified"] is True
        assert data["crash"] and data["recovery_ok"] is True
        report = data["report"]
        assert report["stopped_at_recover"] is True
        assert report["replay_crashed"] is True
        assert report["crash_site"] == "storage.cas.page_append"
        assert _json.loads(open(report_path).read()) == data

    def test_replay_log_out(self, tmp_path):
        from repro.replay import assert_replays_clean

        log_path = str(tmp_path / "events.bin")
        code, _ = run_cli("replay", "gzip", "--units", "4",
                          "--log-out", log_path)
        assert code == 0
        assert_replays_clean(open(log_path, "rb").read())

    def test_fleet_stats_slo_json(self):
        import json as _json

        code, output = run_cli(
            "fleet-stats", "--sessions", "2", "--json",
            "--slo", "dedup_ratio>=0.99;crash_count<=0")
        assert code == 0
        data = _json.loads(output)
        verdicts = {v["name"]: v for v in data["slo"]["verdicts"]}
        assert verdicts["dedup_ratio"]["ok"] is False
        assert verdicts["crash_count"]["ok"] is True
