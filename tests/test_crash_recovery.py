"""Crash-point sweep: crash at every registered failpoint, reopen, recover.

For each site in :func:`registered_failpoints` the sweep runs the scripted
desktop workload with a one-shot crash armed mid-drive, catches the
simulated host death, then reopens the same recorded state and runs
:meth:`DejaView.recover`.  Afterwards the surviving record must be fully
usable: the checkpoint chain verifies, playback completes end-to-end,
search answers without errors and returns a subset of the clean run's
results, and *Take me back* still revives.

An observer run (an empty :class:`FaultPlan` counts hits but never fires)
establishes per-site hit counts first, so each crash is armed at the
midpoint of the site's activity — inside the drive, not during session
construction.
"""

import warnings
import zlib

import pytest

from repro import Query
from repro.checkpoint.gc import ThinningPolicy
from repro.checkpoint.verify import verify_chain
from repro.common.units import seconds
from repro.common.faults import (
    FAILPOINTS,
    FaultPlan,
    FaultSpecError,
    InjectedCrash,
    InjectedFault,
    NULL_FAULTS,
    registered_failpoints,
    resolve_faults,
)

from tests.faulthelpers import (
    WORDS,
    assert_recovered_run_replays,
    build_session,
    drive,
    record_fault_matrix,
    summarize,
    thin_drive,
    thin_replay_driver_factory,
)

UNITS = 8

#: Failpoints that only a *fleet* exercise reaches (branch forks run
#: through :meth:`Fleet.revive`, never the solo desktop driver).  The
#: solo sweep below excludes them — its coverage assert would otherwise
#: demand the impossible — and :class:`TestBranchForkCrash` gives each a
#: dedicated row with the same recover-and-verify contract.
FLEET_ONLY_SITES = ("revive.branch.mount", "revive.branch.refs")

#: Failpoints inside the checkpoint-thinning pass.  The sweep driver
#: records but never thins, so these too get dedicated rows
#: (:class:`TestThinCrash`) instead of sweep parametrizations.
THIN_SITES = ("thin.drop_refs", "thin.tombstone")

SOLO_SITES = [site for site in registered_failpoints()
              if site not in FLEET_ONLY_SITES + THIN_SITES]


@pytest.fixture(scope="module")
def clean_run():
    """One clean drive observed by an empty fault plan.

    Yields per-site hit counts split into construction-time and
    drive-time, plus the clean record's comparable facts and per-word
    search result counts.
    """
    observer = FaultPlan()
    session, dejaview = build_session(fault_plan=observer)
    pre_drive = dict(observer.hits)
    drive(session, dejaview, units=UNITS)
    facts = summarize(session, dejaview)
    facts["search_counts"] = {
        word: len(dejaview.search(Query.keywords(word), render=False))
        for word in WORDS
    }
    return {
        "pre_drive": pre_drive,
        "total": dict(observer.hits),
        "facts": facts,
    }


class TestCrashSweep:
    @pytest.mark.parametrize("site", SOLO_SITES)
    def test_crash_then_recover(self, site, clean_run):
        pre = clean_run["pre_drive"].get(site, 0)
        total = clean_run["total"].get(site, 0)
        # Coverage guarantee: the driver must actually reach every
        # registered site during the drive, else the sweep proves nothing.
        assert total > pre, \
            "failpoint %s is never hit by the sweep driver" % site

        # Arm the crash at the midpoint of the site's drive-time activity
        # (strictly after construction, so the DejaView reference exists
        # to reopen).
        after = pre + max(1, (total - pre) // 2)
        plan = FaultPlan()
        rule = plan.add(site, mode="crash", after=after)

        holder = {}
        with pytest.raises(InjectedCrash):
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview, units=UNITS)
        assert rule.fired == 1
        session = holder["session"]
        dejaview = holder["dejaview"]

        # Reopen: recover every stream, then demand full usability.
        report = dejaview.recover()
        record_fault_matrix(plan)
        assert report["ok"], report

        chain = verify_chain(dejaview.storage, session.fsstore)
        assert chain.ok, chain.issues

        record = dejaview.display_record()
        engine = dejaview.playback_engine()
        framebuffer, _stats = engine.play(record.start_us, record.end_us,
                                          fastest=True)
        assert framebuffer is not None

        clean_counts = clean_run["facts"]["search_counts"]
        for word in WORDS:
            results = dejaview.search(Query.keywords(word), render=False)
            assert len(results) <= clean_counts[word]

        if dejaview.engine.history:
            revived = dejaview.take_me_back(session.clock.now_us)
            assert revived.container is not session.container

        # Replay-divergence oracle: re-run the script under a fresh copy
        # of the plan.  The replay crashes at the same site, and every
        # event before the recovery barrier re-derives bit-identically.
        replay_report = assert_recovered_run_replays(session, plan,
                                                     units=UNITS)
        assert replay_report.replay_crashed
        assert replay_report.crash_site == site


class TestReviveFallback:
    def test_torn_newest_checkpoint_falls_back(self):
        session, dejaview = build_session()
        drive(session, dejaview, units=4)
        history = dejaview.engine.history
        assert len(history) >= 2
        newest = history[-1].checkpoint_id
        # Tear the newest blob mid-frame, as a crash would.
        blob = dejaview.storage._blobs[newest]
        dejaview.storage._blobs[newest] = blob[:max(1, len(blob) // 3)]
        fallbacks = dejaview.telemetry.metrics.counter("revive.fallbacks")
        before = fallbacks.value
        revived = dejaview.take_me_back(session.clock.now_us)
        assert revived.container is not session.container
        assert fallbacks.value > before

    def test_blob_ok_flags_torn_and_corrupt(self):
        session, dejaview = build_session()
        drive(session, dejaview, units=2)
        image_id = dejaview.engine.history[-1].checkpoint_id
        ok, _reason = dejaview.storage.blob_ok(image_id)
        assert ok
        blob = dejaview.storage._blobs[image_id]
        dejaview.storage._blobs[image_id] = blob[:len(blob) // 2]
        ok, reason = dejaview.storage.blob_ok(image_id)
        assert not ok and reason
        # Bit-flip corruption (full length, bad checksum) is also caught.
        flipped = bytearray(blob)
        flipped[0] ^= 0xFF
        dejaview.storage._blobs[image_id] = bytes(flipped)
        ok, reason = dejaview.storage.blob_ok(image_id)
        assert not ok and "checksum" in reason


class TestCasCrashSemantics:
    """Targeted checks for the two page-store failpoints: the on-disk
    wreckage is exactly as advertised, and recovery cleans precisely it."""

    def _crash_at(self, site, clean_run):
        pre = clean_run["pre_drive"].get(site, 0)
        total = clean_run["total"].get(site, 0)
        after = pre + max(1, (total - pre) // 2)
        plan = FaultPlan()
        plan.add(site, mode="crash", after=after)
        holder = {}
        with pytest.raises(InjectedCrash):
            session, dejaview = build_session(fault_plan=plan)
            holder["session"] = session
            holder["dejaview"] = dejaview
            drive(session, dejaview, units=UNITS)
        return holder["session"], holder["dejaview"]

    def test_page_append_crash_reclaims_uncommitted_page(self, clean_run):
        session, dejaview = self._crash_at("storage.cas.page_append",
                                           clean_run)
        storage = dejaview.storage
        # The in-flight page is torn: present in the payload map but
        # never committed (no size entry, no refcount).
        torn = [digest for digest in storage._cas
                if digest not in storage._cas_sizes]
        assert torn, "page-append crash left no torn payload"
        report = dejaview.recover()
        assert report["ok"], report
        assert report["storage"]["cas_pages_dropped"] >= 1
        # Nothing uncommitted or unreferenced survives.
        assert all(digest in storage._cas_sizes for digest in storage._cas)
        assert all(refs >= 1 for refs in storage._cas_refs.values())
        assert verify_chain(storage, session.fsstore).ok
        if dejaview.engine.history:
            revived = dejaview.take_me_back(session.clock.now_us)
            assert revived.container is not session.container

    def test_manifest_commit_crash_strands_then_reclaims_orphans(
            self, clean_run):
        session, dejaview = self._crash_at("storage.cas.manifest_commit",
                                           clean_run)
        storage = dejaview.storage
        # Every page of the in-flight store committed, but the manifest
        # never did: the pages sit in the CAS with zero references.
        orphans = [digest for digest, refs in storage._cas_refs.items()
                   if refs == 0]
        assert orphans, "manifest-commit crash left no orphaned pages"
        report = dejaview.recover()
        assert report["ok"], report
        assert report["storage"]["cas_orphans_reclaimed"] >= len(orphans)
        assert all(refs >= 1 for refs in storage._cas_refs.values())
        for digest in orphans:
            assert storage.cas_page(digest) is None
        assert verify_chain(storage, session.fsstore).ok
        if dejaview.engine.history:
            revived = dejaview.take_me_back(session.clock.now_us)
            assert revived.container is not session.container

    def test_dangling_manifest_dropped_on_recover(self):
        """A manifest whose digest no longer resolves (lost page) cannot
        revive; recover drops the image rather than leaving a landmine."""
        session, dejaview = build_session()
        drive(session, dejaview, units=4)
        storage = dejaview.storage
        victim = dejaview.engine.history[-1].checkpoint_id
        digests = storage.manifest_digests(victim)
        assert digests, "driver checkpoints should carry pages"
        # Lose one referenced payload outright (bit-rot / lost sector).
        del storage._cas[digests[0]]
        report = storage.recover(fsstore=session.fsstore)
        assert victim in report["manifest_dropped"] \
            or victim in report["chain_dropped"]
        assert victim not in storage
        assert report["verify_ok"]

    def test_corrupt_cas_payload_dropped_and_manifest_pruned(self):
        session, dejaview = build_session()
        drive(session, dejaview, units=4)
        storage = dejaview.storage
        victim = dejaview.engine.history[-1].checkpoint_id
        digests = storage.manifest_digests(victim)
        assert digests
        # Flip a byte: the payload no longer hashes to its address.
        payload = bytearray(storage._cas[digests[0]])
        payload[0] ^= 0xFF
        storage._cas[digests[0]] = bytes(payload)
        report = storage.recover(fsstore=session.fsstore)
        assert report["cas_pages_dropped"] >= 1
        assert victim not in storage
        assert report["verify_ok"]


class TestFaultPlanUnit:
    def test_registered_failpoints_sorted_and_documented(self):
        sites = registered_failpoints()
        assert sites == sorted(sites)
        assert all(FAILPOINTS[site] for site in sites)

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "lfs.append.mid_block:after=3;"
            "recorder.log.append:mode=io,p=0.25,repeat"
        )
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert (first.site, first.mode, first.after) == \
            ("lfs.append.mid_block", "crash", 3)
        assert (second.site, second.mode, second.once) == \
            ("recorder.log.append", "io", False)
        assert second.probability == 0.25

    def test_parse_rejects_unknown_site(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("no.such.site")

    def test_parse_rejects_unknown_option(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("lfs.append.mid_block:bogus=1")

    def test_rule_validation(self):
        plan = FaultPlan()
        with pytest.raises(FaultSpecError):
            plan.add("lfs.append.mid_block", mode="explode")
        with pytest.raises(FaultSpecError):
            plan.add("lfs.append.mid_block", after=0)
        with pytest.raises(FaultSpecError):
            plan.add("lfs.append.mid_block", probability=0.0)

    def test_after_counts_eligible_hits(self):
        plan = FaultPlan()
        plan.add("recorder.log.append", mode="io", after=3)
        plan.check("recorder.log.append")
        plan.check("recorder.log.append")
        with pytest.raises(InjectedFault):
            plan.check("recorder.log.append")
        # once=True: no further fires.
        plan.check("recorder.log.append")
        assert plan.fired("recorder.log.append") == 1
        assert plan.hits["recorder.log.append"] == 4

    def test_probability_is_deterministic_under_seed(self):
        def fire_pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.add("recorder.log.append", mode="io", probability=0.5,
                     once=False)
            pattern = []
            for _ in range(32):
                try:
                    plan.check("recorder.log.append")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert any(fire_pattern(7))
        assert not all(fire_pattern(7))

    def test_null_plan_is_inert(self):
        assert resolve_faults(None) is NULL_FAULTS
        assert not NULL_FAULTS.active
        assert not NULL_FAULTS
        assert NULL_FAULTS.check("storage.store.pre_commit") is None
        assert NULL_FAULTS.hit_snapshot() == {}

    def test_hit_snapshot_covers_every_site(self):
        plan = FaultPlan()
        plan.check("lfs.append.mid_block")
        snap = plan.hit_snapshot()
        assert sorted(snap) == registered_failpoints()
        assert snap["lfs.append.mid_block"] == {"hits": 1, "fired": 0}
        assert snap["storage.store.pre_commit"] == {"hits": 0, "fired": 0}

    def test_injected_crash_escapes_blanket_except(self):
        plan = FaultPlan()
        plan.add("storage.store.pre_commit", mode="crash")
        with pytest.raises(InjectedCrash):
            try:
                plan.check("storage.store.pre_commit")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedCrash must not be an Exception")


class TestDeprecatedAlias:
    def test_memory_error_alias_warns_and_resolves(self):
        from repro.common import errors

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(DeprecationWarning):
                errors.MemoryError_  # noqa: B018
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert errors.MemoryError_ is errors.VirtualMemoryError

    def test_unknown_attribute_still_raises(self):
        from repro.common import errors

        with pytest.raises(AttributeError):
            errors.NoSuchThing  # noqa: B018


class TestFleetSharedCasCrash:
    """One fleet member crashing at each storage failpoint: its
    owner-scoped recovery reaches a verified fixpoint, and the peer
    sharing the page store stays fully revivable — no shared page is ever
    reclaimed out from under a healthy owner."""

    # (site, armed hit) — pre_commit fires once per store, the CAS sites
    # fire per page, so the page-level sites need a deeper hit count to
    # land mid-checkpoint rather than on the first page.
    CASES = [
        ("storage.store.pre_commit", 2),
        ("storage.cas.page_append", 40),
        ("storage.cas.manifest_commit", 2),
    ]

    def _fleet_crash(self, site, after, seed=5):
        from repro.server import Fleet

        plan = FaultPlan()
        plan.add(site, mode="crash", after=after)
        fleet = Fleet(seed=seed)
        # Heavy weight: the victim runs ahead, so it is the owner that
        # physically commits the shared pages (guaranteeing its CAS
        # failpoints actually fire) — and the peer's later identical
        # stores *reference pages the victim committed*, which is exactly
        # the state its recovery must never reclaim.
        fleet.admit("victim", "web", units=3, fault_plan=plan, weight=16)
        fleet.admit("peer", "web", units=3)
        fleet.run_to_completion()
        return fleet

    @pytest.mark.parametrize("site,after", CASES)
    def test_owner_scoped_recovery_spares_the_peer(self, site, after):
        fleet = self._fleet_crash(site, after)
        victim = fleet.member("victim")
        peer = fleet.member("peer")
        assert victim.state == "crashed"
        assert victim.crash_site == site
        assert peer.state == "done"

        peer_storage = peer.dejaview.storage
        peer_manifests = {
            image_id: peer_storage.manifest_digests(image_id)
            for image_id in peer_storage.stored_ids()
        }
        peer_totals = (peer_storage.total_uncompressed_bytes,
                       peer_storage.total_compressed_bytes)

        report = fleet.recover_session("victim")
        assert report["storage"]["verify_ok"], report["storage"]

        # Fixpoint: recovering again drops nothing further.
        again = fleet.recover_session("victim")["storage"]
        assert again["verify_ok"]
        assert not again["torn_dropped"] and not again["chain_dropped"]
        assert again["cas_orphans_reclaimed"] == 0

        # The peer's view of the shared store is untouched: manifests,
        # payload resolution, and its owner-logical accounting.
        assert {
            image_id: peer_storage.manifest_digests(image_id)
            for image_id in peer_storage.stored_ids()
        } == peer_manifests
        for digests in peer_manifests.values():
            for digest in digests:
                assert fleet.cas.pages.get(digest) is not None
        assert (peer_storage.total_uncompressed_bytes,
                peer_storage.total_compressed_bytes) == peer_totals

        # Global refcounts are exactly the sum over owners.
        totals = {}
        for refs in fleet.cas.owner_refs.values():
            for digest, count in refs.items():
                totals[digest] = totals.get(digest, 0) + count
        live = {digest: count
                for digest, count in fleet.cas.refs.items() if count}
        assert totals == live

        # The peer stays end-to-end usable.
        assert verify_chain(peer_storage, peer.session.fsstore).ok
        revived = peer.dejaview.take_me_back(peer.session.clock.now_us)
        assert revived.container.live_processes()

    def test_victim_survivors_stay_revivable(self):
        """Whatever checkpoints the victim stored before the crash remain
        revivable after recovery (the fallback chain holds)."""
        fleet = self._fleet_crash("storage.cas.manifest_commit", after=2)
        victim = fleet.member("victim")
        fleet.recover_session("victim")
        storage = victim.dejaview.storage
        if victim.dejaview.engine.history and len(storage):
            revived = victim.dejaview.take_me_back(
                victim.session.clock.now_us)
            assert revived.container.live_processes()


class TestBranchForkCrash:
    """The two fleet-only failpoints: a branch killed mid-fork — during
    the union mount (``revive.branch.mount``) or halfway through pinning
    the source manifests (``revive.branch.refs``) — must be reclaimed by
    :meth:`Fleet.recover_session` without orphaning CAS refs and without
    perturbing the parent or a healthy sibling branch."""

    def _storm(self, seed=9):
        from repro.server import Fleet

        fleet = Fleet(seed=seed)
        fleet.admit("p0", "web", units=6)
        fleet.run_to_completion()
        source = fleet.member("p0").dejaview.engine.history[-1]
        fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                     name="sib", scenario="make", units=2)
        fleet.run_to_completion()
        return fleet, source

    def _cas_snapshot(self, fleet):
        return (
            {digest: count for digest, count in fleet.cas.refs.items()
             if count},
            {owner: dict(refs)
             for owner, refs in fleet.cas.owner_refs.items() if refs},
            set(fleet.cas.pages),
        )

    @pytest.mark.parametrize("site", FLEET_ONLY_SITES)
    def test_fork_crash_reclaims_without_touching_siblings(self, site):
        from repro.server.fleet import CRASHED

        fleet, source = self._storm()
        parent = fleet.member("p0")
        sibling = fleet.member("sib")
        parent_refs = dict(fleet.cas.owner_refs.get("p0", {}))
        sibling_refs = dict(fleet.cas.owner_refs.get("sib", {}))

        plan = FaultPlan()
        rule = plan.add(site, mode="crash")
        with pytest.raises(InjectedCrash):
            fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                         name="doomed", scenario="untar", units=2,
                         fault_plan=plan)
        record_fault_matrix(plan)
        assert rule.fired == 1
        doomed = fleet.member("doomed")
        assert doomed.state == CRASHED
        assert doomed.crash_site == site

        report = fleet.recover_session("doomed")
        assert report["ok"], report
        # No orphaned refs under the dead branch's owner.
        assert not fleet.cas.owner_refs.get("doomed")

        # fsck fixpoint: a second recovery finds nothing left to fix.
        snapshot = self._cas_snapshot(fleet)
        again = fleet.recover_session("doomed")
        assert again["ok"], again
        assert self._cas_snapshot(fleet) == snapshot

        # Parent and sibling: refcounts byte-identical, chains verify,
        # and both still revive.
        assert dict(fleet.cas.owner_refs.get("p0", {})) == parent_refs
        assert dict(fleet.cas.owner_refs.get("sib", {})) == sibling_refs
        assert verify_chain(parent.dejaview.storage,
                            parent.session.fsstore).ok
        assert verify_chain(sibling.dejaview.storage,
                            sibling.session.fsstore).ok
        revived = parent.dejaview.take_me_back(parent.session.clock.now_us)
        assert revived.container.live_processes()


class TestThinCrash:
    """Dedicated rows for the two thinning failpoints: a crash while
    committing a THINNED tombstone (``thin.tombstone``) or halfway
    through dropping the thinned image's page refs (``thin.drop_refs``)
    must recover to a verified fixpoint, a re-run of the same pass must
    converge on the same survivors as a crash-free pass, and every
    tombstoned instant must still replay-revive afterwards."""

    UNITS = 12
    POLICY = ThinningPolicy(recent_window_us=seconds(2),
                            tiers=((None, 2),))

    def _record(self, fault_plan=None):
        session, dejaview = build_session(fault_plan=fault_plan)
        thin_drive(session, dejaview, units=self.UNITS)
        return session, dejaview

    @pytest.fixture(scope="class")
    def control(self):
        """A crash-free pass over the identical timeline: the thinned
        set every faulted run must converge to."""
        _session, dejaview = self._record()
        report = dejaview.thin_checkpoints(policy=self.POLICY)
        assert report.thinned_images, \
            "thin_drive produced no thinnable instants"
        return report

    @pytest.mark.parametrize("site", THIN_SITES)
    def test_crash_mid_thin_recovers_and_converges(self, site, control):
        plan = FaultPlan()
        rule = plan.add(site, mode="crash")
        session, dejaview = self._record(fault_plan=plan)
        history_ids = [r.checkpoint_id for r in dejaview.engine.history]
        with pytest.raises(InjectedCrash):
            dejaview.thin_checkpoints(policy=self.POLICY)
        record_fault_matrix(plan)
        assert rule.fired == 1
        storage = dejaview.storage

        # Site semantics: the tombstone commit is the atom.  A crash
        # *before* it (thin.tombstone fires on the first target) leaves
        # the image fully intact and no tombstone; a crash after it
        # (thin.drop_refs, mid-unref) leaves exactly one tombstone with
        # the image bytes gone.
        if site == "thin.tombstone":
            assert not storage.thinned_ids()
        else:
            assert len(storage.thinned_ids()) == 1
            (victim,) = storage.thinned_ids()
            assert victim == control.thinned_images[0]
            assert victim not in storage

        report = dejaview.recover()
        assert report["ok"], report
        # Fixpoint: recovering again finds nothing further to fix.
        again = dejaview.recover()
        assert again["ok"]
        assert not again["storage"]["torn_dropped"]
        assert not again["storage"]["chain_dropped"]
        assert again["storage"]["cas_orphans_reclaimed"] == 0
        assert not again["storage"].get("tombstones_dropped", ())

        # The timeline survives whole: every instant is stored or
        # tombstoned, never silently gone.
        assert [r.checkpoint_id for r in dejaview.engine.history] \
            == history_ids
        for checkpoint_id in history_ids:
            assert checkpoint_id in storage \
                or storage.is_thinned(checkpoint_id)
        chain = verify_chain(storage, session.fsstore)
        assert chain.ok, chain.issues

        # The interrupted pass completes idempotently and converges on
        # the crash-free survivors (tier positions count the full
        # timeline, tombstones included).
        dejaview.thin_checkpoints(policy=self.POLICY)
        assert tuple(sorted(storage.thinned_ids())) \
            == tuple(sorted(control.thinned_images))
        rerun = dejaview.thin_checkpoints(policy=self.POLICY)
        assert not rerun.thinned_images

        # The clean recording replays end-to-end (the crash hit the
        # thinning pass, not the recorded timeline), and a thinned
        # instant still revives bit-identically through replay.
        from repro.replay import assert_replays_clean

        factory = thin_replay_driver_factory(units=self.UNITS)
        assert_replays_clean(session.replay.getvalue(),
                             driver=factory(None, {}))
        dejaview.reviver.replay_driver_factory = factory
        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dejaview.engine.history}
        target = control.thinned_images[-1]
        fallbacks = dejaview.telemetry.metrics.counter("revive.fallbacks")
        before = fallbacks.value
        revived = dejaview.take_me_back(timestamps[target])
        assert revived.checkpoint_id == target
        assert revived.replayed
        assert fallbacks.value == before
