"""Unit tests for the checkpoint policy (section 5.1.3)."""

import pytest

from repro.common.errors import PolicyError
from repro.checkpoint.policy import (
    SKIP_CUSTOM,
    SKIP_FULLSCREEN,
    SKIP_LOW_DISPLAY,
    SKIP_NO_DISPLAY,
    SKIP_RATE_LIMIT,
    SKIP_TEXT_RATE,
    TAKE_DISPLAY,
    TAKE_TEXT_EDIT,
    CheckpointPolicy,
    PolicyConfig,
    PolicyContext,
)
from repro.display.driver import DisplayActivity


def activity(commands=10, changed=None, screen=100_000):
    act = DisplayActivity(screen_area=screen)
    act.command_count = commands
    act.changed_area = changed if changed is not None else screen
    return act


def ctx(now_s=0.0, act=None, keyboard=False, mouse=False, video=False,
        saver=False, load=0.0):
    return PolicyContext(
        now_us=int(now_s * 1_000_000),
        display_activity=act,
        keyboard_input=keyboard,
        mouse_input=mouse,
        fullscreen_video=video,
        screensaver=saver,
        system_load=load,
    )


class TestBuiltinRules:
    def test_big_display_change_triggers_checkpoint(self):
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity()))
        assert decision.take
        assert decision.reason == TAKE_DISPLAY

    def test_rate_limited_to_once_per_second(self):
        policy = CheckpointPolicy()
        assert policy.decide(ctx(0.0, activity()))
        assert policy.decide(ctx(0.5, activity())).reason == SKIP_RATE_LIMIT
        assert policy.decide(ctx(1.1, activity())).take

    def test_no_display_activity_skips(self):
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=None))
        assert not decision.take
        assert decision.reason == SKIP_NO_DISPLAY
        decision = policy.decide(ctx(act=activity(commands=0, changed=0)))
        assert decision.reason == SKIP_NO_DISPLAY

    def test_low_display_activity_skips(self):
        """Blinking cursor / clock updates: below 5 % of the screen."""
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity(changed=1000)))  # 1 %
        assert not decision.take
        assert decision.reason == SKIP_LOW_DISPLAY

    def test_threshold_boundary(self):
        policy = CheckpointPolicy(PolicyConfig(low_activity_fraction=0.05))
        assert policy.decide(ctx(act=activity(changed=5000))).take  # exactly 5 %

    def test_keyboard_overrides_low_activity(self):
        """Text editing checkpoints despite tiny display changes."""
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity(changed=100), keyboard=True))
        assert decision.take
        assert decision.reason == TAKE_TEXT_EDIT

    def test_text_edit_rate_is_ten_seconds(self):
        policy = CheckpointPolicy()
        assert policy.decide(ctx(0, activity(changed=100), keyboard=True)).take
        d = policy.decide(ctx(5, activity(changed=100), keyboard=True))
        assert d.reason == SKIP_TEXT_RATE
        assert policy.decide(ctx(11, activity(changed=100), keyboard=True)).take

    def test_keyboard_with_no_display_still_checkpoints(self):
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=None, keyboard=True))
        assert decision.take
        assert decision.reason == TAKE_TEXT_EDIT

    def test_fullscreen_video_skips(self):
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity(), video=True))
        assert not decision.take
        assert decision.reason == SKIP_FULLSCREEN

    def test_screensaver_skips(self):
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity(), saver=True))
        assert decision.reason == SKIP_FULLSCREEN

    def test_fullscreen_with_user_input_checkpoints(self):
        """Input during full-screen video re-enables checkpointing."""
        policy = CheckpointPolicy()
        decision = policy.decide(ctx(act=activity(), video=True, mouse=True))
        assert decision.take

    def test_fullscreen_skip_disabled_by_config(self):
        policy = CheckpointPolicy(PolicyConfig(skip_fullscreen_apps=False))
        assert policy.decide(ctx(act=activity(), video=True)).take


class TestCustomRules:
    def test_load_rule_vetoes(self):
        """The paper's example: skip when system load is high."""
        policy = CheckpointPolicy()
        policy.add_rule(lambda c: False if c.system_load > 0.9 else None)
        decision = policy.decide(ctx(act=activity(), load=0.95))
        assert not decision.take
        assert decision.reason == SKIP_CUSTOM
        assert policy.decide(ctx(1.5, act=activity(), load=0.1)).take

    def test_non_callable_rule_rejected(self):
        with pytest.raises(PolicyError):
            CheckpointPolicy().add_rule("rule")


class TestStats:
    def test_stats_track_reasons(self):
        policy = CheckpointPolicy()
        policy.decide(ctx(0, activity()))
        policy.decide(ctx(0.2, activity()))
        policy.decide(ctx(0.4, act=None))
        policy.decide(ctx(0.6, activity(changed=10)))
        stats = policy.stats
        assert stats.total == 4
        assert stats.total_taken == 1
        assert stats.skipped[SKIP_RATE_LIMIT] == 1
        assert stats.skipped[SKIP_NO_DISPLAY] == 1
        assert stats.skipped[SKIP_LOW_DISPLAY] == 1

    def test_fractions(self):
        policy = CheckpointPolicy()
        policy.decide(ctx(0, activity()))
        policy.decide(ctx(0.1, act=None))
        assert policy.stats.taken_fraction() == pytest.approx(0.5)
        assert policy.stats.skip_fraction(SKIP_NO_DISPLAY) == 1.0

    def test_empty_stats(self):
        policy = CheckpointPolicy()
        assert policy.stats.taken_fraction() == 0.0
        assert policy.stats.skip_fraction(SKIP_NO_DISPLAY) == 0.0
