"""Tests for the observability layer: metrics, tracing, and the
guarantee that telemetry never changes simulated behavior."""

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.common.clock import VirtualClock
from repro.common.telemetry import (
    NULL_TELEMETRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Telemetry,
    get_telemetry,
    percentile,
    resolve_telemetry,
    set_telemetry,
)
from repro.common.tracing import NullTracer, Tracer


class TestPercentiles:
    def test_nearest_rank_on_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_distributions(self):
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7
        assert percentile([1, 2], 50) == 1
        assert percentile([1, 2], 95) == 2

    def test_empty(self):
        assert percentile([], 50) is None

    def test_histogram_summary_known_distribution(self):
        h = Histogram("t")
        for v in range(1, 101):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["sum"] == 5050
        assert s["min"] == 1 and s["max"] == 100
        assert s["mean"] == 50.5
        assert s["p50"] == 50
        assert s["p95"] == 95
        assert s["p99"] == 99

    def test_histogram_order_independent(self):
        h = Histogram("t")
        for v in reversed(range(1, 101)):
            h.observe(v)
        assert h.summary()["p95"] == 95

    def test_histogram_bounded_memory_keeps_totals_exact(self):
        h = Histogram("t", max_samples=100)
        for v in range(1, 1001):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 1000
        assert s["sum"] == sum(range(1, 1001))
        assert s["min"] == 1 and s["max"] == 1000
        assert len(h._values) <= 100


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")
        assert len(reg) == 3

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_between_sessions(self):
        reg = MetricsRegistry()
        handle = reg.counter("c")
        handle.inc(5)
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot()["counters"] == {}
        # A fresh handle after reset starts from zero.
        assert reg.counter("c").value == 0
        assert reg.counter("c") is not handle

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        counter = reg.counter("c")
        counter.inc(100)
        reg.histogram("h").observe(1)
        reg.gauge("g").set(9)
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert counter.value == 0
        assert len(reg) == 0

    def test_null_instruments_are_shared(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.histogram("h")


class TestTracer:
    def test_span_nesting_and_ordering(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.advance_us(10)
            with tracer.span("first") as first:
                clock.advance_us(3)
            with tracer.span("second") as second:
                clock.advance_us(4)
            clock.advance_us(1)
        assert outer.children == [first, second]
        assert first.parent is outer and second.parent is outer
        assert outer.virtual_us == 18
        assert first.virtual_us == 3
        assert second.virtual_us == 4
        assert first.start_virtual_us < second.start_virtual_us
        assert list(tracer.roots) == [outer]
        assert tracer.span_count == 3

    def test_current_tracks_innermost(self):
        tracer = Tracer(VirtualClock())
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_wall_clock_stamps(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("w") as span:
            pass
        assert span.wall_ns >= 0
        assert span.end_wall_ns >= span.start_wall_ns

    def test_span_attributes_and_to_dict(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("op", kind="test") as span:
            clock.advance_us(2)
            span.set("pages", 7)
        record = span.to_dict()
        assert record["name"] == "op"
        assert record["virtual_us"] == 2
        assert record["attributes"] == {"kind": "test", "pages": 7}

    def test_roots_bounded(self):
        tracer = Tracer(VirtualClock(), keep=4)
        for i in range(10):
            with tracer.span("s%d" % i):
                pass
        assert len(tracer.roots) == 4
        assert tracer.span_count == 10
        assert tracer.snapshot(limit=2)["retained_roots"] == 4

    def test_registry_receives_span_histograms(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        tracer = Tracer(clock, registry=reg)
        with tracer.span("op"):
            clock.advance_us(5)
        summary = reg.histogram("span.op.virtual_us").summary()
        assert summary["count"] == 1 and summary["max"] == 5
        assert reg.histogram("span.op.wall_ns").count == 1

    def test_reset(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.span_count == 0
        assert not tracer.roots

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", k=1) as span:
            span.set("x", 1)
        assert tracer.span_count == 0
        assert span.to_dict() == {}
        assert tracer.snapshot()["recent_roots"] == []


class TestTelemetryHandle:
    def test_enabled_requires_clock(self):
        with pytest.raises(ValueError):
            Telemetry()

    def test_disabled_needs_no_clock(self):
        t = Telemetry(enabled=False)
        assert not t.enabled
        assert t.snapshot()["counters"] == {}

    def test_snapshot_combines_metrics_and_spans(self):
        clock = VirtualClock()
        t = Telemetry(clock)
        t.counter("c").inc()
        with t.span("op"):
            clock.advance_us(1)
        snap = t.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"]["c"] == 1
        assert snap["spans"]["span_count"] == 1
        assert snap["spans"]["recent_roots"][0]["name"] == "op"

    def test_default_is_disabled_and_installable(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert resolve_telemetry(None) is NULL_TELEMETRY
        custom = Telemetry(VirtualClock())
        previous = set_telemetry(custom)
        try:
            assert get_telemetry() is custom
            assert resolve_telemetry(None) is custom
            assert resolve_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY
        finally:
            set_telemetry(previous)
        assert get_telemetry() is NULL_TELEMETRY

    def test_noop_path_adds_zero_counters(self):
        """Regression: instrumented subsystems built without telemetry
        must leave the null registry completely empty."""
        from repro.desktop.dejaview import RecordingConfig
        from repro.workloads import run_scenario

        run = run_scenario(
            "gzip",
            recording=RecordingConfig(telemetry_enabled=False), units=4)
        assert run.dejaview.telemetry is NULL_TELEMETRY
        snap = NULL_TELEMETRY.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"]["span_count"] == 0


class TestEndToEnd:
    def test_disabled_vs_enabled_identical_simulation(self):
        from repro.desktop.dejaview import RecordingConfig
        from repro.workloads import run_scenario

        on = run_scenario("gzip", recording=RecordingConfig(), units=4)
        off = run_scenario(
            "gzip",
            recording=RecordingConfig(telemetry_enabled=False), units=4)
        assert on.duration_us == off.duration_us
        assert on.dejaview.storage_report() == off.dejaview.storage_report()

    def test_session_telemetry_snapshot(self):
        from repro.desktop.dejaview import RecordingConfig
        from repro.workloads import run_scenario

        run = run_scenario("gzip", recording=RecordingConfig(), units=4)
        snap = run.dejaview.telemetry_snapshot(span_limit=2)
        assert snap["counters"]["checkpoint.count"] >= 1
        assert "daemon.mirror_hits" in snap["counters"]
        assert "daemon.mirror_misses" in snap["counters"]
        assert snap["histograms"]["checkpoint.downtime_us"]["count"] >= 1
        assert snap["event_bus"]["published"] >= 1
        assert snap["event_bus"]["delivered"] >= 1
        assert len(snap["spans"]["recent_roots"]) <= 2
        # A tick root carries the checkpoint phase spans beneath it.
        names = set()

        def collect(span):
            names.add(span["name"])
            for child in span.get("children", ()):
                collect(child)

        for root in snap["spans"]["recent_roots"]:
            collect(root)
        assert "tick" in names

    def test_checkpoint_phase_spans(self):
        from repro.desktop.dejaview import RecordingConfig
        from repro.workloads import run_scenario

        run = run_scenario("gzip", recording=RecordingConfig(), units=4)
        hists = run.dejaview.telemetry_snapshot()["histograms"]
        for phase in ("pre_snapshot", "pre_quiesce", "quiesce", "capture",
                      "fs_snapshot", "writeback"):
            assert hists["span.checkpoint.%s.virtual_us" % phase]["count"] >= 1
            assert hists["span.checkpoint.%s.wall_ns" % phase]["count"] >= 1


class TestCliStats:
    def _run(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_stats_text(self):
        code, output = self._run("stats", "gzip", "--units", "4")
        assert code == 0
        assert "checkpoint.count" in output
        assert "event bus:" in output

    def test_stats_json(self):
        code, output = self._run("stats", "gzip", "--units", "4", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["enabled"] is True
        assert data["scenario"] == "gzip"
        assert data["counters"]["checkpoint.count"] >= 1
        assert "index.query_us" in data["histograms"]

    def test_run_json_global_flag_position(self):
        code, output = self._run("--json", "run", "--scenario", "gzip",
                                 "--units", "4")
        assert code == 0
        data = json.loads(output)
        assert data["scenario"] == "gzip"
        assert data["telemetry"]["enabled"] is True
        assert "event_bus" in data["telemetry"]

    def test_run_json_trailing_flag_position(self):
        code, output = self._run("run", "gzip", "--units", "4", "--json")
        assert code == 0
        assert json.loads(output)["checkpoints"] >= 1

    def test_scenario_required(self):
        with pytest.raises(SystemExit):
            self._run("run", "--units", "4")


class TestTracerEdgeCases:
    def test_exception_still_closes_and_stamps_span(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        closed = []
        tracer.sink = closed.append
        with pytest.raises(RuntimeError):
            with tracer.span("failing") as span:
                clock.advance_us(7)
                raise RuntimeError("mid-span")
        assert span.finished
        assert span.virtual_us == 7
        assert span.wall_ns is not None
        assert tracer.current is None  # the active chain unwound
        assert closed == [span]  # the sink still saw the closed span
        assert list(tracer.roots) == [span]

    def test_exception_in_child_restores_parent(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            with pytest.raises(ValueError):
                with tracer.span("inner"):
                    raise ValueError("boom")
            assert tracer.current is outer
            with tracer.span("sibling") as sibling:
                pass
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert sibling.parent is outer

    def test_reentrant_same_name_parentage(self):
        # A recursive operation re-enters the same span name; each level
        # must parent under the previous one, not under a sibling.
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("visit") as a:
            with tracer.span("visit") as b:
                with tracer.span("visit") as c:
                    pass
        assert b.parent is a and c.parent is b
        assert a.children == [b] and b.children == [c]
        assert list(tracer.roots) == [a]

    def test_set_after_close_rejected(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("op") as span:
            span.set("inside", 1)  # fine while open
        with pytest.raises(ValueError, match="closed"):
            span.set("late", 2)
        assert span.attributes == {"inside": 1}

    def test_null_span_set_never_rejects(self):
        tracer = NullTracer()
        with tracer.span("op") as span:
            pass
        span.set("late", 1)  # the null span has no close to enforce


class TestRollupMerge:
    """The count-weighted percentile merge (and its upper-bound twin)."""

    @staticmethod
    def _snapshot(values):
        h = Histogram("checkpoint.downtime_us")
        for v in values:
            h.observe(v)
        return {"counters": {}, "gauges": {},
                "histograms": {"checkpoint.downtime_us": h.summary()}}

    def test_count_weighted_merge_and_upper_bound(self):
        from repro.common.telemetry import rollup_snapshots

        # 9 cool observations vs 1 hot one: the old max-merge let the
        # single hot session define the fleet p95.
        cool = self._snapshot([10] * 9)
        hot = self._snapshot([1000])
        merged = rollup_snapshots({"cool": cool, "hot": hot})
        summary = merged["histograms"]["checkpoint.downtime_us"]
        assert summary["merge"] == "count_weighted"
        assert summary["count"] == 10
        assert summary["sum"] == 9 * 10 + 1000
        assert summary["min"] == 10 and summary["max"] == 1000
        # Count-weighted: (10*9 + 1000*1) / 10 = 109, not 1000.
        assert summary["p95"] == pytest.approx(109.0)
        # The conservative bound is still available, and dominates.
        assert summary["p95_upper"] == 1000
        assert summary["p95"] <= summary["p95_upper"]

    def test_identical_sessions_merge_exactly(self):
        from repro.common.telemetry import rollup_snapshots

        values = list(range(1, 101))
        merged = rollup_snapshots(
            {"a": self._snapshot(values), "b": self._snapshot(values)})
        summary = merged["histograms"]["checkpoint.downtime_us"]
        # Equal distributions: weighted average == each session's value
        # == the true merged percentile; upper bound agrees too.
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99
        assert summary["p50_upper"] == 50
        assert summary["count"] == 200

    def test_empty_and_missing_histograms(self):
        from repro.common.telemetry import rollup_snapshots

        empty = {"counters": {}, "gauges": {},
                 "histograms": {"checkpoint.downtime_us": {
                     "count": 0, "sum": 0, "min": None, "max": None,
                     "mean": None, "p50": None, "p95": None, "p99": None}}}
        merged = rollup_snapshots({"a": self._snapshot([5]), "b": empty})
        summary = merged["histograms"]["checkpoint.downtime_us"]
        assert summary["count"] == 1
        assert summary["p95"] == 5 and summary["p95_upper"] == 5

    def test_counters_and_gauges_still_sum(self):
        from repro.common.telemetry import rollup_snapshots

        merged = rollup_snapshots({
            "a": {"counters": {"x": 2}, "gauges": {"g": 1},
                  "histograms": {}},
            "b": {"counters": {"x": 3, "y": 1}, "gauges": {"g": 2},
                  "histograms": {}},
        })
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["gauges"] == {"g": 3}

    def test_counter_values_is_plain_dict(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(4)
        reg.histogram("h").observe(1)
        assert reg.counter_values() == {"a": 4}
        assert NullRegistry().counter_values() == {}
