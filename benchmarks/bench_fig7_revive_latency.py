"""Figure 7: revive latency (Take me back).

For each scenario, revives the session from five points in time evenly
spaced through the run — first from cold checkpoint storage (uncached),
then with the checkpoint files cached — and reports the time from "Take me
back" to a usable desktop.

Paper shape being reproduced:

* uncached revives cost seconds and are dominated by I/O; cached revives
  are well under a second;
* uncached revive time grows over an application's run as its memory
  footprint grows (most dramatic for web: Firefox's footprint more than
  doubles, and so does its late-run revive time);
* accessing multiple incremental-chain images is not prohibitive.
"""

from benchmarks.conftest import ALL_SCENARIOS, print_table
from repro.common.units import seconds

POINTS = 5


def _revive_series(run):
    dv = run.dejaview
    history = dv.engine.history
    assert history, "scenario recorded no checkpoints"
    indices = [
        max(0, min(len(history) - 1, round(i * (len(history) - 1) / (POINTS - 1))))
        for i in range(POINTS)
    ]
    checkpoint_ids = [history[i].checkpoint_id for i in indices]
    uncached, cached, demand = [], [], []
    for checkpoint_id in checkpoint_ids:
        uncached.append(dv.reviver.revive(checkpoint_id, cached=False))
        cached.append(dv.reviver.revive(checkpoint_id, cached=True))
        demand.append(
            dv.reviver.revive(checkpoint_id, cached=False, demand_paging=True)
        )
    return checkpoint_ids, uncached, cached, demand


def test_fig7_revive_latency(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {name: _revive_series(scenarios.get(name))
                 for name in ALL_SCENARIOS},
        rounds=1, iterations=1,
    )
    rows = []
    for name in ALL_SCENARIOS:
        _ids, uncached, cached, demand = table[name]
        rows.append(
            [name, "uncached"]
            + ["%.3f" % (r.duration_us / 1e6) for r in uncached]
        )
        rows.append(
            [name, "cached"]
            + ["%.3f" % (r.duration_us / 1e6) for r in cached]
        )
        rows.append(
            [name, "demand-paged"]
            + ["%.3f" % (r.duration_us / 1e6) for r in demand]
        )
    print_table(
        "Figure 7 -- revive latency (s) at five points through each run",
        ["scenario", "mode", "t1", "t2", "t3", "t4", "t5"],
        rows,
        note="Paper: uncached revives are I/O-dominated and grow with "
             "application memory usage; cached revives are well under a "
             "second.  (Memory footprints here are scaled ~4x below the "
             "2007 desktops', so absolute times scale accordingly.)  "
             "'demand-paged' implements the paper's suggested improvement: "
             "cold-storage revive latency with lazy page-in.",
    )

    for name in ALL_SCENARIOS:
        _ids, uncached, cached, demand = table[name]
        for u, c, d in zip(uncached, cached, demand):
            # Cached revives are much faster than uncached ones.
            assert c.duration_us < u.duration_us, name
            # "For the cached case, revive times are all well under a
            # second."
            assert c.duration_us < seconds(1), name
            # Both paths restore the same state.
            assert c.pages_restored == u.pages_restored
            # Demand paging: usable faster than the eager cold revive.
            assert d.duration_us <= u.duration_us, name
            assert d.pages_deferred == u.pages_restored, name

    # Web: revive time grows substantially as Firefox's memory grows
    # ("growing by more than a factor of two from the second to the last
    # revive" in the paper).
    _ids, web_uncached, _web_cached, _web_demand = table["web"]
    assert web_uncached[-1].duration_us > 1.6 * web_uncached[1].duration_us

    # Incremental chains: late-run revives touch multiple images without
    # becoming prohibitive ("the cost of accessing multiple incremental
    # checkpoint files ... is not prohibitive").
    for name in ("octave", "web"):
        _ids, uncached, _cached, _demand = table[name]
        assert uncached[-1].images_accessed >= 2, name
        assert uncached[-1].duration_us < seconds(30), name


def test_bench_revive_wallclock(benchmark, scenarios):
    """Wall-clock cost of one cached revive of the make session."""
    run = scenarios.get("make")
    dv = run.dejaview
    last = dv.engine.history[-1].checkpoint_id
    benchmark.pedantic(
        lambda: dv.reviver.revive(last, cached=True), rounds=3, iterations=1
    )
