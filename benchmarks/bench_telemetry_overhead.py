"""Telemetry overhead micro-benchmarks.

The observability layer promises a guarded no-op fast path: when no
telemetry hub is attached, instrumented call sites hold inert singleton
instruments whose methods do nothing, so the disabled cost per event is
one empty bound-method call.  This file verifies that promise two ways:

* micro-benchmarks of the disabled vs enabled instrument operations and
  span contexts (wall-clock, via pytest-benchmark);
* an end-to-end check that running a scenario with telemetry disabled
  vs enabled yields bit-identical simulated results (telemetry only
  *reads* the virtual clock) and stays within a modest wall-clock
  envelope.
"""

import time

from repro.common.clock import VirtualClock
from repro.common.faults import NULL_FAULTS
from repro.common.telemetry import NULL_TELEMETRY, Telemetry
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import run_scenario

OPS = 10_000


def test_bench_disabled_counter(benchmark):
    counter = NULL_TELEMETRY.metrics.counter("bench.disabled")

    def spin():
        for _ in range(OPS):
            counter.inc()

    benchmark(spin)


def test_bench_enabled_counter(benchmark):
    telemetry = Telemetry(VirtualClock())
    counter = telemetry.metrics.counter("bench.enabled")

    def spin():
        for _ in range(OPS):
            counter.inc()

    benchmark(spin)


def test_bench_disabled_span(benchmark):
    def spin():
        for _ in range(OPS):
            with NULL_TELEMETRY.span("bench.span"):
                pass

    benchmark(spin)


def test_bench_enabled_span(benchmark):
    telemetry = Telemetry(VirtualClock())

    def spin():
        for _ in range(OPS):
            with telemetry.span("bench.span"):
                pass

    benchmark(spin)


def test_bench_disabled_failpoint_check(benchmark):
    """Fault checks follow the same no-op contract as telemetry: an
    unconfigured recording binds NULL_FAULTS, whose check() is one empty
    bound-method call per instrumented site."""

    def spin():
        for _ in range(OPS):
            NULL_FAULTS.check("storage.store.pre_commit")

    benchmark(spin)


def test_disabled_failpoint_check_is_cheap():
    """The no-op fault check must cost well under a microsecond per
    call — the same envelope as a disabled telemetry instrument."""
    rounds = 200_000
    check = NULL_FAULTS.check
    start = time.perf_counter_ns()
    for _ in range(rounds):
        check("storage.store.pre_commit")
    elapsed_ns = time.perf_counter_ns() - start
    per_op_ns = elapsed_ns / rounds
    assert per_op_ns < 1000, "no-op fault check took %.0f ns" % per_op_ns
    # The null plan accumulates nothing.
    assert NULL_FAULTS.hit_snapshot() == {}


def test_no_fault_plan_run_is_bit_identical():
    """An unconfigured fault plan changes no recorded behavior: the
    NULL_FAULTS fast path never charges the clock or perturbs state."""
    default = run_scenario("gzip", recording=RecordingConfig(), units=6)
    explicit = run_scenario(
        "gzip", recording=RecordingConfig(fault_plan=None), units=6)
    assert default.duration_us == explicit.duration_us
    assert default.dejaview.storage_report() \
        == explicit.dejaview.storage_report()


def test_disabled_instruments_are_cheap():
    """The no-op path must cost well under a microsecond per operation."""
    counter = NULL_TELEMETRY.metrics.counter("bench.cheap")
    histogram = NULL_TELEMETRY.metrics.histogram("bench.cheap_us")
    rounds = 200_000
    start = time.perf_counter_ns()
    for _ in range(rounds):
        counter.inc()
        histogram.observe(1)
    elapsed_ns = time.perf_counter_ns() - start
    per_op_ns = elapsed_ns / (rounds * 2)
    # Generous bound (an empty method call is ~50-100 ns on CPython);
    # anything near 1 us would mean the fast path grew real work.
    assert per_op_ns < 1000, "no-op instrument op took %.0f ns" % per_op_ns
    # And the null registry must not have accumulated anything.
    assert NULL_TELEMETRY.snapshot()["counters"] == {}


def test_disabled_run_is_bit_identical():
    """Disabling telemetry changes no recorded behavior: same simulated
    duration, same storage accounting, same checkpoint history shape."""
    on = run_scenario("gzip", recording=RecordingConfig(), units=6)
    off = run_scenario(
        "gzip", recording=RecordingConfig(telemetry_enabled=False), units=6)
    assert on.duration_us == off.duration_us
    assert on.dejaview.storage_report() == off.dejaview.storage_report()
    assert ([r.downtime_us for r in on.dejaview.engine.history]
            == [r.downtime_us for r in off.dejaview.engine.history])
    assert off.dejaview.telemetry_snapshot()["enabled"] is False


def test_enabled_overhead_modest():
    """Wall-clock cost of full telemetry on a real scenario run stays
    small (the acceptance bound is <5%; asserting a loose 25% here keeps
    the check robust on noisy CI machines)."""
    # Warm both paths once so import/JIT-ish one-time costs don't skew.
    run_scenario("gzip", recording=RecordingConfig(), units=2)
    run_scenario("gzip",
                 recording=RecordingConfig(telemetry_enabled=False), units=2)

    def wall(config):
        best = None
        for _ in range(3):
            start = time.perf_counter_ns()
            run_scenario("gzip", recording=config, units=6)
            elapsed = time.perf_counter_ns() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    off_ns = wall(RecordingConfig(telemetry_enabled=False))
    on_ns = wall(RecordingConfig())
    assert on_ns < off_ns * 1.25, (
        "telemetry overhead %.1f%%" % ((on_ns / off_ns - 1) * 100))
