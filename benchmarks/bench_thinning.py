"""Checkpoint thinning economics: storage returned vs replay paid.

Thinning trades stored checkpoint bytes for re-execution time: an
age-tiered :class:`ThinningPolicy` drops older instants' bytes behind
THINNED tombstones, and reviving one replays the event log forward from
the nearest surviving anchor (verified bit-identical against the
tombstone fingerprints).  This bench measures both sides of that trade
on a hot-churn recording — the workload shape thinning exists for, where
every checkpoint's pages are superseded by the next — and gates:

* **storage reduction at the default policy** — one pass over a
  four-minute timeline must return at least 40% of the checkpoint
  bytes (measured: ~67%);
* **replay-revive latency is bounded by the tier geometry** — the p95
  virtual replay distance a thinned revive pays must stay within the
  surviving-anchor spacing (``keep_every`` checkpoint intervals): the
  policy, not luck, bounds the revive cost.

Writes ``BENCH_thinning.json`` in the pytest root for CI artifact
upload.
"""

import gc
import json
import os

from benchmarks.conftest import print_table

MB = 1e6

ARTIFACT_SCHEMA = "dejaview.bench_thinning/v1"
ARTIFACT_NAME = "BENCH_thinning.json"

#: Simulated seconds of hot-churn recording for the reduction sweep.
REDUCTION_UNITS = 240
#: Shorter timeline for the revive-latency sweep (each sample replays).
REVIVE_UNITS = 60
REVIVE_KEEP_EVERY = 4
REVIVE_SAMPLES = 10

#: Acceptance gates (ISSUE: checkpoint thinning via replay).
DEFAULT_REDUCTION_GATE = 0.40
#: p95 replay distance <= surviving-anchor spacing.
REVIVE_P95_SPACING_GATE = 1.0


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_thinning.json``."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _record_churn(units):
    """A hot-churn recording: every unit repaints the screen and
    rewrites the same leading heap pages, so each instant's pages are
    fully superseded by the next checkpoint (maximum thinnability)."""
    from repro.common.units import seconds
    from repro.desktop.dejaview import DejaView, RecordingConfig
    from repro.desktop.session import DesktopSession
    from repro.display.commands import Region
    from repro.display.recorder import RecorderConfig
    from repro.replay import RecordingTap

    tap = RecordingTap(meta={"script": "bench_thinning.churn",
                             "units": units})
    session = DesktopSession(width=64, height=48, replay_tap=tap)
    dejaview = DejaView(session, RecordingConfig(
        recorder_config=RecorderConfig(
            screenshot_interval_us=seconds(1))))
    editor = session.launch("editor")
    editor.focus()
    for i in range(units):
        editor.draw_fill(Region(0, 0, session.width, session.height),
                         0xFF0000 + i)
        editor.dirty_memory(4 * 4096, hot=True)
        dejaview.tick()
        session.clock.advance_us(seconds(1))
    return session, dejaview


def _driver_factory(units):
    """Replay driver re-running :func:`_record_churn`'s script (what a
    thinned revive re-executes)."""
    def factory(_meta, capture):
        def driver(tap):
            from repro.common.units import seconds
            from repro.desktop.dejaview import DejaView, RecordingConfig
            from repro.desktop.session import DesktopSession
            from repro.display.commands import Region
            from repro.display.recorder import RecorderConfig

            session = DesktopSession(width=64, height=48, replay_tap=tap)
            dejaview = DejaView(session, RecordingConfig(
                recorder_config=RecorderConfig(
                    screenshot_interval_us=seconds(1))))
            capture["session"] = session
            capture["dejaview"] = dejaview
            editor = session.launch("editor")
            editor.focus()
            for i in range(units):
                editor.draw_fill(
                    Region(0, 0, session.width, session.height),
                    0xFF0000 + i)
                editor.dirty_memory(4 * 4096, hot=True)
                dejaview.tick()
                session.clock.advance_us(seconds(1))
        return driver
    return factory


def _policies():
    from repro.checkpoint.gc import ThinningPolicy
    from repro.common.units import seconds

    rows = [("default", ThinningPolicy())]
    for keep_every in (2, 4, 8):
        rows.append((
            "keep-1-in-%d" % keep_every,
            ThinningPolicy(recent_window_us=seconds(5),
                           tiers=((None, keep_every),)),
        ))
    return rows


def test_storage_reduction_vs_policy(request):
    """Bytes returned per policy over the same hot-churn timeline; the
    acceptance gate rides on the *default* policy's row."""
    rows = []
    for label, policy in _policies():
        gc.disable()
        try:
            _session, dejaview = _record_churn(REDUCTION_UNITS)
        finally:
            gc.enable()
        storage = dejaview.storage
        before = storage.total_uncompressed_bytes
        report = dejaview.thin_checkpoints(policy=policy, compact=True)
        after = storage.total_uncompressed_bytes
        reduction = 1.0 - after / before if before else 0.0
        rows.append({
            "policy": label,
            "checkpoints": len(dejaview.engine.history),
            "thinned": len(report.thinned_images),
            "tombstones": report.tombstones,
            "skipped_required": len(report.skipped_required),
            "bytes_before": before,
            "bytes_after": after,
            "bytes_freed": report.image_bytes_freed,
            "reduction": reduction,
        })
        del dejaview, _session
        gc.collect()

    by_label = {row["policy"]: row for row in rows}
    default = by_label["default"]
    assert default["reduction"] >= DEFAULT_REDUCTION_GATE, (
        "default policy returned %.1f%% of checkpoint bytes, gate %.0f%%"
        % (100 * default["reduction"], 100 * DEFAULT_REDUCTION_GATE))
    # Sanity: more aggressive policies never return less.
    assert by_label["keep-1-in-8"]["reduction"] >= \
        by_label["keep-1-in-2"]["reduction"]

    _update_artifact(request.config.rootpath, "storage_reduction", {
        "units": REDUCTION_UNITS,
        "rows": rows,
        "gates": {"default_reduction_min": DEFAULT_REDUCTION_GATE},
    })
    print_table(
        "thinning: storage reduction vs policy (%d s hot churn)"
        % REDUCTION_UNITS,
        ["policy", "ckpts", "thinned", "before MB", "after MB",
         "reduction"],
        [[row["policy"], row["checkpoints"], row["thinned"],
          "%.2f" % (row["bytes_before"] / MB),
          "%.2f" % (row["bytes_after"] / MB),
          "%.1f%%" % (100 * row["reduction"])]
         for row in rows],
        note="gate: default policy reduction >= %.0f%%"
             % (100 * DEFAULT_REDUCTION_GATE))


def test_revive_latency_vs_replay_distance(request):
    """Replay-revive cost per thinned instant, bucketed by replay
    distance (virtual time between the surviving anchor and the
    target).  The gate: p95 distance stays within the anchor spacing
    the policy promises — ``keep_every`` checkpoint intervals."""
    from repro.checkpoint.gc import ThinningPolicy
    from repro.common.units import seconds

    gc.disable()
    try:
        _session, dejaview = _record_churn(REVIVE_UNITS)
    finally:
        gc.enable()
    policy = ThinningPolicy(recent_window_us=seconds(2),
                            tiers=((None, REVIVE_KEEP_EVERY),))
    report = dejaview.thin_checkpoints(policy=policy, compact=True)
    assert report.thinned_images
    dejaview.reviver.replay_driver_factory = _driver_factory(REVIVE_UNITS)
    timestamps = {r.checkpoint_id: r.timestamp_us
                  for r in dejaview.engine.history}

    thinned = list(report.thinned_images)
    step = max(1, len(thinned) // REVIVE_SAMPLES)
    samples = []
    for image_id in thinned[::step][:REVIVE_SAMPLES]:
        revived = dejaview.take_me_back(timestamps[image_id])
        assert revived.replayed and revived.checkpoint_id == image_id
        samples.append({
            "checkpoint_id": image_id,
            "replay_us": revived.replay_us,
            "duration_us": revived.duration_us,
            "events_verified": revived.replay_events_verified,
        })

    distances = [s["replay_us"] for s in samples]
    durations = [s["duration_us"] for s in samples]
    spacing_us = REVIVE_KEEP_EVERY * seconds(1)
    p95_distance = _percentile(distances, 0.95)
    assert p95_distance <= REVIVE_P95_SPACING_GATE * spacing_us, (
        "thinned-revive p95 replay distance %dus exceeds the anchor "
        "spacing %dus" % (p95_distance, spacing_us))

    by_distance = {}
    for sample in samples:
        bucket = by_distance.setdefault(
            int(sample["replay_us"] // seconds(1)), [])
        bucket.append(sample["duration_us"])
    _update_artifact(request.config.rootpath, "revive_latency", {
        "units": REVIVE_UNITS,
        "keep_every": REVIVE_KEEP_EVERY,
        "samples": samples,
        "replay_p50_us": _percentile(distances, 0.50),
        "replay_p95_us": p95_distance,
        "duration_p50_us": _percentile(durations, 0.50),
        "duration_p95_us": _percentile(durations, 0.95),
        "gates": {"replay_p95_max_us":
                  REVIVE_P95_SPACING_GATE * spacing_us},
    })
    print_table(
        "thinning: replay-revive latency vs distance (keep 1 in %d)"
        % REVIVE_KEEP_EVERY,
        ["distance s", "revives", "duration p50 us", "duration p95 us"],
        [[bucket, len(values),
          _percentile(values, 0.50), _percentile(values, 0.95)]
         for bucket, values in sorted(by_distance.items())],
        note="gate: p95 replay distance <= %d us (anchor spacing)"
             % (REVIVE_P95_SPACING_GATE * spacing_us))
