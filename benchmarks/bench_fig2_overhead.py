"""Figure 2: recording runtime overhead.

For each application scenario, runs the workload with no recording, each
recording component alone (display / checkpoint / index), and full
recording, and reports execution time normalized to the no-recording
baseline — the exact series of Figure 2.

Paper shape being reproduced:

* full-recording overhead below ~20 % everywhere except web;
* web ≈ 2.15x, almost entirely index recording (Firefox generates
  accessibility information on demand);
* display recording ≈ 9 % for web, < 2 % elsewhere; ~0 for video;
* checkpoint recording largest for make (~13 %), < 5 % elsewhere.
"""

from benchmarks.conftest import APP_SCENARIOS, print_table

KINDS = ["none", "display", "checkpoint", "index", "full"]


def _normalized(scenarios, name):
    base = scenarios.get(name, "none").duration_us
    return {
        kind: scenarios.get(name, kind).duration_us / base for kind in KINDS
    }


def test_fig2_recording_overhead(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {name: _normalized(scenarios, name) for name in APP_SCENARIOS},
        rounds=1, iterations=1,
    )
    rows = [
        [name] + ["%.3f" % table[name][kind] for kind in KINDS]
        for name in APP_SCENARIOS
    ]
    print_table(
        "Figure 2 -- recording runtime overhead (normalized execution time)",
        ["scenario"] + KINDS,
        rows,
        note="Paper: web full ~2.15x driven by index recording; all other "
             "scenarios < 1.2x; video ~1.0x.",
    )

    for name in APP_SCENARIOS:
        t = table[name]
        # Recording never speeds a workload up.
        for kind in KINDS[1:]:
            assert t[kind] >= 0.999, (name, kind)
        if name != "web":
            # "In all cases other than web browsing, the overhead was less
            # than 20%."
            assert t["full"] < 1.20, name

    web = table["web"]
    # "For web browsing, the overhead was about 115%."
    assert 1.7 < web["full"] < 2.6
    # "the indexing overhead is 99%, which accounts for almost all of the
    # overhead of full recording."
    assert web["index"] > 1.6
    assert web["index"] - 1 > 0.6 * (web["full"] - 1)
    # "The largest display recording overhead is 9% for the rapid fire web
    # page download."
    assert 1.03 < web["display"] < 1.15
    assert all(table[n]["display"] < web["display"] for n in APP_SCENARIOS
               if n != "web")

    # Video: "the overhead of full recording is less than 1%".
    assert table["video"]["full"] < 1.02

    # Checkpoint: "the largest overhead is for make, which is 13%. For
    # other applications, the checkpoint overhead is less than 5%."
    make_ckpt = table["make"]["checkpoint"]
    assert make_ckpt == max(table[n]["checkpoint"] for n in APP_SCENARIOS)
    assert 1.04 < make_ckpt < 1.25

    # gzip and octave produce little visual output.
    assert table["gzip"]["display"] < 1.01
    assert table["octave"]["display"] < 1.01


def test_bench_display_recording_path(benchmark, scenarios):
    """Wall-clock cost of recording one display command batch."""
    import numpy as np

    from repro.common.clock import VirtualClock
    from repro.display.commands import RawCmd, Region
    from repro.display.recorder import DisplayRecorder

    recorder = DisplayRecorder(320, 240, clock=VirtualClock())
    pixels = np.zeros((64, 64), dtype=np.uint32)
    cmd = RawCmd(Region(0, 0, 64, 64), pixels)

    def record_batch():
        recorder.handle_commands([cmd] * 16, recorder.clock.now_us)

    benchmark(record_batch)
