"""Flight-recorder overhead benchmarks.

The journal promises always-on affordability: the NULL_FLIGHTREC no-op
path must cost one empty bound-method call per instrumented site, and a
journal-enabled run must stay bit-identical to a disabled one (the
recorder only *reads* clocks) within a small wall-clock envelope — the
acceptance gate is <= 5% overhead; the assertion here uses a looser
bound so noisy CI machines don't flap, while the measured figure lands
in ``BENCH_flightrec.json`` for offline inspection.
"""

import json
import os
import time

from repro.common.clock import VirtualClock
from repro.common.flightrec import (
    NULL_FLIGHTREC,
    NULL_SCOPE,
    REC_EVENT,
    FlightRecorder,
)
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import run_scenario

ARTIFACT_SCHEMA = "dejaview.bench_flightrec/v1"
ARTIFACT_NAME = "BENCH_flightrec.json"

OPS = 10_000

#: Acceptance gate for the journal-enabled wall-clock overhead; the
#: assertion below uses CI_BOUND to stay robust on shared runners.
OVERHEAD_GATE = 0.05
CI_BOUND = 0.25

BENCH_SCENARIO = "gzip"
BENCH_UNITS = 6


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_flightrec.json``."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def test_bench_noop_scope_record(benchmark):
    def spin():
        for _ in range(OPS):
            NULL_SCOPE.record(REC_EVENT, None)

    benchmark(spin)


def test_bench_enabled_record(benchmark):
    recorder = FlightRecorder()
    scope = recorder.scope("bench", VirtualClock())

    def spin():
        for _ in range(OPS):
            scope.record(REC_EVENT, {"event": "bench"})

    benchmark(spin)


def test_noop_scope_is_cheap():
    """The disabled journal path must cost well under a microsecond per
    call — the NULL_TELEMETRY / NULL_FAULTS envelope."""
    rounds = 200_000
    record = NULL_SCOPE.record
    start = time.perf_counter_ns()
    for _ in range(rounds):
        record(REC_EVENT, None)
    elapsed_ns = time.perf_counter_ns() - start
    per_op_ns = elapsed_ns / rounds
    assert per_op_ns < 1000, "no-op journal record took %.0f ns" % per_op_ns
    # And the tracer hot path stays a single `sink is None` check.
    assert NULL_SCOPE.span_sink() is None
    assert NULL_FLIGHTREC.replay().records == []


def test_journal_run_is_bit_identical():
    """Journaling changes no recorded behavior: same simulated duration,
    same storage accounting, same checkpoint downtime series."""
    on = run_scenario(
        BENCH_SCENARIO, units=BENCH_UNITS,
        recording=RecordingConfig(flightrec=FlightRecorder(),
                                  flightrec_rollup_ticks=1))
    off = run_scenario(BENCH_SCENARIO, units=BENCH_UNITS,
                       recording=RecordingConfig())
    assert on.duration_us == off.duration_us
    assert on.dejaview.storage_report() == off.dejaview.storage_report()
    assert ([r.downtime_us for r in on.dejaview.engine.history]
            == [r.downtime_us for r in off.dejaview.engine.history])


def test_journal_overhead_within_bound(request):
    """Wall-clock cost of a journal-enabled scenario run vs the disabled
    NULL_FLIGHTREC path; writes the measured figure to the artifact."""
    # Warm both paths so one-time import costs don't skew the ratio.
    run_scenario(BENCH_SCENARIO, units=2, recording=RecordingConfig())
    run_scenario(BENCH_SCENARIO, units=2,
                 recording=RecordingConfig(flightrec=FlightRecorder(),
                                           flightrec_rollup_ticks=1))

    def timed(config):
        start = time.perf_counter_ns()
        run_scenario(BENCH_SCENARIO, units=BENCH_UNITS, recording=config)
        return time.perf_counter_ns() - start

    # Interleave the two configurations and take each side's best:
    # back-to-back pairs cancel the machine's drift (GC pressure, CPU
    # throttling), which on shared runners dwarfs the journal itself.
    recorders = []
    off_ns = on_ns = None
    for _ in range(5):
        off = timed(RecordingConfig())
        recorder = FlightRecorder()
        recorders.append(recorder)
        on = timed(RecordingConfig(flightrec=recorder,
                                   flightrec_rollup_ticks=1))
        off_ns = off if off_ns is None else min(off_ns, off)
        on_ns = on if on_ns is None else min(on_ns, on)
    overhead = on_ns / off_ns - 1
    records = max(r.records_written for r in recorders)
    journal_bytes = sum(len(blob)
                        for blob in recorders[-1].segment_data())

    _update_artifact(request.config.rootpath, "overhead", {
        "scenario": BENCH_SCENARIO,
        "units": BENCH_UNITS,
        "disabled_wall_ns": off_ns,
        "journaled_wall_ns": on_ns,
        "overhead_fraction": overhead,
        "overhead_gate": OVERHEAD_GATE,
        "ci_assert_bound": CI_BOUND,
        "records_written": records,
        "journal_bytes": journal_bytes,
    })

    assert on_ns < off_ns * (1 + CI_BOUND), (
        "journal overhead %.1f%% (gate %.0f%%, CI bound %.0f%%)"
        % (overhead * 100, OVERHEAD_GATE * 100, CI_BOUND * 100))


def test_noop_run_matches_default_run(request):
    """An explicit flightrec=None resolves to NULL_FLIGHTREC and changes
    nothing; records the no-op delta (should be pure noise) alongside
    the enabled figure."""
    default = run_scenario(BENCH_SCENARIO, units=BENCH_UNITS,
                           recording=RecordingConfig())
    explicit = run_scenario(BENCH_SCENARIO, units=BENCH_UNITS,
                            recording=RecordingConfig(flightrec=None))
    assert default.duration_us == explicit.duration_us
    assert default.dejaview.storage_report() \
        == explicit.dejaview.storage_report()
    _update_artifact(request.config.rootpath, "noop", {
        "bit_identical": True,
        "duration_us": default.duration_us,
    })
