"""Ablation: keyframe (screenshot) interval.

Section 4.1: "since screenshots consume significantly more space, and they
are only required as a starting point for playback, DejaView only takes
screenshots at long intervals (e.g. every 10 minutes) and only if the
screen has changed enough since the previous one."

This bench sweeps the screenshot interval on one display-active workload
and measures the trade the design targets: shorter intervals cost keyframe
storage but bound the number of commands a browse must replay; longer
intervals are nearly free but push browse latency up.  It also validates
the change-fraction gate: a quiet desktop takes (almost) no keyframes
regardless of the interval.
"""

from benchmarks.conftest import print_table
from repro.common.clock import VirtualClock
from repro.common.units import seconds
from repro.desktop.dejaview import RecordingConfig
from repro.display.playback import PlaybackEngine
from repro.display.recorder import RecorderConfig
from repro.workloads import get_workload

INTERVALS_S = [2, 10, 60, 600]


def _run_with_interval(interval_s):
    workload = get_workload("cat")
    recording = RecordingConfig(
        record_index=False,
        record_checkpoints=False,
        recorder_config=RecorderConfig(
            screenshot_interval_us=seconds(interval_s),
            screenshot_min_change_fraction=0.02,
        ),
    )
    run = workload.run(recording=recording, units=200)
    record = run.dejaview.display_record()
    # Browse latency: average of seeks across the record, cold cache.
    engine = PlaybackEngine(record, clock=VirtualClock(), cache_capacity=0)
    latencies = []
    start = record.timeline.first_time_us
    for i in range(1, 9):
        target = start + (run.end_us - start) * i // 9
        watch = engine.clock.stopwatch()
        engine.seek(target)
        latencies.append(watch.elapsed_us)
    browse_us = sum(latencies) / len(latencies)
    return {
        "keyframes": len(record.timeline),
        "keyframe_bytes": len(record.screenshot_bytes),
        "log_bytes": len(record.log_bytes),
        "browse_us": browse_us,
    }


def test_ablation_keyframe_interval(benchmark):
    table = benchmark.pedantic(
        lambda: {s: _run_with_interval(s) for s in INTERVALS_S},
        rounds=1, iterations=1,
    )
    rows = [
        [
            "%ds" % s,
            table[s]["keyframes"],
            "%.2f" % (table[s]["keyframe_bytes"] / 1e6),
            "%.2f" % (table[s]["log_bytes"] / 1e6),
            "%.1f" % (table[s]["browse_us"] / 1000),
        ]
        for s in INTERVALS_S
    ]
    print_table(
        "Ablation -- keyframe interval (cat workload)",
        ["interval", "keyframes", "keyframe MB", "command-log MB",
         "avg browse ms"],
        rows,
        note="Shorter intervals trade keyframe storage for browse latency; "
             "the command log itself is unaffected.",
    )

    shortest, longest = INTERVALS_S[0], INTERVALS_S[-1]
    # More keyframes at shorter intervals, costing more storage.
    assert table[shortest]["keyframes"] > table[longest]["keyframes"]
    assert table[shortest]["keyframe_bytes"] > table[longest]["keyframe_bytes"]
    # The command log does not depend on the keyframe policy.
    assert abs(table[shortest]["log_bytes"] - table[longest]["log_bytes"]) \
        < 0.05 * table[longest]["log_bytes"]
    # Browse latency benefits from denser keyframes.
    assert table[shortest]["browse_us"] <= table[longest]["browse_us"]


def test_change_gate_suppresses_keyframes_when_idle(benchmark):
    """"only if the screen has changed enough since the previous one"."""
    from repro.display.commands import Region, SolidFillCmd
    from repro.display.driver import VirtualDisplayDriver
    from repro.display.recorder import DisplayRecorder

    def build():
        clock = VirtualClock()
        driver = VirtualDisplayDriver(64, 48, clock=clock)
        recorder = DisplayRecorder(
            64, 48, clock=clock,
            config=RecorderConfig(screenshot_interval_us=seconds(1),
                                  screenshot_min_change_fraction=0.05),
        )
        driver.attach_sink(recorder)
        # A blinking cursor for two minutes: interval elapses 120 times,
        # but the change gate keeps suppressing keyframes.
        for _ in range(120):
            driver.submit(SolidFillCmd(Region(0, 0, 2, 8), 0xFFFFFF))
            driver.flush()
            clock.advance_us(seconds(1))
        return recorder

    recorder = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(recorder.timeline) <= 3
