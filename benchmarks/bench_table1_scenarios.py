"""Table 1: application scenarios.

Validates that each workload generator exhibits the activity profile its
Table 1 entry implies, and prints the scenario roster with measured
characteristics (duration, display commands, text inserts, checkpoints,
files written).
"""

from benchmarks.conftest import ALL_SCENARIOS, print_table


def _describe(run):
    dv = run.dejaview
    return {
        "duration_s": run.duration_seconds,
        "display_cmds": dv.recorder.command_count if dv.recorder else 0,
        "text_inserts": dv.database.insert_count if dv.database else 0,
        "checkpoints": dv.checkpoint_count,
        "processes": len(run.session.container.processes),
    }


def test_table1_scenario_roster(benchmark, scenarios):
    benchmark.pedantic(
        lambda: [scenarios.get(name) for name in ALL_SCENARIOS],
        rounds=1, iterations=1,
    )
    rows = []
    for name in ALL_SCENARIOS:
        run = scenarios.get(name)
        d = _describe(run)
        rows.append([
            name,
            "%.1f" % d["duration_s"],
            d["display_cmds"],
            d["text_inserts"],
            d["checkpoints"],
            d["processes"],
        ])
    print_table(
        "Table 1 -- application scenarios (measured profile)",
        ["scenario", "sim s", "display cmds", "text inserts",
         "checkpoints", "processes"],
        rows,
        note="Roster mirrors Table 1; columns are this run's measurements.",
    )
    # Profile sanity: the scenarios must be distinguishable by their
    # dominant activity, or every later figure is meaningless.
    by_name = {name: _describe(scenarios.get(name)) for name in ALL_SCENARIOS}
    assert by_name["video"]["display_cmds"] >= 480  # one per frame
    assert by_name["cat"]["display_cmds"] > by_name["gzip"]["display_cmds"]
    assert by_name["web"]["text_inserts"] > by_name["video"]["text_inserts"]
    assert by_name["make"]["processes"] >= 3


def test_bench_scenario_throughput(benchmark, scenarios):
    """Wall-clock cost of running one gzip work unit end to end."""
    from repro.workloads import run_scenario

    benchmark.pedantic(
        lambda: run_scenario("gzip", units=4), rounds=3, iterations=1
    )
