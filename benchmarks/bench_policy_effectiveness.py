"""Checkpoint-policy effectiveness (section 6, text).

The paper examined the checkpoint logs from real desktop usage and found
the policy took checkpoints only ~20 % of the time, attributing the skips
13 % to lack of display activity, 69 % to low display activity, and 18 % to
the reduced checkpoint rate during text editing.  It also estimates that
without the policy the (compressed) storage growth would roughly triple.

This bench runs the desktop scenario under the policy, reports the same
breakdown, and quantifies the storage saved by re-running the identical
scenario with fixed 1 Hz checkpointing.
"""

from benchmarks.conftest import print_table
from repro.checkpoint.policy import (
    SKIP_FULLSCREEN,
    SKIP_LOW_DISPLAY,
    SKIP_NO_DISPLAY,
    SKIP_RATE_LIMIT,
    SKIP_TEXT_RATE,
)

MB = 1e6


def test_policy_effectiveness(benchmark, scenarios):
    def build():
        from benchmarks.conftest import BENCH_UNITS
        from repro.desktop.dejaview import RecordingConfig
        from repro.workloads import run_scenario

        policy_run = scenarios.get("desktop")
        nopolicy_run = run_scenario(
            "desktop",
            recording=RecordingConfig(use_policy=False),
            units=BENCH_UNITS["desktop"],
        )
        return policy_run, nopolicy_run

    policy_run, nopolicy_run = benchmark.pedantic(build, rounds=1,
                                                  iterations=1)
    stats = policy_run.dejaview.policy.stats
    taken = stats.taken_fraction()
    breakdown = {
        "no display activity": stats.skip_fraction(SKIP_NO_DISPLAY),
        "low display activity": stats.skip_fraction(SKIP_LOW_DISPLAY),
        "text-edit rate limit": stats.skip_fraction(SKIP_TEXT_RATE),
        "fullscreen app": stats.skip_fraction(SKIP_FULLSCREEN),
        "rate limit": stats.skip_fraction(SKIP_RATE_LIMIT),
    }
    policy_rates = policy_run.storage_growth_rates()
    nopolicy_rates = nopolicy_run.storage_growth_rates()

    rows = [
        ["checkpoints taken", "%.0f%% of ticks" % (100 * taken),
         "paper: ~20%"],
    ] + [
        ["skip: " + reason, "%.0f%% of skips" % (100 * fraction), paper]
        for (reason, fraction), paper in zip(
            breakdown.items(),
            ["paper: 13%", "paper: 69%", "paper: 18%", "", ""],
        )
    ] + [
        ["ckpt growth, policy", "%.2f MB/s (%.2f gz)" % (
            policy_rates["checkpoint"] / MB,
            policy_rates["checkpoint_compressed"] / MB), ""],
        ["ckpt growth, 1 Hz", "%.2f MB/s (%.2f gz)" % (
            nopolicy_rates["checkpoint"] / MB,
            nopolicy_rates["checkpoint_compressed"] / MB),
         "paper: would exceed 3 MB/s gz"],
    ]
    print_table(
        "Checkpoint policy effectiveness (desktop scenario)",
        ["quantity", "measured", "paper"],
        rows,
    )

    # "DejaView skipped the majority of the checkpoints, taking checkpoints
    # on average only 20% of the time."
    assert 0.10 < taken < 0.40
    # Skip attribution ordering: low display activity dominates, the other
    # two named reasons are meaningful minorities.
    assert breakdown["low display activity"] > 0.45
    assert 0.05 < breakdown["no display activity"] < 0.35
    assert 0.05 < breakdown["text-edit rate limit"] < 0.35
    # The policy saves real storage vs fixed-rate checkpointing.
    assert (policy_rates["checkpoint"]
            < 0.7 * nopolicy_rates["checkpoint"])


def test_bench_policy_decision_wallclock(benchmark):
    """Wall-clock cost of one policy decision."""
    from repro.checkpoint.policy import CheckpointPolicy, PolicyContext
    from repro.display.driver import DisplayActivity

    policy = CheckpointPolicy()
    activity = DisplayActivity(command_count=5, changed_area=50_000,
                               screen_area=76_800)
    state = {"now": 0}

    def decide():
        state["now"] += 1_000_000
        policy.decide(PolicyContext(now_us=state["now"],
                                    display_activity=activity))

    benchmark(decide)
