"""Baseline comparison: screencasting vs DejaView display recording.

Section 7: "Screencasting ... requires higher overhead and more storage and
bandwidth than DejaView's display recording."  This bench attaches both
recorders to the same workloads and compares storage and recording CPU.

The screencaster grabs 10 full frames per second (a typical 2007
screencast rate) with zlib encoding standing in for MPEG-class
compression; the DejaView recorder logs THINC commands.  Because the
command log knows *what* changed, it wins by a wide margin on mostly-
static content (the desktop scenario) while remaining competitive even on
full-motion video.
"""

from benchmarks.conftest import print_table
from repro.common.clock import VirtualClock
from repro.desktop.dejaview import RecordingConfig
from repro.display.commands import Region
from repro.display.screencast import ScreencastRecorder
from repro.workloads import get_workload

SCENARIOS = ["web", "video", "cat", "desktop"]
UNITS = {"web": 30, "video": 240, "cat": 200, "desktop": 240}


def _run_with_screencast(name):
    """Run a scenario with a screencaster attached alongside DejaView."""
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession

    workload = get_workload(name)
    session = DesktopSession()
    config = RecordingConfig(record_index=False, record_checkpoints=False)
    if name == "desktop":
        config.use_policy = True
    dv = DejaView(session, config)
    cast = ScreencastRecorder(session.width, session.height,
                              clock=session.clock, fps=10)
    session.driver.attach_sink(cast)
    run = workload.run(units=UNITS[name], session=session, dejaview=dv)
    return run, cast


def test_baseline_screencast_storage(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run_with_screencast(name) for name in SCENARIOS},
        rounds=1, iterations=1,
    )
    rows = []
    for name in SCENARIOS:
        run, cast = results[name]
        dejaview_bytes = run.dejaview.recorder.total_nbytes
        duration_s = max(run.duration_seconds, 1e-9)
        rows.append([
            name,
            "%.2f" % (dejaview_bytes / 1e6 / duration_s),
            "%.2f" % (cast.stored_bytes / 1e6 / duration_s),
            "%.1fx" % (cast.stored_bytes / max(dejaview_bytes, 1)),
            cast.frames_captured,
            cast.frames_skipped,
        ])
    print_table(
        "Baseline -- screencast (10 fps, encoded) vs DejaView display record",
        ["scenario", "DejaView MB/s", "screencast MB/s", "ratio",
         "frames", "skipped"],
        rows,
        note="Paper (section 7): screencasting needs more storage and "
             "overhead than command recording.",
    )

    for name in SCENARIOS:
        run, cast = results[name]
        dejaview_bytes = run.dejaview.recorder.total_nbytes
        if name == "video":
            # Full-motion video is the screencaster's best case; DejaView
            # must still not lose by more than the raw-vs-YUV gap.
            assert cast.stored_bytes > 0.3 * dejaview_bytes
        else:
            # Everywhere else the command log wins outright.
            assert cast.stored_bytes > dejaview_bytes, name

    # The desktop is the landslide case: mostly-static screens cost a
    # screencaster full frames but DejaView almost nothing.  (Synthetic
    # screens zlib-compress far better than real desktops, so the measured
    # ratio here is a *lower bound* on the real gap.)
    desktop_run, desktop_cast = results["desktop"]
    assert (desktop_cast.stored_bytes
            > 2 * desktop_run.dejaview.recorder.total_nbytes)


def test_bench_screencast_grab_wallclock(benchmark):
    """Wall-clock cost of one encoded full-screen grab."""
    cast = ScreencastRecorder(320, 240, clock=VirtualClock(), fps=10)
    state = {"t": 0}

    def grab():
        state["t"] += 100_000
        cast.framebuffer.fill(Region(0, 0, 10, 10), state["t"])
        cast.handle_commands([], state["t"])

    benchmark(grab)
