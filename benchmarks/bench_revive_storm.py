"""Revive storms: N simultaneous branch forks from one checkpoint.

Section 5.2: "DejaView's combination of unioning and file system
snapshots provides a branchable file system to enable DejaView to create
multiple revived sessions from a single checkpoint."  This bench forks
N in {16, 64} branches from the *same* parent checkpoint and gates the
two economics that make storms viable:

* **fork latency is flat in N** — a fork demand-pages out of the shared
  store and pins (not copies) the source manifests, so the p95 fork
  latency at N=64 must stay within 3x of N=16 (in practice it is
  identical: forks from one checkpoint do the same virtual work);
* **pages are shared, not copied** — immediately after the forks (before
  any branch diverges) at least 60% of the branches' referenced bytes
  must be shared (parent-chain pins and sibling dedup), so N branches
  cost nowhere near N full copies.

Also reports the post-divergence split (branches run mixed scenarios, so
private bytes appear only where a branch actually wrote novel pages) and
the physical-bytes bound: the store must hold at most one logical copy
of the parent plus the branches' private pages.

Writes ``BENCH_revive.json`` in the pytest root for CI artifact upload.
"""

import gc
import json
import os

from benchmarks.conftest import print_table

MB = 1e6

ARTIFACT_SCHEMA = "dejaview.bench_revive/v1"
ARTIFACT_NAME = "BENCH_revive.json"

STORM_SIZES = [16, 64]
SEED = 1
PARENT_UNITS = 16
BRANCH_UNITS = 2

#: Acceptance gates (ISSUE: revive storms).
FORK_P95_RATIO_GATE = 3.0
SHARED_FRACTION_GATE = 0.60


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_revive.json``."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _measure(branches):
    from repro.workloads.fleet_wl import run_revive_storm

    gc.disable()
    try:
        fleet, report = run_revive_storm(
            branches, seed=SEED, parent_units=PARENT_UNITS,
            branch_units=BRANCH_UNITS)
    finally:
        gc.enable()
    forks = report["fork_us"]
    at_fork = report["split_at_fork"].values()
    shared = sum(s["shared_bytes"] for s in at_fork)
    private = sum(s["private_bytes"] for s in at_fork)
    after = report["split_after_run"].values()
    parent_raw, _parent_comp = fleet.cas.owner_logical_totals("p0")
    private_after = sum(s["private_bytes"] for s in after)
    physical = fleet.cas.total_uncompressed_bytes
    # Per-branch *novel* bytes: digests the branch references that the
    # parent does not (novel pages two siblings share are counted once
    # per sibling, so the sum over branches upper-bounds the distinct
    # novel footprint).
    cas = fleet.cas
    parent_digests = set(cas.owner_refs.get("p0", ()))
    novel_after = sum(
        cas.sizes[digest][0]
        for member in fleet.branches()
        for digest in set(cas.owner_refs.get(member.name, ()))
        - parent_digests)
    row = {
        "branches": branches,
        "seed": SEED,
        "source_checkpoint": report["source_checkpoint"],
        "fork_p50_us": _percentile(forks, 0.50),
        "fork_p95_us": _percentile(forks, 0.95),
        "fork_max_us": max(forks),
        "shared_bytes_at_fork": shared,
        "private_bytes_at_fork": private,
        "shared_fraction_at_fork": (
            shared / (shared + private) if shared + private else 0.0),
        "private_bytes_after_run": private_after,
        "novel_bytes_after_run": novel_after,
        "parent_logical_bytes": parent_raw,
        "physical_page_bytes": physical,
        "dedup_ratio": fleet.dedup_ratio(),
        "branch_states": sorted(
            {m.state for m in fleet.branches()}),
    }
    # Physical-bytes bound: the store holds at most one logical parent
    # copy plus the branches' novel (diverged) pages — N branches never
    # cost N copies.
    assert physical <= parent_raw + novel_after, (
        "storm stored %d bytes > one parent copy (%d) + novel (%d)"
        % (physical, parent_raw, novel_after))
    del fleet, report
    gc.collect()
    return row


def test_revive_storm_scaling(request):
    """Fork-latency flatness and page sharing across storm sizes; the
    acceptance gates ride on the N=16 vs N=64 comparison."""
    rows = [_measure(branches) for branches in STORM_SIZES]
    by_n = {row["branches"]: row for row in rows}
    small, large = by_n[STORM_SIZES[0]], by_n[STORM_SIZES[-1]]

    for row in rows:
        assert row["branch_states"] == ["done"], (
            "storm N=%d left branches in %s"
            % (row["branches"], row["branch_states"]))
        assert row["shared_fraction_at_fork"] >= SHARED_FRACTION_GATE, (
            "N=%d shared %.1f%% of branch bytes at fork, gate %.0f%%"
            % (row["branches"], 100 * row["shared_fraction_at_fork"],
               100 * SHARED_FRACTION_GATE))

    assert large["fork_p95_us"] <= FORK_P95_RATIO_GATE * max(
        1, small["fork_p95_us"]), (
        "fork p95 grew from %dus (N=%d) to %dus (N=%d), gate %.1fx"
        % (small["fork_p95_us"], small["branches"],
           large["fork_p95_us"], large["branches"], FORK_P95_RATIO_GATE))

    _update_artifact(request.config.rootpath, "storm_scaling", {
        "rows": rows,
        "gates": {
            "fork_p95_ratio_max": FORK_P95_RATIO_GATE,
            "shared_fraction_min": SHARED_FRACTION_GATE,
        },
    })
    print_table(
        "revive storm scaling (one checkpoint, N branches)",
        ["N", "fork p50 us", "fork p95 us", "shared@fork",
         "private after", "physical MB", "dedup"],
        [[row["branches"], row["fork_p50_us"], row["fork_p95_us"],
          "%.1f%%" % (100 * row["shared_fraction_at_fork"]),
          "%.2f MB" % (row["private_bytes_after_run"] / MB),
          "%.2f" % (row["physical_page_bytes"] / MB),
          "%.1f%%" % (100 * row["dedup_ratio"])]
         for row in rows],
        note="gates: p95(N=%d) <= %.1fx p95(N=%d); shared fraction at "
             "fork >= %.0f%%" % (
                 STORM_SIZES[-1], FORK_P95_RATIO_GATE, STORM_SIZES[0],
                 100 * SHARED_FRACTION_GATE))


def test_revive_storm_crash_resilience(request):
    """A branch killed mid-fork neither slows the storm nor perturbs the
    survivors: recovery reclaims it, siblings all finish, and the
    refcount fsck converges (double-recover is a fixpoint)."""
    from repro.workloads.fleet_wl import run_revive_storm

    branches = STORM_SIZES[0]
    fleet, report = run_revive_storm(
        branches, seed=SEED, parent_units=PARENT_UNITS,
        branch_units=BRANCH_UNITS, crash_branch=3)
    assert report["crashed"]["recovery_ok"]
    crashed = report["crashed"]["name"]
    survivors = [m for m in fleet.branches() if m.name != crashed]
    assert len(survivors) == branches - 1
    assert all(m.state == "done" for m in survivors)
    second = fleet.recover_session(crashed)
    assert second.get("cas_orphans_reclaimed", 0) == 0 \
        or second.get("ok")
    _update_artifact(request.config.rootpath, "crash_resilience", {
        "branches": branches,
        "crashed": report["crashed"],
        "survivors_done": len(survivors),
    })
    print_table(
        "revive storm crash resilience",
        ["branches", "crashed at", "survivors done"],
        [[branches, report["crashed"]["site"], len(survivors)]])
