"""Figure 4: recording storage growth.

For every scenario, reports the storage growth rate in MB/s decomposed the
way the paper does: display state, display index, process checkpoints
(uncompressed and compressed), and file system snapshot state.

Paper shape being reproduced:

* growth ranges from ~2.5 MB/s (gzip) to ~20 MB/s (octave) uncompressed;
* checkpoints dominate every scenario except video (display dominates) and
  untar (file system dominates);
* compression brings most scenarios below ~6 MB/s;
* real desktop usage is far cheaper than the application benchmarks
  (bursty activity + checkpoint policy), comparable to an HDTV PVR
  (~2.5 MB/s).
"""

from benchmarks.conftest import ALL_SCENARIOS, print_table

MB = 1e6


def test_fig4_storage_growth(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {
            name: scenarios.get(name).storage_growth_rates()
            for name in ALL_SCENARIOS
        },
        rounds=1, iterations=1,
    )
    rows = []
    for name in ALL_SCENARIOS:
        r = table[name]
        total = r["display"] + r["index"] + r["checkpoint"] + r["fs"]
        total_z = r["display"] + r["index"] + r["checkpoint_compressed"] + r["fs"]
        rows.append([
            name,
            "%.2f" % (r["display"] / MB),
            "%.3f" % (r["index"] / MB),
            "%.2f" % (r["checkpoint"] / MB),
            "%.2f" % (r["checkpoint_compressed"] / MB),
            "%.2f" % (r["fs"] / MB),
            "%.2f" % (total / MB),
            "%.2f" % (total_z / MB),
        ])
    print_table(
        "Figure 4 -- storage growth rate (MB/s)",
        ["scenario", "display", "index", "ckpt", "ckpt(gz)", "fs",
         "TOTAL", "TOTAL(gz)"],
        rows,
        note="Paper: 2.5 (gzip) to 20 (octave) MB/s uncompressed; video "
             "dominated by display, untar by fs; desktop ~2.5 MB/s "
             "uncompressed / ~0.6 compressed.",
    )

    r = table

    def total(name):
        x = r[name]
        return x["display"] + x["index"] + x["checkpoint"] + x["fs"]

    # Checkpoint state dominates everywhere except video and untar.
    for name in ALL_SCENARIOS:
        x = r[name]
        if name == "video":
            assert x["display"] > x["checkpoint"]
        elif name == "untar":
            assert x["fs"] > x["checkpoint"]
        else:
            assert x["checkpoint"] >= max(x["display"], x["fs"], x["index"]), name

    # Octave is the most storage-hungry scenario; compression tames it.
    assert total("octave") == max(total(n) for n in ALL_SCENARIOS)
    assert r["octave"]["checkpoint"] > 10 * MB
    assert r["octave"]["checkpoint_compressed"] < r["octave"]["checkpoint"] / 3

    # gzip is the cheapest application benchmark.
    app_totals = {n: total(n) for n in ALL_SCENARIOS if n != "desktop"}
    assert app_totals["gzip"] == min(app_totals.values())

    # Compression helps process state everywhere.
    for name in ALL_SCENARIOS:
        if r[name]["checkpoint"] > 0.1 * MB:
            assert r[name]["checkpoint_compressed"] < r[name]["checkpoint"]

    # Desktop (policy-driven) grows far slower than the worst benchmarks.
    assert total("desktop") < total("octave") / 5
    assert total("desktop") < 6 * MB  # HDTV-PVR ballpark


def test_bench_checkpoint_image_serialization(benchmark):
    """Wall-clock cost of serializing + compressing one checkpoint image."""
    import zlib

    from repro.checkpoint.image import CheckpointImage

    image = CheckpointImage(1, 0, "bench")
    for page in range(256):
        image.pages[(1, 0x10000000, page)] = bytes(4096)
    image.page_locations = {key: 1 for key in image.pages}

    benchmark(lambda: zlib.compress(image.serialize(), 1))
