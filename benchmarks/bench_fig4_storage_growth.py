"""Figure 4: recording storage growth.

For every scenario, reports the storage growth rate in MB/s decomposed the
way the paper does: display state, display index, process checkpoints
(uncompressed and compressed), and file system snapshot state.

Paper shape being reproduced:

* growth ranges from ~2.5 MB/s (gzip) to ~20 MB/s (octave) uncompressed;
* checkpoints dominate every scenario except video (display dominates) and
  untar (file system dominates);
* compression brings most scenarios below ~6 MB/s;
* real desktop usage is far cheaper than the application benchmarks
  (bursty activity + checkpoint policy), comparable to an HDTV PVR
  (~2.5 MB/s).
"""

import json
import os

from benchmarks.conftest import ALL_SCENARIOS, print_table

MB = 1e6

ARTIFACT_SCHEMA = "dejaview.bench_fig4/v1"
ARTIFACT_NAME = "BENCH_fig4.json"


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_fig4.json`` (tests may run alone)."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def test_fig4_dedup_savings(request):
    """Cross-checkpoint dedup: the content-addressed page store must cut
    the accounted checkpoint bytes of an incremental desktop workload by
    at least 30% versus the legacy whole-blob layout.

    Both runs see the identical scripted workload (the desktop scenario
    seeds its own RNG), checkpoint at a fixed 1 Hz with full
    checkpoints every 10, and record only checkpoints, so the entire delta is the
    page store refusing to rewrite pages it has already seen."""
    from repro.checkpoint.engine import EngineOptions
    from repro.desktop.dejaview import RecordingConfig
    from repro.workloads import run_scenario

    def measure(page_store):
        config = RecordingConfig(
            record_display=False,
            record_index=False,
            use_policy=False,
            checkpoint_page_store=page_store,
            engine_options=EngineOptions(full_checkpoint_interval=10),
        )
        run = run_scenario("desktop", recording=config, units=150)
        report = run.dejaview.storage_report()
        start = run.start_storage
        return {
            "checkpoint_bytes": report["checkpoint_uncompressed"]
            - start["checkpoint_uncompressed"],
            "pages_deduped": report.get("pages_deduped", 0),
            "dedup_bytes_saved": report.get("dedup_bytes_saved", 0),
            "checkpoints": run.dejaview.checkpoint_count,
        }

    baseline = measure(page_store=False)
    cas = measure(page_store=True)
    savings = 1.0 - cas["checkpoint_bytes"] / max(
        baseline["checkpoint_bytes"], 1
    )
    print_table(
        "Figure 4 (dedup) -- accounted checkpoint bytes, desktop, 150 units",
        ["layout", "ckpt MB", "pages deduped", "MB saved"],
        [
            ["whole-blob", "%.2f" % (baseline["checkpoint_bytes"] / MB),
             "-", "-"],
            ["page-store", "%.2f" % (cas["checkpoint_bytes"] / MB),
             str(cas["pages_deduped"]),
             "%.2f" % (cas["dedup_bytes_saved"] / MB)],
        ],
        note="savings: %.1f%% (gate: >= 30%%)" % (savings * 100),
    )

    assert baseline["checkpoints"] == cas["checkpoints"]
    assert cas["pages_deduped"] > 0
    assert cas["dedup_bytes_saved"] > 0
    assert savings >= 0.30, "dedup saved only %.1f%%" % (savings * 100)

    _update_artifact(request.config.rootpath, "dedup", {
        "workload": "desktop",
        "units": 150,
        "baseline_checkpoint_bytes": baseline["checkpoint_bytes"],
        "cas_checkpoint_bytes": cas["checkpoint_bytes"],
        "pages_deduped": cas["pages_deduped"],
        "dedup_bytes_saved": cas["dedup_bytes_saved"],
        "savings_fraction": savings,
    })


def test_fig4_storage_growth(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {
            name: scenarios.get(name).storage_growth_rates()
            for name in ALL_SCENARIOS
        },
        rounds=1, iterations=1,
    )
    rows = []
    for name in ALL_SCENARIOS:
        r = table[name]
        total = r["display"] + r["index"] + r["checkpoint"] + r["fs"]
        total_z = r["display"] + r["index"] + r["checkpoint_compressed"] + r["fs"]
        rows.append([
            name,
            "%.2f" % (r["display"] / MB),
            "%.3f" % (r["index"] / MB),
            "%.2f" % (r["checkpoint"] / MB),
            "%.2f" % (r["checkpoint_compressed"] / MB),
            "%.2f" % (r["fs"] / MB),
            "%.2f" % (total / MB),
            "%.2f" % (total_z / MB),
        ])
    print_table(
        "Figure 4 -- storage growth rate (MB/s)",
        ["scenario", "display", "index", "ckpt", "ckpt(gz)", "fs",
         "TOTAL", "TOTAL(gz)"],
        rows,
        note="Paper: 2.5 (gzip) to 20 (octave) MB/s uncompressed; video "
             "dominated by display, untar by fs; desktop ~2.5 MB/s "
             "uncompressed / ~0.6 compressed.",
    )

    r = table

    def total(name):
        x = r[name]
        return x["display"] + x["index"] + x["checkpoint"] + x["fs"]

    # Checkpoint state dominates everywhere except video and untar.
    for name in ALL_SCENARIOS:
        x = r[name]
        if name == "video":
            assert x["display"] > x["checkpoint"]
        elif name == "untar":
            assert x["fs"] > x["checkpoint"]
        else:
            assert x["checkpoint"] >= max(x["display"], x["fs"], x["index"]), name

    # Octave is the most storage-hungry scenario; compression tames it.
    assert total("octave") == max(total(n) for n in ALL_SCENARIOS)
    assert r["octave"]["checkpoint"] > 10 * MB
    assert r["octave"]["checkpoint_compressed"] < r["octave"]["checkpoint"] / 3

    # gzip is the cheapest application benchmark.
    app_totals = {n: total(n) for n in ALL_SCENARIOS if n != "desktop"}
    assert app_totals["gzip"] == min(app_totals.values())

    # Compression helps process state everywhere.
    for name in ALL_SCENARIOS:
        if r[name]["checkpoint"] > 0.1 * MB:
            assert r[name]["checkpoint_compressed"] < r[name]["checkpoint"]

    # Desktop (policy-driven) grows far slower than the worst benchmarks.
    assert total("desktop") < total("octave") / 5
    assert total("desktop") < 6 * MB  # HDTV-PVR ballpark


def test_bench_checkpoint_image_serialization(benchmark):
    """Wall-clock cost of serializing + compressing one checkpoint image."""
    import zlib

    from repro.checkpoint.image import CheckpointImage

    image = CheckpointImage(1, 0, "bench")
    for page in range(256):
        image.pages[(1, 0x10000000, page)] = bytes(4096)
    image.page_locations = {key: 1 for key in image.pages}

    benchmark(lambda: zlib.compress(image.serialize(), 1))
