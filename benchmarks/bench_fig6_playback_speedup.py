"""Figure 6: playback speedup.

Plays each scenario's entire display record at the fastest possible rate
(command times ignored) and reports how many times faster than real time
the record plays back.

Paper shape being reproduced:

* every scenario plays back at >10x real time, even the worst case (web /
  iBench, which changes data at the full rate of display updates);
* regular desktop usage plays back at >200x (sparse activity, command
  pruning, keyframe seeks).
"""

from benchmarks.conftest import ALL_SCENARIOS, print_table
from repro.common.clock import VirtualClock
from repro.display.playback import PlaybackEngine


def _speedup(run):
    record = run.dejaview.display_record()
    engine = PlaybackEngine(record, clock=VirtualClock())
    start = record.timeline.first_time_us
    _fb, stats = engine.play(start, run.end_us, fastest=True)
    return stats


def test_fig6_playback_speedup(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {name: _speedup(scenarios.get(name))
                 for name in ALL_SCENARIOS},
        rounds=1, iterations=1,
    )
    rows = [
        [
            name,
            "%.1f" % (table[name].recorded_duration_us / 1e6),
            "%.3f" % (table[name].playback_duration_us / 1e6),
            "%.0fx" % table[name].speedup,
            table[name].commands_applied,
        ]
        for name in ALL_SCENARIOS
    ]
    print_table(
        "Figure 6 -- playback speedup (fastest-rate playback of the full record)",
        ["scenario", "recorded s", "playback s", "speedup", "commands"],
        rows,
        note="Paper: >10x worst case (web/iBench), >200x for regular "
             "desktops.",
    )

    for name in ALL_SCENARIOS:
        # "Even in the worst case, DejaView is able to display the visual
        # record at over 10 times the speed at which it was recorded."
        assert table[name].speedup > 10, name

    # Command-dense records (web, constantly changing data) are the slowest
    # to play back; the sparse desktop is the fastest by a wide margin.
    web = table["web"].speedup
    desktop = table["desktop"].speedup
    assert web == min(t.speedup for t in table.values())
    assert desktop > 200
    assert desktop > 5 * web


def test_bench_fastest_playback_wallclock(benchmark, scenarios):
    """Wall-clock cost of replaying the video record at fastest rate."""
    run = scenarios.get("video")
    record = run.dejaview.display_record()

    def play():
        engine = PlaybackEngine(record, clock=VirtualClock())
        engine.play(record.timeline.first_time_us, run.end_us, fastest=True)

    benchmark.pedantic(play, rounds=3, iterations=1)
