"""Figure 3: total checkpoint latency, broken down by phase.

For every scenario (full recording, 1 Hz checkpoints; policy for desktop),
reports the average per-checkpoint time split into the paper's five bars:
pre-checkpoint (pre-snapshot + pre-quiesce), quiesce, capture, file system
snapshot, and writeback.  Downtime = quiesce + capture + fs snapshot.

Paper shape being reproduced:

* downtime below 10 ms for every application benchmark, ~20 ms for real
  desktop usage (fewer policy-driven checkpoints -> more state each);
* capture (the COW protect pass) is the largest downtime component, but
  fs snapshot is up to half of downtime for untar;
* pre-checkpoint + writeback dominate *total* checkpoint time, which
  stays well under a second.
"""

from benchmarks.conftest import ALL_SCENARIOS, print_table
from repro.common.units import ms


def _avg_breakdown(run):
    history = run.dejaview.engine.history
    n = max(len(history), 1)

    def avg(attr):
        return sum(getattr(r, attr) for r in history) / n

    return {
        "pre_checkpoint": avg("pre_snapshot_us") + avg("pre_quiesce_us"),
        "quiesce": avg("quiesce_us"),
        "capture": avg("capture_us"),
        "fs_snapshot": avg("fs_snapshot_us"),
        "writeback": avg("writeback_us"),
        "downtime": avg("quiesce_us") + avg("capture_us") + avg("fs_snapshot_us"),
        "total": (avg("pre_snapshot_us") + avg("pre_quiesce_us")
                  + avg("quiesce_us") + avg("capture_us")
                  + avg("fs_snapshot_us") + avg("writeback_us")),
        "count": len(history),
    }


def test_fig3_checkpoint_latency(benchmark, scenarios):
    table = benchmark.pedantic(
        lambda: {name: _avg_breakdown(scenarios.get(name))
                 for name in ALL_SCENARIOS},
        rounds=1, iterations=1,
    )
    rows = []
    for name in ALL_SCENARIOS:
        b = table[name]
        rows.append([
            name,
            "%.2f" % (b["pre_checkpoint"] / 1000),
            "%.2f" % (b["quiesce"] / 1000),
            "%.2f" % (b["capture"] / 1000),
            "%.2f" % (b["fs_snapshot"] / 1000),
            "%.2f" % (b["writeback"] / 1000),
            "%.2f" % (b["downtime"] / 1000),
            "%.1f" % (b["total"] / 1000),
            b["count"],
        ])
    print_table(
        "Figure 3 -- checkpoint latency breakdown (avg ms per checkpoint)",
        ["scenario", "pre-ckpt", "quiesce", "capture", "fs snap",
         "writeback", "DOWNTIME", "total", "n"],
        rows,
        note="Paper: downtime < 10 ms for app benchmarks, ~20 ms for real "
             "desktop usage; pre-checkpoint + writeback dominate the total.",
    )

    for name in ALL_SCENARIOS:
        b = table[name]
        assert b["count"] >= 3, name
        if name == "desktop":
            # "roughly 20 ms on average for real desktop usage" — and
            # clearly larger than the application benchmarks.
            assert ms(5) < b["downtime"] < ms(40)
        else:
            # "less than 10 ms for all application benchmarks".
            assert b["downtime"] < ms(10), name
        # "even the largest application downtimes are less than the typical
        # system response time thresholds of 150 ms".
        assert b["downtime"] < ms(150)
        # Pre-checkpoint and writeback overlap execution; they dominate the
        # total checkpoint time for the memory-heavy scenarios.
        assert b["total"] < 1_000_000, name

    # Desktop downtime exceeds every app benchmark's.
    desktop = table["desktop"]["downtime"]
    assert all(table[n]["downtime"] < desktop for n in ALL_SCENARIOS
               if n != "desktop")

    # Video: "the application downtime was only 5 ms" — small enough to fit
    # between frames (41.7 ms budget).
    assert table["video"]["downtime"] < ms(8)
    assert scenarios.get("video").overran_units == 0

    # untar: fs snapshot is a visibly larger share of downtime than in the
    # memory-bound scenarios.
    untar = table["untar"]
    octave = table["octave"]
    assert (untar["fs_snapshot"] / untar["downtime"]
            > octave["fs_snapshot"] / octave["downtime"])


def test_bench_single_checkpoint_wallclock(benchmark):
    """Real wall-clock cost of one checkpoint of a small session."""
    from tests.test_checkpoint_engine import make_rig

    *_rest, engine, procs = make_rig(nprocs=4, pages_per_proc=64)
    space = procs[0].address_space
    region = space.regions()[0]
    engine.checkpoint()
    counter = [0]

    def one_checkpoint():
        counter[0] += 1
        space.write(region.start, b"dirty %d" % counter[0])
        engine.checkpoint()

    benchmark(one_checkpoint)
