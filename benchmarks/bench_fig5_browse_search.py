"""Figure 5: browse and search latency.

Browse: seek the display record at regular intervals, skipping points with
fewer than 100 display commands since the previous point (the paper's
methodology: quiet points "are unlikely to be of interest").  Reports the
average reconstruction (seek) latency per scenario.

Search: for each application benchmark, five single-word queries of text
randomly selected from its own database; for the desktop, ten multi-word
queries, a subset restricted to specific applications and time ranges (the
paper's methodology).  Reports average query latency.

Paper shape being reproduced: search <= ~10 ms for app benchmarks and
~20 ms for the desktop; browse between ~40 ms (video) and ~130 ms (web),
~200 ms for the desktop — all interactive.
"""

import json
import os

import numpy as np

from benchmarks.conftest import ALL_SCENARIOS, print_table
from repro.common.clock import VirtualClock
from repro.common.telemetry import Telemetry, percentile
from repro.common.units import ms, seconds
from repro.display.playback import PlaybackEngine
from repro.display.protocol import CommandLogReader
from repro.index.database import TemporalTextDatabase
from repro.index.query import Clause, Query
from repro.index.search import SearchEngine

ARTIFACT_SCHEMA = "dejaview.bench_fig5/v1"
ARTIFACT_NAME = "BENCH_fig5.json"


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_fig5.json`` (tests may run alone)."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)

SEARCH_SCENARIOS = [n for n in ALL_SCENARIOS if n not in ("gzip", "octave")]
"""gzip and octave put almost no text on screen; like the paper's Figure 5
(which shows no gzip bar) we skip scenarios without enough indexed text."""


def _browse_points(record, min_commands=100, samples=10):
    """Sample times with >=100 commands since the previous sample."""
    times = [ts for _cmd, ts, _off in CommandLogReader(record.log_bytes)]
    if not times:
        return []
    step = max(len(times) // samples, min_commands)
    points = []
    last = 0
    for i in range(step, len(times), step):
        if i - last >= min_commands:
            points.append(times[i])
            last = i
    return points or [times[-1]]


def _browse_latency(run):
    record = run.dejaview.display_record()
    engine = PlaybackEngine(record, clock=VirtualClock(),
                            cache_capacity=0)  # no cache: cold browses
    latencies = []
    for point in _browse_points(record):
        watch = engine.clock.stopwatch()
        engine.seek(point)
        latencies.append(watch.elapsed_us)
    return sum(latencies) / len(latencies) if latencies else 0.0


def _app_queries(database, rng, count=5):
    vocabulary = [t for t in database.vocabulary() if len(t) > 2]
    if not vocabulary:
        return []
    words = rng.choice(vocabulary, size=min(count, len(vocabulary)),
                       replace=False)
    return [Query.keywords(str(word)) for word in words]


def _desktop_queries(run, rng, count=10):
    database = run.dejaview.database
    vocabulary = [t for t in database.vocabulary() if len(t) > 2]
    end = run.end_us
    queries = []
    for i in range(count):
        words = rng.choice(vocabulary, size=2, replace=False)
        clause_kwargs = {}
        if i % 2 == 0:
            clause_kwargs["app"] = ["firefox", "openoffice", "gaim"][i % 3]
        clause = Clause(any_of=[str(w) for w in words], **clause_kwargs)
        time_range = {}
        if i % 3 == 0:
            time_range = {"start_us": end // 4, "end_us": 3 * end // 4}
        queries.append(Query(clauses=(clause,), **time_range))
    return queries


def _search_latencies(run, queries):
    database = run.dejaview.database
    engine = SearchEngine(database, playback=None)
    latencies = []
    for query in queries:
        watch = database.clock.stopwatch()
        engine.search(query, render=False)
        latencies.append(watch.elapsed_us)
    return latencies


def test_fig5_browse_and_search(benchmark, scenarios, request):
    def build():
        rng = np.random.default_rng(5)
        table = {}
        for name in ALL_SCENARIOS:
            run = scenarios.get(name)
            browse = _browse_latency(run)
            if name in SEARCH_SCENARIOS:
                if name == "desktop":
                    queries = _desktop_queries(run, rng)
                else:
                    queries = _app_queries(run.dejaview.database, rng)
                latencies = _search_latencies(run, queries)
                search = (sum(latencies) / len(latencies)
                          if latencies else 0.0)
            else:
                latencies = []
                search = None
            table[name] = {"browse": browse, "search": search,
                           "latencies": latencies}
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    _update_artifact(request.config.rootpath, "search_latency_us", {
        name: {
            "queries": len(entry["latencies"]),
            "mean": entry["search"],
            "p50": percentile(sorted(entry["latencies"]), 50),
            "p95": percentile(sorted(entry["latencies"]), 95),
            "browse_mean": entry["browse"],
        }
        for name, entry in table.items()
    })
    rows = [
        [
            name,
            "%.1f" % (table[name]["browse"] / 1000),
            "-" if table[name]["search"] is None
            else "%.2f" % (table[name]["search"] / 1000),
        ]
        for name in ALL_SCENARIOS
    ]
    print_table(
        "Figure 5 -- browse and search latency (ms)",
        ["scenario", "browse", "search"],
        rows,
        note="Paper: search <= 10 ms (apps) / ~20 ms (desktop); browse "
             "40-130 ms (apps) / ~200 ms (desktop).",
    )

    for name in ALL_SCENARIOS:
        entry = table[name]
        # Browse stays interactive: well under the 1 s usability threshold.
        assert entry["browse"] < ms(500), name
        if entry["search"] is not None:
            # "query times are fast enough to support interactive search".
            assert entry["search"] < ms(60), name

    # Desktop queries (multi-word + context over a larger index) cost more
    # than the single-word application queries.
    app_search = [table[n]["search"] for n in SEARCH_SCENARIOS
                  if n != "desktop"]
    assert table["desktop"]["search"] >= max(app_search) * 0.8

    # Web's command-dense pages browse slower than video's single-command
    # frames (130 ms vs 40 ms in the paper).
    assert table["web"]["browse"] > table["video"]["browse"]


def test_bench_seek_wallclock(benchmark, scenarios):
    """Wall-clock cost of one browse (seek) on the cat record."""
    run = scenarios.get("cat")
    engine = PlaybackEngine(run.dejaview.display_record(),
                            clock=VirtualClock())
    target = run.end_us
    benchmark(lambda: engine.seek(target))


def test_bench_query_wallclock(benchmark, scenarios):
    """Wall-clock cost of one keyword query over the desktop index."""
    run = scenarios.get("desktop")
    engine = SearchEngine(run.dejaview.database, playback=None)
    query = Query.keywords("report")
    benchmark(lambda: engine.search(query, render=False))


def _result_fingerprint(results):
    return [
        (r.timestamp_us, r.substream.start_us, r.substream.end_us,
         r.snippet, r.score)
        for r in results
    ]


def test_fig5_windowed_query_pruning(request):
    """Epoch-partitioned postings: a query over the last 10% of a long
    recording scans a small fraction of the posting list, and repeated
    identical queries are served bit-identically from the interval cache.

    This is the before/after story of the query-path overhaul: the seed
    implementation rescanned every posting from time zero regardless of
    the query window (scanned == total), so ``postings_scanned_windowed /
    postings_total`` is the pruning factor directly.
    """
    clock = VirtualClock()
    telemetry = Telemetry(clock)
    db = TemporalTextDatabase(clock, telemetry=telemetry)
    # A long "day": 1200 short-lived occurrences spread over two simulated
    # hours (120 one-minute epochs at the default bucket width).
    for i in range(1200):
        db.open_occurrence(1, "needle event %d" % i, app="firefox")
        clock.advance_us(seconds(3))
        db.close_occurrence(1)
        clock.advance_us(seconds(3))
    end_us = clock.now_us
    scanned = telemetry.metrics.counter("index.postings_scanned")
    pruned = telemetry.metrics.counter("index.postings_pruned")
    skipped = telemetry.metrics.counter("index.buckets_skipped")
    hits = telemetry.metrics.counter("index.interval_cache_hits")
    engine = SearchEngine(db, playback=None, telemetry=telemetry)
    postings_total = db.posting_count("needle")

    # Cold, unwindowed: the full-history scan the seed always paid.
    before = scanned.value
    full_results = engine.search(Query.keywords("needle"), render=False)
    scanned_full = scanned.value - before
    assert scanned_full == postings_total

    # Windowed over the last 10% of the recording: scans only the buckets
    # overlapping the window.
    window_start = int(end_us * 0.9)
    query = Query.keywords("needle", start_us=window_start, end_us=end_us)
    before_scanned, before_pruned = scanned.value, pruned.value
    before_skipped = skipped.value
    cold = engine.search(query, render=False)
    scanned_windowed = scanned.value - before_scanned
    pruned_windowed = pruned.value - before_pruned
    skipped_windowed = skipped.value - before_skipped
    assert cold, "the window contains matches"
    assert scanned_windowed <= postings_total
    assert scanned_windowed < 0.25 * scanned_full, (
        "windowed query must scan < 25%% of the seed's postings "
        "(scanned %d of %d)" % (scanned_windowed, postings_total))
    assert skipped_windowed > 0

    # Repeat the identical query: served from the interval cache, with
    # bit-identical results and no further posting scans.
    before_scanned, before_hits = scanned.value, hits.value
    warm = engine.search(query, render=False)
    cache_hits = hits.value - before_hits
    assert cache_hits > 0
    assert scanned.value == before_scanned
    assert _result_fingerprint(warm) == _result_fingerprint(cold)

    _update_artifact(request.config.rootpath, "windowed_pruning", {
        "recording_us": end_us,
        "window_start_us": window_start,
        "window_end_us": end_us,
        "postings_total": postings_total,
        "postings_scanned_full": scanned_full,
        "postings_scanned_windowed": scanned_windowed,
        "postings_pruned_windowed": pruned_windowed,
        "buckets_skipped_windowed": skipped_windowed,
        "scan_fraction": scanned_windowed / float(postings_total),
        "interval_cache_hits": cache_hits,
        "repeat_results_identical":
            _result_fingerprint(warm) == _result_fingerprint(cold),
        "windowed_results": len(cold),
        "full_results": len(full_results),
    })
