"""Fleet scaling: per-session checkpoint downtime and cross-session dedup.

Runs the mixed-scenario fleet at N in {1, 4, 16} sessions and reports,
for each size:

* the per-session checkpoint downtime p95 (worst member and the member
  running the ``web`` scenario, which is present at every N) — sessions
  run on independent virtual clocks, so downtime must NOT degrade as the
  fleet grows;
* the cross-session dedup ratio of the shared page store — the mix
  repeats scenarios, and identical scenarios produce byte-identical page
  streams, so the ratio must clear the acceptance gate (>= 20%) once the
  fleet holds repeats (N >= 4).

Writes ``BENCH_fleet.json`` in the pytest root for CI artifact upload.
"""

import json
import os

from benchmarks.conftest import print_table

MB = 1e6

ARTIFACT_SCHEMA = "dejaview.bench_fleet/v1"
ARTIFACT_NAME = "BENCH_fleet.json"

FLEET_SIZES = [1, 4, 16]
SEED = 1

#: Acceptance gate: cross-session dedup ratio at N >= 4.
DEDUP_GATE = 0.20


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_fleet.json`` (tests may run alone)."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def _downtime_p95(member):
    snapshot = member.dejaview.telemetry.snapshot()
    summary = snapshot["histograms"].get("checkpoint.downtime_us")
    return summary["p95"] if summary else 0


def _measure(sessions):
    from repro.workloads import run_fleet

    fleet = run_fleet(sessions, seed=SEED)
    members = fleet.members()
    assert all(m.state == "done" for m in members)
    stats = fleet.stats()
    downtime = {m.name: _downtime_p95(m) for m in members}
    return {
        "sessions": sessions,
        "seed": SEED,
        "dedup_ratio": fleet.dedup_ratio(),
        "cross_pages_deduped": fleet.cas.cross_pages_deduped,
        "cross_dedup_bytes_saved": fleet.cas.cross_dedup_bytes_saved,
        "physical_page_bytes": stats["cas"]["physical_uncompressed_bytes"],
        "service_clock_us": stats["service_clock_us"],
        "downtime_p95_us": downtime,
        "downtime_p95_web_us": downtime["s00"],  # s00 is web at every N
        "downtime_p95_worst_us": max(downtime.values()),
        "rollup_downtime_p95_us": stats["rollup"]["histograms"]
        ["checkpoint.downtime_us"]["p95"],
    }


def test_fleet_scaling(request):
    """Dedup ratio clears the gate once scenarios repeat, and per-session
    downtime is flat in fleet size (isolation: the scheduler interleaves
    virtual clocks, it never inflates a member's own costs)."""
    results = [_measure(n) for n in FLEET_SIZES]

    rows = [
        [
            str(r["sessions"]),
            "%.1f%%" % (r["dedup_ratio"] * 100),
            "%.2f" % (r["physical_page_bytes"] / MB),
            "%.2f" % (r["downtime_p95_web_us"] / 1000.0),
            "%.2f" % (r["downtime_p95_worst_us"] / 1000.0),
            "%.2f" % (r["service_clock_us"] / 1e6),
        ]
        for r in results
    ]
    print_table(
        "Fleet scaling -- shared-CAS dedup and per-session downtime",
        ["N", "dedup", "phys MB", "web p95 ms", "worst p95 ms",
         "svc clock s"],
        rows,
        note="gate: dedup >= %.0f%% at N >= 4; web downtime p95 "
             "identical at every N" % (DEDUP_GATE * 100),
    )

    by_n = {r["sessions"]: r for r in results}

    # A 1-session fleet has nothing to share.
    assert by_n[1]["cross_pages_deduped"] == 0
    assert by_n[1]["dedup_ratio"] == 0.0

    # Repeated scenarios dedup across sessions: the acceptance gate.
    for n in FLEET_SIZES:
        if n >= 4:
            assert by_n[n]["dedup_ratio"] >= DEDUP_GATE, (
                "N=%d dedup %.3f below gate" % (n, by_n[n]["dedup_ratio"]))
    assert by_n[16]["cross_dedup_bytes_saved"] > by_n[4][
        "cross_dedup_bytes_saved"]

    # Isolation in time: the web member's downtime p95 is the same number
    # no matter how many other sessions the fleet interleaves.
    web_p95 = {r["downtime_p95_web_us"] for r in results}
    assert len(web_p95) == 1, "downtime varied with fleet size: %s" % (
        sorted(web_p95),)

    _update_artifact(request.config.rootpath, "scaling", results)
