"""Fleet scaling: downtime, dedup, and writeback backlog vs fleet size.

Runs the mixed-scenario fleet at N in {16, 64, 256} sessions (uniform
``units_scale`` so every N records the *same* per-member workloads) and
reports, for each size:

* the per-session checkpoint downtime p95 (worst member and the member
  running the ``web`` scenario, which is s00 at every N) — sessions run
  on independent virtual clocks and the stopped window contains *no*
  storage work (writeback is pipelined through the sharded page store's
  append queues), so downtime must NOT move as the fleet grows;
* the cross-session dedup ratio of the shared page store — the mix
  repeats scenarios, so the ratio must clear the acceptance gate
  (>= 20%) and never degrade as N grows;
* the writeback backlog p95 (bytes queued across the shard append
  queues, observed at every scheduler step) — the group-commit
  scheduler's backpressure quota must keep it flat as N scales, and the
  shutdown drain must always return it to zero.

A second section sweeps the shard count at N=16 (K in {1, 4, 8}):
sharding is a physical layout choice, so dedup ratio and downtime must
be *identical* at every K.

Writes ``BENCH_fleet.json`` in the pytest root for CI artifact upload.
"""

import gc
import json
import os

from benchmarks.conftest import print_table

MB = 1e6

ARTIFACT_SCHEMA = "dejaview.bench_fleet/v1"
ARTIFACT_NAME = "BENCH_fleet.json"

FLEET_SIZES = [16, 64, 256]
SEED = 1

#: One scale for every N: the downtime-equality gate compares the s00
#: (web) member across fleet sizes, which is only meaningful when it
#: records the same number of units at every N.
UNITS_SCALE = 0.25

#: Shard counts swept at N=16.
SHARD_COUNTS = [1, 4, 8]

#: Acceptance gate: cross-session dedup ratio.
DEDUP_GATE = 0.20


def _update_artifact(rootpath, section, payload):
    """Merge one section into ``BENCH_fleet.json`` (tests may run alone)."""
    path = os.path.join(str(rootpath), ARTIFACT_NAME)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["schema"] = ARTIFACT_SCHEMA
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)


def _downtime_p95(member):
    snapshot = member.dejaview.telemetry.snapshot()
    summary = snapshot["histograms"].get("checkpoint.downtime_us") or {}
    return summary.get("p95") or 0


def _run(sessions, shards=None):
    """One fleet run with the cyclic GC paused: a 256-session fleet is
    millions of long-lived objects, and CPython's generational collector
    rescans that static graph on every threshold crossing — pausing it
    changes nothing simulated (the run is deterministic either way) but
    keeps the wall time linear in N."""
    from repro.workloads import run_fleet

    kwargs = {}
    if shards is not None:
        kwargs["shards"] = shards
    gc.disable()
    try:
        return run_fleet(sessions, seed=SEED, units_scale=UNITS_SCALE,
                         **kwargs)
    finally:
        gc.enable()


def _measure(sessions, shards=None):
    fleet = _run(sessions, shards=shards)
    members = fleet.members()
    assert all(m.state == "done" for m in members)
    stats = fleet.stats()
    web = fleet.member("s00")  # s00 is web at every N
    backlog = fleet.telemetry.metrics.snapshot()["histograms"].get(
        "fleet.writeback_backlog") or {"p95": 0, "max": 0, "count": 0}
    # The acceptance criterion in one pair of numbers: the stopped
    # window is quiesce+capture+fs_snapshot only, while the storage time
    # is accounted separately as writeback_us.
    web_history = web.dejaview.engine.history
    assert all(
        r.downtime_us == r.quiesce_us + r.capture_us + r.fs_snapshot_us
        for r in web_history)
    row = {
        "sessions": sessions,
        "seed": SEED,
        "units_scale": UNITS_SCALE,
        "shards": stats["writeback"]["shards"],
        "dedup_ratio": fleet.dedup_ratio(),
        "cross_pages_deduped": fleet.cas.cross_pages_deduped,
        "cross_dedup_bytes_saved": fleet.cas.cross_dedup_bytes_saved,
        "physical_page_bytes": stats["cas"]["physical_uncompressed_bytes"],
        "service_clock_us": stats["service_clock_us"],
        "downtime_p95_web_us": _downtime_p95(web),
        "downtime_p95_worst_us": max(_downtime_p95(m) for m in members),
        "rollup_downtime_p95_us": stats["rollup"]["histograms"]
        ["checkpoint.downtime_us"]["p95"],
        "web_writeback_us_total": sum(r.writeback_us for r in web_history),
        "writeback_backlog_p95_bytes": backlog["p95"],
        "writeback_backlog_max_bytes": backlog["max"],
        "writeback_backlog_end_bytes": stats["writeback"]["backlog_bytes"],
        "max_backlog_bytes": stats["writeback"]["max_backlog_bytes"],
        "flush_batches": stats["writeback"]["flush_batches"],
        "flush_bytes": stats["writeback"]["flush_bytes"],
        "backlog_force_flushes": stats["writeback"]
        ["backlog_force_flushes"],
    }
    del fleet, members, stats, web
    gc.collect()  # release this fleet before the next (bigger) one
    return row


def test_fleet_scaling(request):
    """Per-session downtime and dedup are flat in fleet size, and the
    group-commit writeback keeps the queue backlog bounded: the
    scheduler interleaves virtual clocks and pipelines storage, so a
    bigger fleet never inflates a member's stopped window."""
    results = [_measure(n) for n in FLEET_SIZES]

    rows = [
        [
            str(r["sessions"]),
            "%.1f%%" % (r["dedup_ratio"] * 100),
            "%.2f" % (r["physical_page_bytes"] / MB),
            "%.2f" % (r["downtime_p95_web_us"] / 1000.0),
            "%.2f" % (r["web_writeback_us_total"] / 1000.0),
            "%.1f" % (r["writeback_backlog_p95_bytes"] / 1024.0),
            str(r["flush_batches"]),
            "%.2f" % (r["service_clock_us"] / 1e6),
        ]
        for r in results
    ]
    print_table(
        "Fleet scaling -- downtime, dedup, writeback backlog",
        ["N", "dedup", "phys MB", "web p95 ms", "web wb ms",
         "backlog p95 KiB", "flushes", "svc clock s"],
        rows,
        note="gates: dedup >= %.0f%% and non-decreasing; web downtime "
             "p95 identical at every N (storage time excluded); backlog "
             "p95 flat in N; queues drained at shutdown"
             % (DEDUP_GATE * 100),
    )

    by_n = {r["sessions"]: r for r in results}

    # Dedup: clears the gate everywhere and never degrades as N grows.
    for n in FLEET_SIZES:
        assert by_n[n]["dedup_ratio"] >= DEDUP_GATE, (
            "N=%d dedup %.3f below gate" % (n, by_n[n]["dedup_ratio"]))
    for smaller, larger in zip(FLEET_SIZES, FLEET_SIZES[1:]):
        assert by_n[larger]["dedup_ratio"] >= by_n[smaller]["dedup_ratio"]
        assert by_n[larger]["cross_dedup_bytes_saved"] > \
            by_n[smaller]["cross_dedup_bytes_saved"]

    # Isolation in time: the web member's downtime p95 is the same
    # number no matter how many other sessions the fleet interleaves —
    # and its storage time is nonzero but accounted *outside* the
    # stopped window (writeback_us separate; checked per-checkpoint in
    # _measure).
    web_p95 = {r["downtime_p95_web_us"] for r in results}
    assert len(web_p95) == 1, "downtime varied with fleet size: %s" % (
        sorted(web_p95),)
    for r in results:
        assert r["web_writeback_us_total"] > 0

    # Writeback backlog: flat in N.  The quota is a flush *trigger*, not
    # an observation ceiling — one checkpoint can enqueue more than the
    # quota in a single step before the scheduler reacts — so the gate
    # is that the per-step p95 never *grows* with fleet size (a bigger
    # fleet takes more steps between any one member's checkpoints, so
    # queues drain more often relative to observations), and that the
    # shutdown barrier always drains to zero.
    baseline_p95 = by_n[FLEET_SIZES[0]]["writeback_backlog_p95_bytes"]
    for r in results:
        assert r["writeback_backlog_p95_bytes"] <= baseline_p95, (
            "N=%d backlog p95 %d grew past the N=%d baseline %d"
            % (r["sessions"], r["writeback_backlog_p95_bytes"],
               FLEET_SIZES[0], baseline_p95))
        assert r["writeback_backlog_end_bytes"] == 0
        assert r["flush_batches"] > 0

    _update_artifact(request.config.rootpath, "scaling", results)


def test_shard_count_sweep(request):
    """Sharding is physical only: at fixed N, every shard count yields
    identical dedup ratio and downtime (the digests move between
    extents, never between owners or clocks)."""
    results = [_measure(16, shards=k) for k in SHARD_COUNTS]

    print_table(
        "Shard sweep at N=16 -- layout must not move a logical number",
        ["K", "dedup", "web p95 ms", "backlog p95 KiB", "flushes"],
        [
            [
                str(r["shards"]),
                "%.3f%%" % (r["dedup_ratio"] * 100),
                "%.3f" % (r["downtime_p95_web_us"] / 1000.0),
                "%.1f" % (r["writeback_backlog_p95_bytes"] / 1024.0),
                str(r["flush_batches"]),
            ]
            for r in results
        ],
        note="gates: dedup ratio and downtime p95 exactly equal across "
             "K; queues drained at shutdown",
    )

    dedup = {r["dedup_ratio"] for r in results}
    assert len(dedup) == 1, "dedup ratio varied with shard count: %s" % (
        sorted(dedup),)
    downtime = {r["downtime_p95_web_us"] for r in results}
    assert len(downtime) == 1, \
        "downtime p95 varied with shard count: %s" % (sorted(downtime),)
    physical = {r["physical_page_bytes"] for r in results}
    assert len(physical) == 1, "physical bytes varied with shard count"
    for r in results:
        assert r["writeback_backlog_end_bytes"] == 0

    _update_artifact(request.config.rootpath, "shard_sweep", results)
