"""Ablation: the section 5.1.2 optimizations, removed one at a time.

The paper states: "we attempted the same experiments without these
optimizations for minimizing downtime, but could not run them.  The
unoptimized mechanism was too slow to checkpoint at the once a second rate
DejaView uses."  This bench quantifies that claim on a memory-heavy session
(an octave-like working set), toggling each optimization individually and
all together, and also ablates two other design choices DESIGN.md calls
out: the indexing daemon's mirror tree and playback command pruning.
"""

from benchmarks.conftest import print_table
from repro.checkpoint.engine import EngineOptions
from repro.common.units import ms

CONFIGS = [
    ("all optimizations", EngineOptions()),
    ("no COW capture", EngineOptions(use_cow=False)),
    ("no incremental", EngineOptions(use_incremental=False)),
    ("no deferred writeback", EngineOptions(defer_writeback=False)),
    ("no pre-snapshot", EngineOptions(pre_snapshot=False)),
    ("no pre-quiesce", EngineOptions(pre_quiesce=False)),
    ("none (unoptimized)", EngineOptions(
        use_cow=False, use_incremental=False, defer_writeback=False,
        pre_snapshot=False, pre_quiesce=False,
    )),
]


def _measure(options):
    """A busy multi-process session: dirty pages, fs writes, pending I/O."""
    from repro.common.costs import PAGE_SIZE
    from tests.test_checkpoint_engine import make_rig

    kernel, container, fsstore, _storage, engine, procs = make_rig(
        options=options, nprocs=6, pages_per_proc=1024
    )
    results = []
    for round_index in range(4):
        # Dirty a realistic per-second working set before each checkpoint.
        for proc in procs[:3]:
            space = proc.address_space
            region = space.regions()[0]
            for page in range(256):
                space.write(region.start + page * PAGE_SIZE,
                            b"round-%d" % round_index)
        fsstore.fs.write_file("/home/user/out.dat", bytes(64 * PAGE_SIZE))
        procs[1].begin_io(kernel.clock.now_us, ms(15))
        results.append(engine.checkpoint())
    downtime = sum(r.downtime_us for r in results[1:]) / (len(results) - 1)
    total = sum(r.total_us for r in results[1:]) / (len(results) - 1)
    return downtime, total


def test_ablation_checkpoint_optimizations(benchmark):
    table = benchmark.pedantic(
        lambda: {name: _measure(options) for name, options in CONFIGS},
        rounds=1, iterations=1,
    )
    rows = [
        [name, "%.2f" % (down / 1000), "%.1f" % (total / 1000)]
        for name, (down, total) in table.items()
    ]
    print_table(
        "Ablation -- checkpoint optimizations (avg ms per checkpoint)",
        ["configuration", "downtime", "total"],
        rows,
        note="Paper: the unoptimized mechanism was too slow to checkpoint "
             "once per second.",
    )

    optimized_down, optimized_total = table["all optimizations"]
    unoptimized_down, _unoptimized_total = table["none (unoptimized)"]

    # Fully optimized: interactive-grade downtime.
    assert optimized_down < ms(15)
    # Removing everything costs orders of magnitude of downtime ("reducing
    # application downtime from checkpointing by up to two orders of
    # magnitude", section 7).
    assert unoptimized_down > 20 * optimized_down
    # Every single ablation hurts downtime or leaves it unchanged.
    for name, (down, _total) in table.items():
        assert down >= optimized_down * 0.9, name
    # The single most important downtime optimizations on this workload:
    # COW capture and deferred writeback.
    assert table["no deferred writeback"][0] > 2 * optimized_down
    assert table["no COW capture"][0] > optimized_down


def test_ablation_mirror_tree(benchmark):
    """Mirror tree vs per-event real-tree traversal (section 4.2)."""
    from tests.test_access_daemon import make_desktop
    from repro.access.toolkit import Role

    def measure(use_mirror):
        clock, _reg, _db, app, _w, doc, _daemon = make_desktop(use_mirror)
        for i in range(60):
            app.add_node(doc, Role.TEXT, text="filler %d" % i)
        node = app.add_node(doc, Role.PARAGRAPH, text="target")
        start = clock.now_us
        for i in range(20):
            app.set_text(node, "update %d" % i)
        return (clock.now_us - start) / 20

    mirror_us, naive_us = benchmark.pedantic(
        lambda: (measure(True), measure(False)), rounds=1, iterations=1
    )
    print_table(
        "Ablation -- indexing daemon event cost (us per text-change event)",
        ["strategy", "us/event"],
        [["mirror tree + hash map", "%.0f" % mirror_us],
         ["real-tree traversal", "%.0f" % naive_us]],
        note="Paper: traversing the real accessible tree 'can take a couple "
             "seconds and destroy interactive responsiveness'.",
    )
    assert naive_us > 20 * mirror_us


def test_ablation_playback_pruning(benchmark, scenarios):
    """Command pruning vs naive replay for browse (section 4.3)."""
    from repro.common.clock import VirtualClock
    from repro.display.playback import PlaybackEngine

    def measure():
        run = scenarios.get("web")
        record = run.dejaview.display_record()
        out = {}
        for label, prune in (("pruned", True), ("naive", False)):
            engine = PlaybackEngine(record, clock=VirtualClock(),
                                    cache_capacity=0, prune=prune)
            watch = engine.clock.stopwatch()
            _fb, stats = engine.seek(run.end_us)
            out[label] = (watch.elapsed_us, stats.commands_applied)
        return out

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation -- playback command pruning (seek to end of web record)",
        ["strategy", "latency ms", "commands applied"],
        [[label, "%.1f" % (us / 1000), n] for label, (us, n) in table.items()],
    )
    pruned_us, pruned_n = table["pruned"]
    naive_us, naive_n = table["naive"]
    assert pruned_n < naive_n
    assert pruned_us < naive_us
