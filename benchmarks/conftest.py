"""Shared infrastructure for the evaluation harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
section 6.  The simulated quantities (normalized overhead, checkpoint
latency, storage growth, browse/search latency, playback speedup, revive
latency) are computed from full scenario runs on the virtual clock and
printed as the same rows/series the paper reports; the pytest-benchmark
fixture additionally measures the real wall-clock cost of this
implementation's core operations.

Scenario runs are expensive, so they are cached per (scenario, recording
configuration, units) for the whole pytest session.

At the end of every bench session, the telemetry snapshot of each cached
scenario run is written to ``BENCH_telemetry.json`` in the pytest root —
one entry per (scenario, kind, compress, units) — so CI and offline
analysis can inspect counters, histogram summaries, and span totals
without re-running the workloads.
"""

import json
import os

import pytest

from repro.desktop.dejaview import RecordingConfig
from repro.workloads import run_scenario

#: The scenarios of Table 1 in presentation order (desktop last, as in the
#: paper's figures).
APP_SCENARIOS = ["web", "video", "untar", "gzip", "make", "octave", "cat"]
ALL_SCENARIOS = APP_SCENARIOS + ["desktop"]

#: Unit counts tuned so the full harness runs in minutes of host time while
#: every scenario still spans many checkpoints.
BENCH_UNITS = {
    "web": 54,       # the iBench page count
    "video": 480,    # a 20-second clip at 24 fps
    "untar": 1200,
    "gzip": 128,
    "make": 240,
    "octave": 50,
    "cat": 300,
    "desktop": 420,  # seven simulated minutes under the policy
}


def recording_config(kind, compress=False):
    """Build the per-component recording configs of Figure 2."""
    if kind == "none":
        return RecordingConfig(record_display=False, record_index=False,
                               record_checkpoints=False)
    if kind == "display":
        return RecordingConfig(record_index=False, record_checkpoints=False)
    if kind == "index":
        return RecordingConfig(record_display=False, record_checkpoints=False)
    if kind == "checkpoint":
        return RecordingConfig(record_display=False, record_index=False,
                               compress_checkpoints=compress)
    if kind == "full":
        return RecordingConfig(compress_checkpoints=compress)
    raise ValueError(kind)


class ScenarioCache:
    """Session-wide cache of scenario runs."""

    def __init__(self):
        self._runs = {}

    def get(self, name, kind="full", compress=False, units=None):
        units = units if units is not None else BENCH_UNITS[name]
        key = (name, kind, compress, units)
        if key not in self._runs:
            config = recording_config(kind, compress)
            if name == "desktop" and kind in ("full", "checkpoint"):
                config.use_policy = True
            self._runs[key] = run_scenario(name, recording=config,
                                           units=units)
        return self._runs[key]

    def telemetry_report(self):
        """JSON-ready telemetry snapshots of every cached run."""
        report = {}
        for (name, kind, compress, units), run in sorted(self._runs.items()):
            label = "%s/%s%s/units=%d" % (
                name, kind, "+compress" if compress else "", units)
            report[label] = run.dejaview.telemetry_snapshot(span_limit=2)
        return report


#: The session's cache, kept module-global so pytest_sessionfinish can dump
#: its telemetry even though fixtures are already torn down by then.
_SESSION_CACHE = [None]


@pytest.fixture(scope="session")
def scenarios():
    cache = ScenarioCache()
    _SESSION_CACHE[0] = cache
    return cache


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_telemetry.json`` after a bench run (artifact for CI)."""
    cache = _SESSION_CACHE[0]
    if cache is None or not cache._runs:
        return
    path = os.path.join(str(session.config.rootpath),
                        "BENCH_telemetry.json")
    with open(path, "w") as fh:
        json.dump(cache.telemetry_report(), fh, indent=2, default=str)


_CAPTURE_MANAGER = [None]


def pytest_configure(config):
    # The figure tables are the harness's primary output: they must appear
    # in the report even without `pytest -s`, so print_table temporarily
    # disables pytest's (fd-level) capture while emitting them.
    _CAPTURE_MANAGER[0] = config.pluginmanager.getplugin("capturemanager")


class _uncaptured:
    def __enter__(self):
        manager = _CAPTURE_MANAGER[0]
        self._cm = (
            manager.global_and_fixture_disabled() if manager is not None
            else None
        )
        if self._cm is not None:
            self._cm.__enter__()
        return self

    def __exit__(self, *exc):
        if self._cm is not None:
            self._cm.__exit__(*exc)
        return False


def print_table(title, headers, rows, note=None):
    """Render one figure's data as an aligned text table (uncaptured)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    with _uncaptured():
        print()
        print("=" * len(line))
        print(title)
        print("=" * len(line))
        print(line)
        print("-" * len(line))
        for row in rows:
            print("  ".join(str(cell).ljust(w)
                            for cell, w in zip(row, widths)))
        if note:
            print("-" * len(line))
            print(note)
        print()
