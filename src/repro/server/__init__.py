"""Multi-session recording service (fleet mode)."""

from repro.server.fleet import (  # noqa: F401
    Fleet,
    FleetError,
    FleetSession,
    SessionQuotas,
)
