"""A fleet member forked from another member's checkpoint.

"DejaView's combination of unioning and file system snapshots provides a
branchable file system to enable DejaView to create multiple revived
sessions from a single checkpoint" (section 5.2).  A
:class:`BranchSession` is the session-shaped stack around one such
revived moment: the parent's checkpoint is demand-paged out of the
shared page store, the file system is a COW union mount over the
parent's read-only LFS snapshot, and everything that *charges* — reads,
copy-ups, new writes — lands on the branch's own virtual clock, so the
fork never perturbs the parent's timeline (the fleet's byte-identity
invariant extends to branches).

Branch-visible nondeterminism at fork time — section 5.2 socket resets
and the fresh container identity — is logged through the branch's
replay tap, never re-derived: a replayed fork must reproduce the
recorded resets verbatim.
"""

from repro.access.registry import DesktopRegistry
from repro.checkpoint.restore import ReviveManager
from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.faults import resolve_faults
from repro.common.flightrec import NULL_SCOPE
from repro.desktop.session import DEFAULT_HEIGHT, DEFAULT_WIDTH, \
    DesktopSession
from repro.display.driver import VirtualDisplayDriver
from repro.display.viewer import Viewer
from repro.fs.branch import RevivedStore
from repro.replay.tap import resolve_tap
from repro.vex.kernel import Kernel

FP_BRANCH_MOUNT = "revive.branch.mount"


class BranchSession(DesktopSession):
    """A desktop session revived from a *foreign* checkpoint.

    Reuses the :class:`DesktopSession` surface (launch/quit/input/fs)
    over a stack assembled by forking instead of booting: the kernel and
    clock are fresh (the clock starts at the source checkpoint's
    timestamp — the branch resumes the past moment on its own timeline),
    the container and process forest come from
    :class:`~repro.checkpoint.restore.ReviveManager`, and the file
    system is the revive's COW union mount used *directly* as the
    session fs, so copy-up/whiteout semantics govern every write while
    un-diverged files stay shared with the parent snapshot.
    """

    def __init__(self, name, source_fsstore, source_storage, checkpoint_id,
                 start_us, width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT,
                 costs=DEFAULT_COSTS, cached=True, network_enabled=False,
                 demand_paging=True, attach_viewer=False, replay_tap=None,
                 faults=None):
        self.clock = VirtualClock(start_us=start_us)
        self.costs = costs
        self.name = name
        self.replay = resolve_tap(replay_tap)
        if self.replay.active:
            self.clock.bind_replay(self.replay)
        self.kernel = Kernel(clock=self.clock, costs=costs)
        self.kernel.replay = self.replay
        # The mount failpoint: the fleet has admitted the branch but the
        # revived container and its union mount do not exist yet.  A
        # crash here leaves only the member shell to reclaim.
        resolve_faults(faults).check(FP_BRANCH_MOUNT)
        # The forker reads the *parent's* storage and file-system store
        # but charges this branch's clock (foreign-clock reads) and logs
        # fork nondeterminism through this branch's tap.
        self.forker = ReviveManager(self.kernel, source_fsstore,
                                    source_storage, replay=self.replay)
        self.revive_result = self.forker.revive(
            checkpoint_id, cached=cached,
            network_enabled=network_enabled,
            demand_paging=demand_paging,
        )
        self.container = self.revive_result.container
        self.mount = self.container.mount
        self.fsstore = RevivedStore(self.mount, clock=self.clock,
                                    costs=costs)
        self.source_checkpoint = checkpoint_id
        self.pager = self.revive_result.pager
        # The restored forest carries the parent's init and display
        # server under their original vpids.
        self.init_process = self._find_process("init")
        if self.init_process is None:
            self.init_process = self.container.spawn("init")
        self.display_server = self._find_process("display-server")
        if self.display_server is not None:
            self.container.namespace.bind(
                "display", ":0", self.display_server)
        self.driver = VirtualDisplayDriver(width, height, clock=self.clock,
                                           costs=costs)
        self.viewer = None
        if attach_viewer:
            self.viewer = Viewer(width, height, clock=self.clock,
                                 costs=costs)
            self.driver.attach_sink(self.viewer)
        self.registry = DesktopRegistry(self.clock, costs=costs)
        self.apps = {}
        self.flight = NULL_SCOPE
        from repro.desktop.input import InputRouter

        self.input_router = InputRouter(self)

    def _find_process(self, name):
        for process in self.container.live_processes():
            if process.name == name:
                return process
        return None

    @property
    def fs(self):
        """The branch's live file system: the COW union mount itself.
        Whole-file rewrites land in the writable layer for free; appends
        and in-place writes copy up; deletes whiteout — exactly the
        section 5.2 branch semantics."""
        return self.mount
