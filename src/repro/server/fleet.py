"""A multi-session recording service.

The paper's viewer already revives several past sessions side by side;
this module makes the *recording* side multi-tenant: a :class:`Fleet`
hosts N independent :class:`~repro.desktop.dejaview.DejaView` sessions
and multiplexes them on one service clock through a deterministic
cooperative scheduler.

**Shared vs. per-session ownership.**  Each admitted session keeps its
own virtual clock, cost charging, telemetry registry, fault plan, display
record, text index, and file system — the complete single-user recording
stack — so its simulated behavior is *bit-identical* to running alone
(the isolation property ``tests/test_fleet_isolation.py`` pins).  Exactly
one thing is shared: the content-addressed checkpoint page store
(:class:`~repro.checkpoint.storage.ShardedPageCAS`), where identical
pages dedup across sessions.  Sharing stays invisible to the members
because the storage layer charges clocks and accounts bytes by *owner
visibility*: what another session has stored never changes what this
session pays.

**Async group-commit writeback.**  The shared store runs with
``async_writeback=True``: a member's checkpoint writeback only *enqueues*
page appends on the store's consistent-hash shards and returns — no
member ever waits on fleet storage.  The service flushes shard queues as
group commits on its own schedule (per-shard size threshold after each
step, every queue on the rollup heartbeat, everything when the total
backlog crosses the backpressure quota) and journals each batch as a
:data:`~repro.common.flightrec.REC_FLUSH` record.  Flushes are physical
background I/O overlapping member execution, so they advance neither the
service clock nor any member clock; :meth:`drain_writeback` (used by GC,
compaction, and shutdown) is the only barrier that waits for the queues
to empty.

**Scheduler determinism contract.**  Runnable sessions are stepped by a
seeded weighted draw (``random.Random(seed)`` over the admission-ordered
runnable set), so the same admissions + seed reproduce the same
interleaving exactly.  Because sessions share no behavior-affecting
state, *any* interleaving yields the same per-session recordings — the
seed picks which one the service clock observes, not what gets recorded.

**Service clock.**  The fleet's clock models the host multiplexing one
core across sessions: each step advances it by the session virtual time
that step consumed.  At completion it reads the sum of all session
activity — the serialized cost of hosting the fleet.

**Quotas.**  Per-session recording quotas (checkpoint bytes, display log
bytes, index occurrences) are enforced *after* each step from the
session's own telemetry counters; a session that crosses a limit is
parked as ``throttled`` and stops being scheduled.  Enforcement reads
counters only — it never reaches into subsystems — so an unquota'd fleet
records exactly what solo runs would.

**Crash containment.**  An :class:`~repro.common.faults.InjectedCrash`
escaping a session's step kills *that session* (state ``crashed``); the
scheduler drops it and the rest of the fleet keeps recording.
:meth:`Fleet.recover_session` runs the member's full crash recovery —
whose shared-CAS fsck rebuilds only that owner's refcounts, so recovery
can never reclaim pages a healthy session still references.
"""

import random
from dataclasses import dataclass

from repro.checkpoint.gc import prune_checkpoints
from repro.checkpoint.storage import GROUP_COMMIT_BYTES, ShardedPageCAS
from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import DejaViewError
from repro.common.faults import (
    InjectedCrash,
    registered_failpoints,
    resolve_faults,
)
from repro.common.flightrec import (
    REC_EVENT,
    REC_FLUSH,
    REC_QUOTA,
    REC_RECOVERY,
    REC_SCHED,
    resolve_flightrec,
)
from repro.common.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    rollup_snapshots,
)
from repro.desktop.session import DesktopSession
from repro.replay.tap import resolve_tap

#: Session lifecycle states.
RUNNING = "running"
DONE = "done"
CRASHED = "crashed"
THROTTLED = "throttled"
RECOVERED = "recovered"


class FleetError(DejaViewError):
    """Admission or scheduling request the fleet cannot honor."""


@dataclass
class SessionQuotas:
    """Per-session recording limits, enforced from telemetry counters.

    ``None`` disables a limit.  A session exceeding any limit after a
    step is parked as ``throttled`` — its recording stays valid and
    revivable, it just stops being scheduled.
    """

    checkpoint_bytes: int = None  # counter checkpoint.image_bytes
    log_bytes: int = None  # counter display.log_bytes
    index_occurrences: int = None  # counter index.inserts

    _COUNTERS = (
        ("checkpoint_bytes", "checkpoint.image_bytes"),
        ("log_bytes", "display.log_bytes"),
        ("index_occurrences", "index.inserts"),
    )

    def violation(self, metrics):
        """The first ``(quota_name, used, limit)`` exceeded, or None."""
        for attr, counter in self._COUNTERS:
            limit = getattr(self, attr)
            if limit is None:
                continue
            used = metrics.counter(counter).value
            if used > limit:
                return (attr, used, limit)
        return None


class FleetSession:
    """One admitted member: its stack plus scheduler bookkeeping.

    ``kind`` is ``"member"`` for a forward-recording admission or
    ``"branch"`` for a session forked from another member's checkpoint
    (``parent``/``source_checkpoint`` name the fork point; ``fork``
    carries the fork's latency and sharing figures).  A branch killed
    mid-fork is registered as a *shell* — ``session``/``dejaview``/
    ``run``/``steps`` may be None until :meth:`Fleet.recover_session`
    reclaims it.
    """

    __slots__ = ("name", "scenario", "weight", "session", "dejaview",
                 "run", "steps", "state", "units_done", "quotas",
                 "quota_violation", "crash_site", "kind", "parent",
                 "source_checkpoint", "fork")

    def __init__(self, name, scenario, weight, session, dejaview, run,
                 steps, quotas, kind="member", parent=None,
                 source_checkpoint=None, fork=None):
        self.name = name
        self.scenario = scenario
        self.weight = weight
        self.session = session
        self.dejaview = dejaview
        self.run = run
        self.steps = steps
        self.state = RUNNING
        self.units_done = 0
        self.quotas = quotas
        self.quota_violation = None
        self.crash_site = None
        self.kind = kind
        self.parent = parent
        self.source_checkpoint = source_checkpoint
        self.fork = fork

    @property
    def runnable(self):
        return self.state == RUNNING and self.steps is not None

    @property
    def is_branch(self):
        return self.kind == "branch"

    def describe(self):
        info = {
            "scenario": self.scenario,
            "state": self.state,
            "units_done": self.units_done,
            "units_total": self.run.units if self.run is not None else 0,
            "weight": self.weight,
            "clock_us": (self.session.clock.now_us
                         if self.session is not None else 0),
            "checkpoints": (self.dejaview.checkpoint_count
                            if self.dejaview is not None else 0),
            "kind": self.kind,
        }
        if self.is_branch:
            info["parent"] = self.parent
            info["source_checkpoint"] = self.source_checkpoint
            if self.fork is not None:
                info["fork"] = dict(self.fork)
        if self.quota_violation is not None:
            attr, used, limit = self.quota_violation
            info["quota_violation"] = {
                "quota": attr, "used": used, "limit": limit}
        if self.crash_site is not None:
            info["crash_site"] = self.crash_site
        return info


class Fleet:
    """N recording sessions, one service clock, one shared page store."""

    def __init__(self, seed=0, max_sessions=16, costs=DEFAULT_COSTS,
                 quotas=None, telemetry_enabled=True, flightrec=None,
                 watchdog=None, rollup_every=64, shards=4,
                 group_commit_bytes=GROUP_COMMIT_BYTES,
                 max_backlog_bytes=None, replay_tap=None, thinning=None):
        """``flightrec`` (a
        :class:`~repro.common.flightrec.FlightRecorder`) journals
        scheduler decisions, quota throttles, lifecycle events, and
        counter-delta rollups on the service clock, and is injected into
        every admitted member so their spans/faults/recoveries land in
        the same journal under their own owner names.  ``watchdog`` (an
        :class:`~repro.common.slo.SLOWatchdog`) is evaluated on the
        rollup cadence (every ``rollup_every`` steps) and at
        :meth:`stats`; its alert records join the journal.

        ``shards`` sets the shared store's consistent-hash shard count;
        ``group_commit_bytes`` is the per-shard queue depth that triggers
        a flush after a step; ``max_backlog_bytes`` (default ``8 *
        group_commit_bytes``) is the total-backlog backpressure quota
        that force-flushes every shard at once.

        ``thinning`` (a :class:`~repro.checkpoint.gc.ThinningPolicy`)
        enables age-tiered checkpoint thinning on the rollup cadence:
        every member's older instants are tombstoned down to sparse
        replay anchors, with branch fork points pinned so a
        ``revive.branch.*`` survivor is never thinned out from under a
        live branch.  ``None`` (the default) disables automatic
        thinning; :meth:`thin` still works on demand."""
        self.seed = seed
        self.max_sessions = max_sessions
        self.costs = costs
        self.default_quotas = quotas
        self.clock = VirtualClock()
        self.cas = ShardedPageCAS(shards=shards, async_writeback=True)
        self.group_commit_bytes = group_commit_bytes
        self.max_backlog_bytes = (max_backlog_bytes
                                  if max_backlog_bytes is not None
                                  else 8 * group_commit_bytes)
        self._rng = random.Random(seed)
        #: Replay tap observing scheduler picks (the fleet-level
        #: nondeterminism source; members tap their own sessions).
        self.replay = resolve_tap(replay_tap)
        self._members = {}  # name -> FleetSession, admission order
        if telemetry_enabled:
            self.telemetry = Telemetry(self.clock)
        else:
            self.telemetry = NULL_TELEMETRY
        self.flightrec = resolve_flightrec(flightrec)
        self._flight = self.flightrec.scope("fleet", self.clock)
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.bind_flightscope(self._flight)
        self.rollup_every = rollup_every
        self._steps_since_rollup = 0
        metrics = self.telemetry.metrics
        self._m_steps = metrics.counter("fleet.steps")
        self._m_admitted = metrics.counter("fleet.sessions_admitted")
        self._m_rejected = metrics.counter("fleet.admissions_rejected")
        self._m_done = metrics.counter("fleet.sessions_done")
        self._m_crashes = metrics.counter("fleet.sessions_crashed")
        self._m_throttled = metrics.counter("fleet.sessions_throttled")
        self._m_recoveries = metrics.counter("fleet.sessions_recovered")
        self._m_alerts = metrics.counter("fleet.slo_alerts")
        self._h_step_us = metrics.histogram("fleet.step_us")
        self._m_flush_batches = metrics.counter("fleet.flush_batches")
        self._m_flush_pages = metrics.counter("fleet.flush_pages")
        self._m_flush_bytes = metrics.counter("fleet.flush_bytes")
        self._m_force_flushes = metrics.counter(
            "fleet.backlog_force_flushes")
        self._h_backlog = metrics.histogram("fleet.writeback_backlog")
        self._h_flush_pages = metrics.histogram("fleet.flush_batch_pages")
        self._h_flush_us = metrics.histogram("fleet.flush_us")
        self._m_branches = metrics.counter("fleet.branches_forked")
        self._m_branch_forks_failed = metrics.counter(
            "fleet.branch_forks_failed")
        self._m_branches_deleted = metrics.counter("fleet.branches_deleted")
        self._h_fork_us = metrics.histogram("fleet.fork_us")
        self.thinning = thinning
        self._m_thin_passes = metrics.counter("fleet.thin_passes")
        self._m_thinned = metrics.counter("fleet.checkpoints_thinned")
        self._m_thin_bytes = metrics.counter("fleet.thin_bytes_freed")

    # ------------------------------------------------------------------ #
    # Admission

    def admit(self, name, scenario, units=None, recording=None, weight=1,
              quotas=None, session_kwargs=None, fault_plan=None):
        """Admit one session: build its full recording stack against the
        shared page store and queue it for scheduling.

        Raises :class:`FleetError` when the fleet is at ``max_sessions``
        or the name is taken (admission control).  Returns the
        :class:`FleetSession`.
        """
        if name in self._members:
            self._m_rejected.inc()
            raise FleetError("session %r already admitted" % name)
        if len(self._members) >= self.max_sessions:
            self._m_rejected.inc()
            raise FleetError(
                "fleet is full (%d sessions, max %d)"
                % (len(self._members), self.max_sessions))
        if weight < 1:
            raise FleetError("weight must be >= 1, got %r" % (weight,))
        # Imported here, not at module top: repro.workloads imports this
        # module for the fleet load generator.
        from repro.workloads.generator import get_workload

        workload = get_workload(scenario)
        kwargs = dict(session_kwargs or {})
        kwargs["name"] = name
        session = DesktopSession(**kwargs)
        config = recording if recording is not None \
            else workload.default_recording()
        if fault_plan is not None:
            config.fault_plan = fault_plan
        if self.flightrec.active and config.flightrec is None:
            # Members journal into the fleet's shared ring under their
            # own owner names (spans, fault fires, recovery actions).
            config.flightrec = self.flightrec
        run, steps = workload.start(recording=config, units=units,
                                    session=session, page_cas=self.cas)
        member = FleetSession(
            name=name, scenario=scenario, weight=weight, session=session,
            dejaview=run.dejaview, run=run, steps=steps,
            quotas=quotas if quotas is not None else self.default_quotas,
        )
        self._members[name] = member
        self._m_admitted.inc()
        if self._flight.active:
            self._flight.record(REC_EVENT, {
                "event": "admit", "session": name, "scenario": scenario,
                "units": run.units, "weight": weight})
        return member

    # ------------------------------------------------------------------ #
    # Branchable revive (section 5.2: "multiple revived sessions from a
    # single checkpoint")

    def revive(self, owner, t=None, checkpoint_id=None, name=None,
               scenario=None, units=None, recording=None, weight=1,
               quotas=None, cached=True, network_enabled=False,
               demand_paging=True, fault_plan=None, replay_tap=None):
        """Fork a new fleet member from a surviving checkpoint of member
        ``owner``.

        The branch revives the last checkpoint at or before virtual time
        ``t`` on the parent's timeline (or an explicit
        ``checkpoint_id``), demand-pages its memory image out of the
        shared CAS under its *own* owner refcounts (the source chain's
        manifests are pinned so parent GC can never pull pages out from
        under it), mounts a COW union branch over the parent's read-only
        LFS snapshot, and then records, checkpoints, crash-recovers, and
        GCs like any other member under the same scheduler, quota, and
        admission machinery.  Network stays disabled unless overridden
        and revived external TCP connections are reset (section 5.2).

        ``scenario`` defaults to the parent's scenario — the divergent
        workload the branch runs from the revived moment.  Raises
        :class:`FleetError` on admission failure; an
        :class:`~repro.common.faults.InjectedCrash` during the fork
        registers the branch as a crashed shell (reclaimable via
        :meth:`recover_session`) and re-raises.
        """
        parent = self.member(owner)
        if parent.dejaview is None or parent.dejaview.engine is None:
            raise FleetError(
                "session %r has no checkpoints to branch from" % owner)
        if checkpoint_id is None:
            when = t if t is not None else parent.session.clock.now_us
            source = parent.dejaview.checkpoint_before(when)
        else:
            source = None
            for result in parent.dejaview.engine.history:
                if result.checkpoint_id == checkpoint_id:
                    source = result
                    break
            if source is None:
                raise FleetError(
                    "session %r has no checkpoint %d"
                    % (owner, checkpoint_id))
        storage = parent.dejaview.storage
        ok, reason = (storage.blob_ok(source.checkpoint_id)
                      if source.checkpoint_id in storage
                      else (False, "missing"))
        if not ok:
            raise FleetError(
                "checkpoint %d of %r is not revivable (%s)"
                % (source.checkpoint_id, owner, reason))
        if name is None:
            name = "%s@%d" % (owner, source.checkpoint_id)
            suffix = 1
            while name in self._members:
                suffix += 1
                name = "%s@%d.%d" % (owner, source.checkpoint_id, suffix)
        if name in self._members:
            self._m_rejected.inc()
            raise FleetError("session %r already admitted" % name)
        if len(self._members) >= self.max_sessions:
            self._m_rejected.inc()
            raise FleetError(
                "fleet is full (%d sessions, max %d)"
                % (len(self._members), self.max_sessions))
        if weight < 1:
            raise FleetError("weight must be >= 1, got %r" % (weight,))
        from repro.server.branch import BranchSession
        from repro.workloads.generator import get_workload

        scenario = scenario if scenario is not None else parent.scenario
        workload = get_workload(scenario)
        config = recording if recording is not None \
            else workload.default_recording()
        if fault_plan is not None:
            config.fault_plan = fault_plan
        if self.flightrec.active and config.flightrec is None:
            config.flightrec = self.flightrec
        plan = resolve_faults(config.fault_plan)
        session = None
        dejaview = None
        try:
            session = BranchSession(
                name=name,
                source_fsstore=parent.session.fsstore,
                source_storage=storage,
                checkpoint_id=source.checkpoint_id,
                start_us=source.timestamp_us,
                width=parent.session.width,
                height=parent.session.height,
                costs=self.costs,
                cached=cached,
                network_enabled=network_enabled,
                demand_paging=demand_paging,
                replay_tap=replay_tap,
                faults=plan,
            )
            from repro.desktop.dejaview import DejaView

            dejaview = DejaView(session, config, page_cas=self.cas)
            # Pin the source chain's page manifests under the branch
            # owner: N branches from one checkpoint share the physical
            # pages, each holding its own refcounts, and the parent
            # pruning the source can never reclaim what a branch still
            # demand-pages.  The branch's own checkpoints dedup against
            # these pins, so only diverged pages cost bytes.
            pinned_bytes = 0
            for image_id in session.revive_result.required_images:
                pinned_bytes += dejaview.storage.pin_base_manifest(
                    image_id, storage.manifest_digests(image_id))
            run, steps = workload.start(recording=config, units=units,
                                        session=session, dejaview=dejaview)
        except InjectedCrash as crash:
            # The fork died mid-flight: register what exists as a
            # crashed shell so recover_session can reclaim it, then
            # propagate (kill -9 semantics — nothing survives).
            shell = FleetSession(
                name=name, scenario=scenario, weight=weight,
                session=session, dejaview=dejaview, run=None, steps=None,
                quotas=quotas if quotas is not None
                else self.default_quotas,
                kind="branch", parent=owner,
                source_checkpoint=source.checkpoint_id,
            )
            shell.state = CRASHED
            shell.crash_site = crash.site
            self._members[name] = shell
            self._m_branch_forks_failed.inc()
            self._m_crashes.inc()
            if self._flight.active:
                self._flight.record(REC_EVENT, {
                    "event": "branch.fork_crashed", "session": name,
                    "parent": owner,
                    "checkpoint": source.checkpoint_id,
                    "site": crash.site})
            raise
        fork_us = session.revive_result.duration_us
        member = FleetSession(
            name=name, scenario=scenario, weight=weight, session=session,
            dejaview=dejaview, run=run, steps=steps,
            quotas=quotas if quotas is not None else self.default_quotas,
            kind="branch", parent=owner,
            source_checkpoint=source.checkpoint_id,
            fork={
                "fork_us": fork_us,
                "bytes_read": session.revive_result.bytes_read,
                "pages_deferred": session.revive_result.pages_deferred,
                "reset_sockets": session.revive_result.reset_sockets,
                "pinned_bytes": pinned_bytes,
                "cached": session.revive_result.cached,
            },
        )
        self._members[name] = member
        self._m_admitted.inc()
        self._m_branches.inc()
        self._h_fork_us.observe(fork_us)
        # The fork ran on the service host: its virtual cost joins the
        # service clock exactly like a scheduled step's.
        self.clock.advance_us(fork_us)
        if self._flight.active:
            self._flight.record(REC_EVENT, {
                "event": "branch.fork", "session": name, "parent": owner,
                "checkpoint": source.checkpoint_id, "scenario": scenario,
                "fork_us": fork_us,
                "pages_deferred": member.fork["pages_deferred"],
                "reset_sockets": member.fork["reset_sockets"]})
        return member

    def branches(self, owner=None):
        """Admission-ordered branch members (of one parent when
        ``owner`` is given)."""
        return [m for m in self._members.values()
                if m.is_branch and (owner is None or m.parent == owner)]

    # ------------------------------------------------------------------ #
    # Scheduling

    def members(self):
        """Admission-ordered members (dicts preserve insertion order)."""
        return list(self._members.values())

    def member(self, name):
        member = self._members.get(name)
        if member is None:
            raise FleetError("no session %r in the fleet" % name)
        return member

    def runnable(self):
        return [m for m in self._members.values() if m.runnable]

    def _pick(self, runnable):
        if len(runnable) == 1:
            return runnable[0]
        weights = [m.weight for m in runnable]
        return self._rng.choices(runnable, weights=weights, k=1)[0]

    def step(self):
        """Run one work unit of one seeded-randomly chosen runnable
        session; returns its :class:`FleetSession` (None when nothing is
        runnable).  The service clock advances by the session virtual
        time the unit consumed."""
        runnable = self.runnable()
        if not runnable:
            return None
        member = self._pick(runnable)
        before = member.session.clock.now_us
        try:
            next(member.steps)
            member.units_done += 1
        except StopIteration:
            member.state = DONE
            self._m_done.inc()
        except InjectedCrash as crash:
            # The member died mid-write (kill -9 semantics): contain it,
            # keep the rest of the fleet recording.
            member.state = CRASHED
            member.crash_site = crash.site
            self._m_crashes.inc()
        consumed = member.session.clock.now_us - before
        self.clock.advance_us(consumed)
        if self.replay.active:
            self.replay.sched(member.name, member.units_done,
                              runnable=len(runnable),
                              consumed_us=consumed)
        self._m_steps.inc()
        self._h_step_us.observe(consumed)
        if member.state == RUNNING and member.quotas is not None:
            violation = member.quotas.violation(
                member.dejaview.telemetry.metrics)
            if violation is not None:
                member.state = THROTTLED
                member.quota_violation = violation
                self._m_throttled.inc()
        if self._flight.active:
            self._flight.record(REC_SCHED, {
                "picked": member.name,
                "runnable": len(runnable),
                "consumed_us": consumed,
                "units_done": member.units_done,
                "state": member.state,
            })
            if member.state == CRASHED:
                self._flight.record(REC_EVENT, {
                    "event": "session.crashed", "session": member.name,
                    "site": member.crash_site})
            elif member.state == DONE:
                self._flight.record(REC_EVENT, {
                    "event": "session.done", "session": member.name,
                    "units": member.units_done})
            elif member.state == THROTTLED:
                attr, used, limit = member.quota_violation
                self._flight.record(REC_QUOTA, {
                    "session": member.name, "quota": attr,
                    "used": used, "limit": limit})
        self._writeback_tick()
        if self.rollup_every:
            self._steps_since_rollup += 1
            if self._steps_since_rollup >= self.rollup_every:
                self._steps_since_rollup = 0
                self._rollup_tick()
        return member

    # ------------------------------------------------------------------ #
    # Async group-commit writeback

    def _writeback_tick(self):
        """Group-commit scheduling, run after every step.

        Observes the total backlog, then flushes any shard whose queue
        crossed ``group_commit_bytes``; when the *total* backlog crosses
        ``max_backlog_bytes`` the backpressure quota force-flushes every
        shard.  Flushes model background I/O overlapping execution, so
        they never advance the service clock or count as steps.
        """
        cas = self.cas
        backlog = cas.backlog_bytes()
        self._h_backlog.observe(backlog)
        if not backlog:
            return
        if backlog > self.max_backlog_bytes:
            self._m_force_flushes.inc()
            for sid in range(cas.shard_count):
                self._flush_shard(sid, reason="backlog")
            return
        for sid, shard in enumerate(cas.shards):
            if shard.queued_bytes >= self.group_commit_bytes:
                self._flush_shard(sid, reason="threshold")

    def _flush_shard(self, sid, reason):
        """Flush one shard's queue as a group commit; journals the batch
        and feeds the flush telemetry.  Returns the flush report (None
        when the queue was empty)."""
        report = self.cas.flush_shard(sid, costs=self.costs)
        if report is None:
            return None
        self._m_flush_batches.inc()
        self._m_flush_pages.inc(report["pages"])
        self._m_flush_bytes.inc(report["bytes"])
        self._h_flush_pages.observe(report["pages"])
        self._h_flush_us.observe(report["flush_us"])
        if self._flight.active:
            self._flight.record(REC_FLUSH, {
                "shard": sid,
                "pages": report["pages"],
                "bytes": report["bytes"],
                "flush_us": report["flush_us"],
                "reason": reason,
                "backlog_bytes": self.cas.backlog_bytes(),
                "backlog_highwater_bytes":
                    self.cas.shards[sid].backlog_highwater_bytes,
            })
        return report

    def drain_writeback(self, reason="drain"):
        """Flush every shard queue to empty — the pipeline's only
        barrier, used before GC/compaction and at shutdown.  Returns an
        aggregate ``{"batches", "pages", "bytes"}`` report."""
        batches = pages = nbytes = 0
        for sid, shard in enumerate(self.cas.shards):
            if not shard.queued:
                continue
            report = self._flush_shard(sid, reason=reason)
            if report is not None:
                batches += 1
                pages += report["pages"]
                nbytes += report["bytes"]
        return {"batches": batches, "pages": pages, "bytes": nbytes}

    def _rollup_tick(self):
        """The journal's periodic heartbeat: flush every shard queue (the
        service-clock group-commit cadence), then counter-delta records
        for the fleet and every member, then an SLO evaluation."""
        self.drain_writeback(reason="rollup")
        if self._flight.active:
            self._flight.record_counter_deltas(
                self.telemetry.metrics.counter_values())
            for member in self._members.values():
                if member.dejaview is None:
                    continue  # branch shell crashed mid-fork
                telemetry = member.dejaview.telemetry
                if telemetry.enabled:
                    self.flightrec.scope(
                        member.name, member.session.clock,
                    ).record_counter_deltas(
                        telemetry.metrics.counter_values())
        if self.thinning is not None:
            self.thin(policy=self.thinning, compact=False)
        if self.watchdog is not None:
            self.check_slos()

    # ------------------------------------------------------------------ #
    # SLO watchdog

    def slo_context(self, rollup=None):
        """The evaluation context the watchdog reads: the fleet metric
        rollup plus derived service figures."""
        if rollup is None:
            rollup = rollup_snapshots({
                name: member.dejaview.telemetry.metrics.snapshot()
                for name, member in self._members.items()
                if member.dejaview is not None
                and member.dejaview.telemetry.enabled
            })
        service_s = self.clock.now_us / 1e6
        recoveries = self._m_recoveries.value
        crashes = self._m_crashes.value
        # The fleet's own histograms (step_us, writeback_backlog, flush
        # figures) live in the service registry, not the member rollup —
        # merge them in so rules like writeback_backlog_p95 can see them
        # (the name spaces are disjoint: members never emit fleet.*).
        fleet_hists = self.telemetry.metrics.snapshot().get(
            "histograms", {})
        return {
            "counters": dict(rollup.get("counters", {}),
                             **self.telemetry.metrics.counter_values()),
            "gauges": rollup.get("gauges", {}),
            "histograms": dict(rollup.get("histograms", {}),
                               **fleet_hists),
            "derived": {
                "dedup_ratio": self.dedup_ratio(),
                "recovery_rate_per_s": (
                    (recoveries + crashes) / service_s if service_s > 0
                    else 0.0),
                "service_clock_s": service_s,
                "writeback_backlog_bytes": self.cas.backlog_bytes(),
            },
        }

    def check_slos(self, rollup=None):
        """Evaluate the watchdog now; returns its verdicts (None when no
        watchdog is configured).  Violation/resolution transitions are
        journaled as ALERT records and counted as ``fleet.slo_alerts``."""
        if self.watchdog is None:
            return None
        before = self.watchdog.alerts_emitted
        verdicts = self.watchdog.evaluate(self.slo_context(rollup=rollup))
        emitted = self.watchdog.alerts_emitted - before
        if emitted:
            self._m_alerts.inc(emitted)
        return verdicts

    def run_to_completion(self, max_steps=None):
        """Step until no session is runnable, then drain the writeback
        queues (service shutdown is a barrier — every enqueued page must
        be on disk before the fleet reports itself finished); returns
        steps taken."""
        taken = 0
        while self.runnable():
            if max_steps is not None and taken >= max_steps:
                break
            self.step()
            taken += 1
        if not self.runnable():
            self.drain_writeback(reason="shutdown")
        return taken

    # ------------------------------------------------------------------ #
    # Crash recovery

    def recover_session(self, name):
        """Run one crashed member's full crash recovery (fs, storage
        fsck, engine, display, index).  The storage phase rebuilds only
        this owner's CAS refcounts, so pages other sessions reference are
        never reclaimed.  The member's workload cannot resume (the host
        it simulated is gone) but its recording is consistent and
        revivable; state becomes ``recovered``.
        """
        member = self.member(name)
        if member.state not in (CRASHED, RECOVERED):
            raise FleetError(
                "session %r is %s, not crashed" % (name, member.state))
        if member.dejaview is None:
            # A branch killed before its storage existed: the only
            # durable residue it can have left is owner refcounts in the
            # shared CAS (none, in practice, since pinning happens after
            # storage construction — but the fsck is the invariant, not
            # the happy path).  Rebuilding this owner from zero manifests
            # wipes any partial pins without touching other owners.
            reclaimed = self.cas.rebuild_owner_refs(name, [])
            member.state = RECOVERED
            self._m_recoveries.inc()
            report = {"ok": True, "shell": True,
                      "cas_pages_reclaimed": reclaimed}
        else:
            report = member.dejaview.recover()
            member.state = RECOVERED
            self._m_recoveries.inc()
        if self._flight.active:
            self._flight.record(REC_RECOVERY, {
                "action": "fleet.recover_session", "session": name,
                "ok": report.get("ok"), "crash_site": member.crash_site})
        return report

    # ------------------------------------------------------------------ #
    # Fleet-wide GC / compaction

    def compact(self, dead_fraction=None):
        """Compact the shared page store on the *service* clock — extent
        rewrites are fleet maintenance, charged to the host, never to a
        member session."""
        kwargs = {"clock": self.clock, "costs": self.costs}
        if dead_fraction is not None:
            kwargs["dead_fraction"] = dead_fraction
        return self.cas.compact(**kwargs)

    def gc(self, keep_last=1):
        """Prune every member down to its last ``keep_last`` checkpoints
        (plus whatever those depend on), then compact the shared store
        once on the service clock.  Returns per-session prune reports
        plus the compaction report.  Drains the writeback pipeline first
        so reclamation never races an in-flight group commit."""
        drained = self.drain_writeback(reason="gc")
        # A live branch demand-pages its source checkpoint chain out of
        # the parent's images: those checkpoints must survive the
        # parent's prune for as long as any branch is rooted in them.
        # (The branch also *pins* the pages in the CAS, so even a buggy
        # prune could not reclaim them — the keep-list is what preserves
        # the parent-side image metadata.)
        branch_roots = {}
        for member in self._members.values():
            if member.is_branch and member.source_checkpoint is not None:
                branch_roots.setdefault(member.parent, set()).add(
                    member.source_checkpoint)
        reports = {}
        for member in self._members.values():
            if member.dejaview is None:
                continue  # branch shell crashed mid-fork
            engine = member.dejaview.engine
            if engine is None or not engine.history:
                continue
            keep = {result.checkpoint_id
                    for result in engine.history[-keep_last:]}
            keep.update(branch_roots.get(member.name, ()))
            reports[member.name] = prune_checkpoints(
                member.dejaview.storage, member.session.fsstore,
                sorted(keep), compact=False)
        compaction = self.compact()
        return {"sessions": reports, "compaction": compaction,
                "writeback_drained": drained}

    def thin(self, policy=None, compact=True):
        """Run one thinning pass over every member's checkpoint timeline.

        Each member applies the age-tiered policy on its own clock (see
        :meth:`DejaView.thin_checkpoints`); the fleet contributes the
        *protect* set — branch fork points (a live branch demand-pages
        its source checkpoint, so that instant must keep its bytes) and
        each member's last stored checkpoint (the last-good anchor a
        post-crash revive falls back to).  Compaction of the shared CAS
        then runs once, on the service clock.  Returns per-session
        :class:`ThinReport` objects plus the fleet summary."""
        policy = policy if policy is not None else self.thinning
        drained = self.drain_writeback(reason="thin")
        branch_roots = {}
        for member in self._members.values():
            if member.is_branch and member.source_checkpoint is not None:
                branch_roots.setdefault(member.parent, set()).add(
                    member.source_checkpoint)
        reports = {}
        thinned = 0
        freed = 0
        for member in self._members.values():
            if member.dejaview is None:
                continue  # branch shell crashed mid-fork
            engine = member.dejaview.engine
            if engine is None or not engine.history:
                continue
            protect = set(branch_roots.get(member.name, ()))
            if engine.last_checkpoint_id is not None:
                protect.add(engine.last_checkpoint_id)
            report = member.dejaview.thin_checkpoints(
                policy=policy, protect=sorted(protect), compact=False)
            reports[member.name] = report
            thinned += len(report.thinned_images)
            freed += report.image_bytes_freed
        compaction = self.compact() if (compact and thinned) else {}
        self._m_thin_passes.inc()
        if thinned:
            self._m_thinned.inc(thinned)
            self._m_thin_bytes.inc(freed)
            if self._flight.active:
                self._flight.record(REC_EVENT, {
                    "event": "thin", "thinned": thinned,
                    "bytes_freed": freed,
                    "sessions": sorted(
                        name for name, report in reports.items()
                        if report.thinned_images)})
        return {"sessions": reports, "thinned": thinned,
                "bytes_freed": freed, "compaction": compaction,
                "writeback_drained": drained}

    def delete_branch(self, name):
        """Remove a branch member and release everything it holds in the
        shared store: its own checkpoint images and their page refs, plus
        the base-manifest pins on its source chain.  Refcount charging is
        branch-aware by construction — unref only reclaims a page when
        *no* owner references it — so deleting a fully-diverged branch
        releases exactly its private pages, and the parent snapshot and
        sibling branches are untouched.  Returns a reclaim report."""
        member = self.member(name)
        if not member.is_branch:
            raise FleetError("session %r is not a branch" % name)
        physical_before = self.cas.total_compressed_bytes
        released = {"images_deleted": 0, "pin_bytes_released": 0,
                    "cas_pages_reclaimed": 0}
        if member.dejaview is not None:
            self.drain_writeback(reason="branch-delete")
            storage = member.dejaview.storage
            for image_id in list(storage.stored_ids()):
                storage.delete(image_id)
                released["images_deleted"] += 1
            released["pin_bytes_released"] = \
                storage.release_base_manifests()
        else:
            # Crashed shell: nothing durable beyond possible partial
            # pins; rebuild-from-nothing wipes them.
            released["cas_pages_reclaimed"] = \
                self.cas.rebuild_owner_refs(name, [])
        del self._members[name]
        self._m_branches_deleted.inc()
        released["physical_bytes_freed"] = max(
            0, physical_before - self.cas.total_compressed_bytes)
        if self._flight.active:
            self._flight.record(REC_EVENT, {
                "event": "branch.delete", "session": name,
                "parent": member.parent,
                "physical_bytes_freed": released["physical_bytes_freed"]})
        return released

    def branch_page_split(self, name):
        """How much of a branch's page footprint is shared vs. private.

        A digest this owner references is *private* when no other owner
        also references it (every global ref is this owner's) — those are
        the bytes that deleting the branch would free.  Everything else
        is shared with the parent chain or sibling branches.  Returns
        ``{"shared_bytes", "private_bytes", "shared_fraction"}`` over
        compressed (stored) sizes."""
        member = self.member(name)
        cas = self.cas
        own = cas.owner_refs.get(name, {})
        shared = private = 0
        for digest, count in own.items():
            size = len(cas.pages.get(digest, b""))
            if cas.refs.get(digest, 0) == count:
                private += size
            else:
                shared += size
        total = shared + private
        return {
            "shared_bytes": shared,
            "private_bytes": private,
            "shared_fraction": shared / total if total else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Observability

    def dedup_ratio(self):
        """Cross-session dedup win: 1 − physical page bytes / the sum of
        what each session logically references.  0.0 when nothing is
        stored; equals each storage's *local* dedup ratio complement only
        if sessions share nothing."""
        logical = 0
        for member in self._members.values():
            if member.dejaview is None:
                continue  # branch shell crashed mid-fork
            raw, _comp = self.cas.owner_logical_totals(
                member.dejaview.storage.owner)
            logical += raw
        if logical <= 0:
            return 0.0
        return 1.0 - self.cas.total_uncompressed_bytes / logical

    def fault_rollup(self):
        """Per-site failpoint hit/fired totals summed across members
        with active fault plans (plus a per-session breakdown of the
        sites each actually hit)."""
        totals = {site: {"hits": 0, "fired": 0}
                  for site in registered_failpoints()}
        per_session = {}
        any_active = False
        for name, member in self._members.items():
            if member.dejaview is None:
                continue  # branch shell crashed mid-fork
            plan = member.dejaview.faults
            if not plan.active:
                continue
            any_active = True
            snapshot = plan.hit_snapshot()
            hit_sites = {site: counts for site, counts in snapshot.items()
                         if counts["hits"] or counts["fired"]}
            if hit_sites:
                per_session[name] = hit_sites
            for site, counts in snapshot.items():
                totals[site]["hits"] += counts["hits"]
                totals[site]["fired"] += counts["fired"]
        if not any_active:
            return None
        return {"sites": totals, "sessions": per_session}

    def stats(self):
        """JSON-ready fleet report: service clock, per-session states,
        shared-CAS physical/dedup figures, the telemetry rollup, the
        failpoint rollup (when any member carries a fault plan), SLO
        standings (when a watchdog is bound), and journal figures (when
        a flight recorder is bound)."""
        sessions = {name: member.describe()
                    for name, member in self._members.items()}
        cas_stats = self.cas.stats()
        cas_stats["dedup_ratio"] = self.dedup_ratio()
        rollup = rollup_snapshots({
            name: member.dejaview.telemetry.metrics.snapshot()
            for name, member in self._members.items()
            if member.dejaview is not None
            and member.dejaview.telemetry.enabled
        })
        rollup.pop("sessions", None)  # describe() already covers them
        report = {
            "seed": self.seed,
            "service_clock_us": self.clock.now_us,
            "sessions": sessions,
            "cas": cas_stats,
            "writeback": {
                "shards": self.cas.shard_count,
                "group_commit_bytes": self.group_commit_bytes,
                "max_backlog_bytes": self.max_backlog_bytes,
                "backlog_pages": self.cas.backlog_pages(),
                "backlog_bytes": self.cas.backlog_bytes(),
                "flush_batches": self._m_flush_batches.value,
                "flush_pages": self._m_flush_pages.value,
                "flush_bytes": self._m_flush_bytes.value,
                "backlog_force_flushes": self._m_force_flushes.value,
            },
            "fleet_metrics": self.telemetry.metrics.snapshot(),
            "rollup": rollup,
        }
        if self.thinning is not None or self._m_thin_passes.value:
            report["thinning"] = {
                "enabled": self.thinning is not None,
                "passes": self._m_thin_passes.value,
                "checkpoints_thinned": self._m_thinned.value,
                "bytes_freed": self._m_thin_bytes.value,
                "tombstones": {
                    name: len(member.dejaview.storage.thinned_ids())
                    for name, member in self._members.items()
                    if member.dejaview is not None
                    and member.dejaview.storage.thinned_ids()
                },
            }
        branch_members = self.branches()
        if branch_members or self._m_branches.value:
            report["branches"] = {
                "forked": self._m_branches.value,
                "fork_failures": self._m_branch_forks_failed.value,
                "deleted": self._m_branches_deleted.value,
                "live": {
                    m.name: dict(self.branch_page_split(m.name),
                                 parent=m.parent,
                                 source_checkpoint=m.source_checkpoint)
                    for m in branch_members
                },
            }
        faults = self.fault_rollup()
        if faults is not None:
            report["faults"] = faults
        if self.watchdog is not None:
            report["slo"] = {
                "verdicts": self.check_slos(rollup=rollup),
                "alerts_emitted": self.watchdog.alerts_emitted,
                "evaluations": self.watchdog.evaluations,
            }
        if self.flightrec.active:
            report["journal"] = {
                "records_written": self.flightrec.records_written,
                "segments_retained": len(self.flightrec._segments),
            }
        return report

    def __len__(self):
        return len(self._members)
