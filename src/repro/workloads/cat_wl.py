"""The cat scenario: dumping a large log to the terminal.

Table 1: "cat a 17 MB system log file".  Profile highlights from
section 6:

* display-intensive: text pours onto the screen and the terminal scrolls
  continuously, yet THINC's command merging keeps the logged command rate
  modest (only the aggregate of each flush survives);
* lots of on-screen text for the index (the terminal's visible buffer
  changes constantly);
* the file already exists — the scenario *reads*; file system growth is
  minimal.
"""

from repro.common.units import KiB, MiB, ms
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

LOG_SIZE = 17 * MiB
READ_PER_UNIT = 56 * KiB
LINES_PER_UNIT = 3


@register
class CatWorkload(Workload):
    name = "cat"
    description = "cat of a 17 MB log file: fast terminal scroll"
    default_units = 300

    def setup(self, run):
        app = run.session.launch("cat")
        app.focus()
        # The terminal emulator's scrollback buffer churns continuously.
        app.grow_memory(6 * MiB)
        run.session.fs.create("/home/user/syslog", bytes(LOG_SIZE))
        run.cat = app
        run.terminal_lines = [app.show_text("") for _ in range(6)]

    def unit(self, run, index):
        app = run.cat
        session = run.session
        # Read the next slice of the log.
        if index % 16 == 0:
            app.blocking_io(ms(3))
        app.compute(ms(22))
        # The terminal repaints: THINC merging leaves one scroll plus one
        # merged band of new lines per flush.
        app.scroll(Region(0, 0, session.width, session.height),
                   LINES_PER_UNIT * 10)
        band = Region(0, session.height - LINES_PER_UNIT * 10 - 2,
                      session.width, LINES_PER_UNIT * 10)
        app.draw_text_line(band, seed=index)
        app.flush_display()
        # The visible text buffer churns.
        node = run.terminal_lines[index % len(run.terminal_lines)]
        app.update_text(
            node,
            "syslog entry %d: daemon restarted pid %d status ok"
            % (index, 1000 + index),
        )
        # Scrollback buffer churn in the terminal emulator.
        app.dirty_memory(144 * KiB)
        return {}
