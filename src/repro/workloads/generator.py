"""Workload base machinery.

A :class:`Workload` is a sequence of *work units*.  Throughput scenarios
(web page loads, files untarred, compile steps) run their units
back-to-back: simulated completion time grows with whatever overhead the
recording components add, which is exactly what Figure 2 normalizes.
Paced scenarios (video frames, interactive desktop ticks) have a deadline
per unit: work that finishes early idles until the deadline, so overhead
only shows up if a unit overruns (the paper's video result: <1 % overhead,
no dropped frames).

After every unit the workload calls :meth:`DejaView.tick` with the unit's
input flags, which drives checkpointing (fixed-rate or policy)."""

from dataclasses import dataclass

from repro.common.errors import DejaViewError
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.session import DesktopSession


@dataclass
class ScenarioRun:
    """The outcome of one workload execution."""

    workload: str
    session: DesktopSession
    dejaview: DejaView
    start_us: int
    end_us: int
    units: int
    start_storage: dict
    overran_units: int = 0

    @property
    def duration_us(self):
        return self.end_us - self.start_us

    @property
    def duration_seconds(self):
        return self.duration_us / 1e6

    def storage_growth_rates(self):
        """Per-stream storage growth in bytes per simulated second
        (the Figure 4 quantities)."""
        duration_s = max(self.duration_seconds, 1e-9)
        end = self.dejaview.storage_report()
        start = self.start_storage
        fs_log_growth = end["fs_log"] - start["fs_log"]
        fs_visible_growth = end["fs_visible"] - start["fs_visible"]
        return {
            "display": (end["display"] - start["display"]) / duration_s,
            "index": (end["index"] - start["index"]) / duration_s,
            "checkpoint": (
                end["checkpoint_uncompressed"] - start["checkpoint_uncompressed"]
            ) / duration_s,
            "checkpoint_compressed": (
                end["checkpoint_compressed"] - start["checkpoint_compressed"]
            ) / duration_s,
            # The paper reports fs snapshot overhead: total snapshot usage
            # minus what is visible to the user at the end.
            "fs": max(0.0, (fs_log_growth - max(0, fs_visible_growth)) / duration_s),
            "fs_total": fs_log_growth / duration_s,
        }


class Workload:
    """Base class for the Table 1 scenarios."""

    #: Scenario name (Table 1).
    name = None
    #: Human description.
    description = ""
    #: Number of work units in a default run.
    default_units = 100
    #: Per-unit deadline in simulated us (None = throughput-driven).
    pace_us = None

    def default_recording(self):
        """Recording configuration used when the caller passes none.
        Throughput benchmarks use fixed 1 Hz checkpointing (the paper's
        conservative setting); the desktop scenario overrides this to run
        under the section 5.1.3 policy."""
        return RecordingConfig()

    def setup(self, run):
        """Create the scenario's applications.  Called once."""

    def unit(self, run, index):
        """Execute one work unit.  Returns the tick flags dict (keyboard,
        mouse, fullscreen_video, screensaver) or None."""
        raise NotImplementedError

    def teardown(self, run):
        """Optional cleanup after the last unit."""

    # ------------------------------------------------------------------ #

    def start(self, recording=None, units=None, session_kwargs=None,
              dejaview=None, session=None, page_cas=None):
        """Set up the scenario and return ``(run, steps)``.

        ``run`` is the :class:`ScenarioRun` (setup already executed, start
        markers taken); ``steps`` is a generator that executes one work
        unit — app activity, :meth:`DejaView.tick`, pacing — per
        ``next()`` and runs teardown when exhausted, at which point
        ``run.end_us`` is final.  Draining it fully is exactly
        :meth:`run`; a fleet scheduler instead interleaves ``next()``
        calls across many sessions.

        ``page_cas`` forwards a shared page store to the
        :class:`DejaView` built here (ignored when ``dejaview`` is given).
        """
        if self.name is None:
            raise DejaViewError("workload subclass must set a name")
        units = units if units is not None else self.default_units
        if session is None:
            session = DesktopSession(**(session_kwargs or {}))
        if dejaview is None:
            config = recording if recording is not None else self.default_recording()
            dejaview = DejaView(session, config, page_cas=page_cas)
        run = ScenarioRun(
            workload=self.name,
            session=session,
            dejaview=dejaview,
            start_us=session.clock.now_us,
            end_us=session.clock.now_us,
            units=units,
            start_storage={},
        )
        self.setup(run)
        # Measure from after setup: pre-created fixtures (e.g. gzip's input
        # file) are not part of the scenario's recorded activity — flush
        # them to disk so the first pre-snapshot doesn't pay for them.
        session.fs.sync()
        clock = session.clock
        start = clock.now_us
        run.start_us = start
        run.start_storage = dejaview.storage_report()

        def steps():
            tap = session.replay
            for index in range(units):
                deadline = (
                    start + (index + 1) * self.pace_us if self.pace_us else None
                )
                flags = self.unit(run, index) or {}
                if tap.active:
                    # One scheduler decision: this session ran this unit
                    # (the fleet scheduler's pick lands here too, via its
                    # own tap).
                    tap.sched(session.name, index,
                              flags=[k for k in sorted(flags) if flags[k]])
                dejaview.tick(**flags)
                if deadline is not None:
                    if clock.now_us > deadline:
                        run.overran_units += 1
                    else:
                        clock.advance_to_us(deadline)
                yield index
            self.teardown(run)
            run.end_us = clock.now_us

        return run, steps()

    def run(self, recording=None, units=None, session_kwargs=None,
            dejaview=None, session=None, page_cas=None):
        """Execute the scenario; returns a :class:`ScenarioRun`.

        ``recording`` is a :class:`RecordingConfig` (None = full recording);
        pass a config with everything disabled to measure the baseline.
        """
        run, steps = self.start(
            recording=recording, units=units, session_kwargs=session_kwargs,
            dejaview=dejaview, session=session, page_cas=page_cas,
        )
        for _ in steps:
            pass
        return run


def baseline_config():
    """RecordingConfig with every component off (the Figure 2 baseline)."""
    return RecordingConfig(
        record_display=False, record_index=False, record_checkpoints=False
    )


SCENARIOS = {}


def register(cls):
    """Class decorator: add a workload to the scenario registry."""
    SCENARIOS[cls.name] = cls
    return cls


def get_workload(name):
    from repro.workloads import scenarios  # noqa: F401  (populates registry)

    if name not in SCENARIOS:
        raise DejaViewError(
            "unknown scenario %r (have: %s)" % (name, ", ".join(sorted(SCENARIOS)))
        )
    return SCENARIOS[name]()


def run_scenario(name, recording=None, units=None, **kwargs):
    """Convenience: instantiate and run a registered scenario."""
    return get_workload(name).run(recording=recording, units=units, **kwargs)
