"""Workload generators for the Table 1 application scenarios.

Each generator drives a :class:`~repro.desktop.session.DesktopSession`
through :class:`~repro.desktop.apps.SimApplication` objects, reproducing the
activity *profile* of one paper scenario — how much display output, on-screen
text, memory dirtying, process churn and file system traffic it generates,
and whether it is throughput-driven (finish a fixed amount of work: web,
untar, gzip, make, octave, cat) or paced in real time (video, desktop).

========  ==========================================================
web       Firefox / iBench: 54 page loads, display + index heavy,
          browser memory grows steadily (the Figure 7 effect).
video     Full-screen 24 fps movie playback: one command per frame,
          display storage dominates, strict frame pacing.
untar     Verbose untar of a kernel source tree: file system heavy,
          scrolling terminal output.
gzip      Compressing a large log file: disk-bound compute, almost
          no display.
make      Kernel build: process churn + dirty memory, moderate text.
octave    Numerical benchmark: memory-dirtying compute, little I/O.
cat       cat of a 17 MB log: display-intensive text scrolling.
desktop   Real multi-application desktop usage driven by the
          checkpoint policy (typing, browsing, idle, screensaver).
========  ==========================================================
"""

from repro.workloads.generator import (
    SCENARIOS,
    ScenarioRun,
    Workload,
    get_workload,
    run_scenario,
)
from repro.workloads.fleet_wl import (
    DEFAULT_MIX,
    build_fleet,
    fleet_mix,
    run_fleet,
)

__all__ = [
    "Workload",
    "ScenarioRun",
    "SCENARIOS",
    "get_workload",
    "run_scenario",
    "DEFAULT_MIX",
    "build_fleet",
    "fleet_mix",
    "run_fleet",
]
