"""The desktop scenario: real multi-application usage.

Table 1: "16 hr of desktop usage by multiple users, including Firefox,
GAIM, OpenOffice, Adobe Acrobat Reader, etc."  This is the scenario the
checkpoint *policy* exists for: bursty activity with long quiet stretches.
Section 6 reports the policy took checkpoints only ~20 % of the time, and
attributed the skips 13 % to no display activity, 69 % to low display
activity, and 18 % to the reduced text-editing rate.

The generator is paced at one tick per simulated second and mixes four
kinds of ticks with those approximate proportions:

* **idle** (~10 %): nothing happens;
* **ambient** (~55 %): trivial display updates — the clock, a blinking
  cursor, GAIM's buddy list — well under the 5 % activity threshold;
* **typing** (~15 %): keyboard input with small display changes
  (OpenOffice document editing);
* **active** (~20 %): real bursts — browsing, window switches, reading —
  that repaint large parts of the screen.

Runs under the policy by default (``default_recording``).
"""

import numpy as np

from repro.common.units import KiB, MiB, seconds
from repro.desktop.dejaview import RecordingConfig
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

TICK_US = seconds(1)


@register
class DesktopWorkload(Workload):
    name = "desktop"
    description = "multi-app interactive desktop usage under the policy"
    default_units = 420  # seven simulated minutes
    pace_us = TICK_US

    def default_recording(self):
        return RecordingConfig(use_policy=True)

    def setup(self, run):
        session = run.session
        run.firefox = session.launch("firefox")
        run.firefox.ax.event_generation_cost_us = 10_000.0
        run.gaim = session.launch("gaim")
        # A real desktop carries a long tail of background processes
        # (panel, applets, session manager, terminals...); they contribute
        # per-process state-save time to every checkpoint.
        for i in range(14):
            proc = session.container.spawn(
                "daemon-%d" % i, parent=session.init_process
            )
            region = proc.address_space.mmap(64, name="daemon-heap")
            proc.address_space.write(region.start, b"background daemon state")
        run.office = session.launch("openoffice")
        run.acrobat = session.launch("acroread", accessible=True)
        run.office.focus()
        run.firefox.grow_memory(6 * MiB)
        run.office.grow_memory(8 * MiB)
        session.fs.makedirs("/home/user/docs")
        run.document = run.office.show_text("Quarterly report draft")
        run.buddy = run.gaim.show_text("buddies online: 4")
        run.clock_text = run.gaim.show_text("12:00")
        run.doc_words = 0
        run.rng = np.random.default_rng(16)
        run.page = 0

    def unit(self, run, index):
        kind = run.rng.choice(
            ["idle", "ambient", "typing", "active"],
            p=[0.10, 0.55, 0.15, 0.20],
        )
        handler = getattr(self, "_tick_" + kind)
        return handler(run, index)

    # ------------------------------------------------------------------ #

    def _tick_idle(self, run, index):
        return {}

    def _tick_ambient(self, run, index):
        session = run.session
        # The desktop clock advances; a cursor blinks.  Tiny regions only.
        run.gaim.draw_fill(Region(session.width - 40, 0, 38, 10), 0x222222)
        run.gaim.draw_fill(Region(100, 100, 2, 10), 0xFFFFFF)
        run.gaim.flush_display()
        # Background activity (browser timers, IM keepalives) keeps
        # rewriting the same hot heap pages every second; the policy's
        # skips coalesce those rewrites into far fewer saved copies.
        run.firefox.dirty_memory(1 * MiB, hot=True)
        if index % 60 == 0:
            run.gaim.update_text(run.clock_text, "12:%02d" % (index // 60))
        return {}

    def _tick_typing(self, run, index):
        session = run.session
        run.doc_words += 1
        # A word appears in the document: a small text band redraws.
        run.office.draw_text_line(
            Region(20, 60 + (run.doc_words % 12) * 10, 180, 10),
            seed=index,
        )
        run.office.flush_display()
        run.office.update_text(
            run.document,
            "Quarterly report draft revision with %d words so far"
            % run.doc_words,
        )
        run.office.dirty_memory(96 * KiB, hot=True)
        if run.doc_words % 40 == 0:
            run.office.write_file("/home/user/docs/report.odt",
                                  bytes(220 * KiB))
        return {"keyboard_input": True}

    def _tick_active(self, run, index):
        session = run.session
        app = run.firefox if index % 3 else run.acrobat
        app.focus()
        # A burst: repaint a large window area.
        app.draw_fill(Region(0, 0, session.width, session.height // 2),
                      0xEEEEEE)
        for row in range(3):
            app.draw_text_line(
                Region(8, 8 + row * 14, session.width - 16, 12),
                seed=index * 4 + row,
            )
        app.draw_raw(Region(30, 70, 64, 48), seed=index)
        app.flush_display()
        run.page += 1
        app.show_text(
            "reading item %d " % run.page
            + " ".join("topic%d" % t for t in run.rng.integers(0, 300, 5))
        )
        app.dirty_memory(3 * MiB)
        if index % 10 == 0:
            run.gaim.update_text(
                run.buddy, "friend says: see message %d" % index
            )
        return {"mouse_input": True}
