"""The untar scenario: verbose extraction of a kernel source tree.

Table 1: "Verbose untar of 2.6.16.3 Linux kernel source tree".  Profile
highlights from section 6:

* file system storage dominates: thousands of small files mean the
  log-structured file system pays metadata overhead per creation ("it
  includes more overhead for file creation");
* file system snapshot time is the biggest slice of checkpoint downtime
  ("file system snapshot time can account for up to half of the downtime
  as in the case of untar");
* verbose output scrolls the terminal: BITMAP text lines + COPY scrolls.

The tree is scaled (1200 files, ~12 KiB average) so a run stays
laptop-sized; the *ratios* between data, metadata and the other streams are
what the figures depend on.
"""

import numpy as np

from repro.common.units import KiB, MiB, ms
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

FILES_PER_DIR = 40


@register
class UntarWorkload(Workload):
    name = "untar"
    description = "verbose untar of a (scaled) kernel source tree"
    default_units = 1200

    def setup(self, run):
        app = run.session.launch("tar")
        app.focus()
        run.session.fs.makedirs("/home/user/src/linux")
        app.grow_memory(1 * MiB)  # tar's extraction buffers
        run.tar = app
        run.rng = np.random.default_rng(2616)
        run.terminal_lines = [
            app.show_text("", parent=app.window) for _ in range(4)
        ]

    def unit(self, run, index):
        app = run.tar
        session = run.session
        if index % FILES_PER_DIR == 0:
            session.fs.makedirs("/home/user/src/linux/dir%03d"
                                % (index // FILES_PER_DIR))
        path = "/home/user/src/linux/dir%03d/file%04d.c" % (
            index // FILES_PER_DIR, index
        )
        # File sizes: mostly small, occasionally larger (drivers, docs).
        size = int(run.rng.lognormal(mean=9.3, sigma=0.8))
        size = max(512, min(size, 120 * KiB))
        app.write_file(path, bytes(size))
        # Reading the archive stalls in disk I/O now and then — the case
        # pre-quiescing exists for.
        if index % 50 == 25:
            app.blocking_io(ms(6))
        app.compute(ms(3))
        # Verbose output: the terminal repaints at its own refresh rate,
        # coalescing several printed lines per screen update.
        if index % 8 == 0:
            row = Region(0, session.height - 12, session.width, 10)
            app.scroll(Region(0, 0, session.width, session.height), 10)
            app.draw_text_line(row, seed=index)
            app.flush_display()
        line = run.terminal_lines[index % len(run.terminal_lines)]
        app.update_text(line, path)
        # tar's extraction buffers churn as archive data streams through.
        if index % 2 == 0:
            app.dirty_memory(8 * KiB)
        return {}
