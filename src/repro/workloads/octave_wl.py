"""The octave scenario: numerical computing.

Table 1: "Octave 2.1.73 (MATLAB 4 clone) running Octave 2 numerical
benchmark".  Profile highlights from section 6:

* compute-bound with a large, hot working set: the highest checkpoint
  storage growth of all scenarios (~20 MB/s uncompressed, ~4 MB/s
  compressed — numerical state compresses well);
* essentially no display output ("gzip and octave have essentially zero
  display recording overhead since they produce little visual output").
"""

from repro.common.units import MiB, ms
from repro.workloads.generator import Workload, register

WORKING_SET = 24 * MiB
DIRTY_PER_UNIT = 7 * MiB


@register
class OctaveWorkload(Workload):
    name = "octave"
    description = "Octave numerical benchmark: hot 24 MiB working set"
    default_units = 50

    def setup(self, run):
        app = run.session.launch("octave")
        app.focus()
        app.grow_memory(WORKING_SET, compress_ratio=5.0)
        run.octave = app
        run.result_line = app.show_text("octave:1>")

    def unit(self, run, index):
        app = run.octave
        # One iteration of the numerical kernel: CPU + matrix updates
        # sweeping through the working set.
        app.compute(ms(350))
        app.dirty_memory(DIRTY_PER_UNIT, compress_ratio=5.0)
        # A result line every few iterations.
        if index % 5 == 0:
            app.update_text(run.result_line,
                            "ans(%d) = %.6f" % (index, 1.0 / (index + 1)))
        return {}
