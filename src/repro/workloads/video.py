"""The video scenario: full-screen MPEG2 movie playback.

Table 1: "MPlayer 1.0rc1-4.1.2 playing Life of David Gale MPEG2 movie
trailer at full-screen resolution".  Profile highlights from section 6:

* each frame changes the entire display but needs only **one** display
  command, "resulting in 24 commands per second, a relatively modest rate
  of processing" — display recording overhead is essentially zero;
* display state dominates storage (the checkpoint state of a single-process
  player is small);
* strict 24 fps pacing: DejaView must not cause dropped frames, and
  checkpoint downtime (~5 ms in Figure 3) must fit between frames.
"""

from repro.common.units import KiB, MiB, ms
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

FPS = 24
FRAME_US = 1_000_000 // FPS


@register
class VideoWorkload(Workload):
    name = "video"
    description = "MPlayer full-screen 24 fps movie playback"
    default_units = 20 * FPS  # a 20-second clip
    pace_us = FRAME_US

    def setup(self, run):
        app = run.session.launch("mplayer")
        app.focus()
        app.grow_memory(6 * MiB)
        run.player = app
        run.subtitle = app.show_text("movie trailer playing")

    def unit(self, run, index):
        app = run.player
        session = run.session
        # Decode the frame...
        app.compute(ms(6))
        # ...and blit it: one video command covering the whole screen.
        app.draw_video_frame(
            Region(0, 0, session.width, session.height), seed=index
        )
        app.flush_display()
        # Small decoder state churn; the player allocates almost nothing.
        if index % 12 == 0:
            app.dirty_memory(192 * KiB)
        # Subtitles change every couple of seconds.
        if index % (2 * FPS) == 0:
            app.update_text(run.subtitle, "subtitle line %d of the trailer"
                            % (index // (2 * FPS)))
        return {"fullscreen_video": True}
