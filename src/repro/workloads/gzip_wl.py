"""The gzip scenario: compressing a large access log.

Table 1: "Compress a 1.8 GB Apache access log file".  Profile highlights
from section 6:

* compute + disk bound, with almost no display output, so display and
  index recording overheads are ~0;
* the storage growth rate is the smallest of the scenarios (~2.5 MB/s
  uncompressed checkpoints) — gzip's working buffers are small;
* "despite having its large file continually snapshotted, the file system
  usage is small": appending to one big file costs little log metadata.

The input is scaled to 48 MiB (the ratio between input size, buffer churn
and output rate is what matters).
"""

from repro.common.units import KiB, MiB, ms
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

CHUNK_IN = 384 * KiB
CHUNK_OUT = 96 * KiB


@register
class GzipWorkload(Workload):
    name = "gzip"
    description = "gzip of a (scaled) 48 MiB access log"
    default_units = 128

    def setup(self, run):
        app = run.session.launch("gzip")
        app.focus()
        # gzip streams through a multi-MB window/dictionary buffer.
        app.grow_memory(3 * MiB)
        # The pre-existing input file (not counted in scenario growth).
        run.session.fs.create("/home/user/access.log",
                              bytes(self.default_units * CHUNK_IN))
        run.session.fs.create("/home/user/access.log.gz", b"")
        run.gzip = app
        run.progress = app.show_text("gzip starting")

    def unit(self, run, index):
        app = run.gzip
        # Read a chunk of the input: uninterruptible disk I/O.
        app.blocking_io(ms(5))
        run.session.clock.advance_to_us(app.process.busy_until_us)
        # Compress it.
        app.compute(ms(24))
        app.dirty_memory(80 * KiB)
        # Append the compressed output.
        app.write_file("/home/user/access.log.gz", bytes(CHUNK_OUT),
                       append=True)
        # gzip prints nothing; the shell prompt blinks at most.
        if index % 32 == 0:
            app.draw_fill(Region(0, 0, 60, 10), 0x00FF00)
            app.flush_display()
            app.update_text(run.progress, "gzip %d%% done"
                            % (100 * index // self.default_units))
        return {}

    def teardown(self, run):
        run.gzip.write_file("/home/user/access.log.gz", b"", append=True)
