"""Fleet load generator: many sessions, mixed Table 1 scenarios.

Builds a :class:`~repro.server.fleet.Fleet` whose members run a
deterministic mix of the existing workload scenarios.  The mix cycles a
prefix of :data:`DEFAULT_MIX`, so fleets with more than a couple of
sessions always contain *repeated* scenarios — and since every scenario
is fully deterministic (each seeds its own RNGs, and app RNGs seed from a
stable digest of the app name), two sessions running the same scenario
generate byte-identical page streams.  That repetition is what the
shared page store dedups across sessions; the bench gate on the
cross-session dedup ratio rides on it.

Unit counts here are smoke-sized (a fleet multiplies them by N); the
figure-quality single-session runs keep using each scenario's
``default_units``.
"""

from repro.server.fleet import Fleet

#: (scenario, units) in mix order — cheap, deterministic smoke sizes.
DEFAULT_MIX = (
    ("web", 4),
    ("gzip", 8),
    ("cat", 15),
    ("make", 8),
    ("untar", 30),
    ("octave", 2),
    ("video", 12),
    ("desktop", 10),
)


def fleet_mix(sessions):
    """The (scenario, units) assignment for an N-session fleet.

    Cycles the first ``max(2, N // 2)`` entries of :data:`DEFAULT_MIX`
    (clamped to the mix size), so N ≥ 2 always repeats scenarios across
    sessions: N=4 runs 2 scenarios twice, N=16 runs all 8 twice.
    """
    if sessions < 1:
        raise ValueError("a fleet needs at least one session")
    width = min(len(DEFAULT_MIX), max(2, sessions // 2))
    return [DEFAULT_MIX[i % width] for i in range(sessions)]


def build_fleet(sessions, seed=0, quotas=None, recording=None,
                units_scale=1.0, **fleet_kwargs):
    """Build a fleet and admit ``sessions`` members over the default mix.

    ``units_scale`` scales every member's unit count (≥ 1 unit each);
    ``recording`` (a factory returning a fresh
    :class:`~repro.desktop.dejaview.RecordingConfig`, or None for each
    scenario's default) applies to every member.  Members are named
    ``s00 .. sNN`` in admission order.
    """
    fleet_kwargs.setdefault("max_sessions", max(sessions, 1))
    fleet = Fleet(seed=seed, quotas=quotas, **fleet_kwargs)
    for index, (scenario, units) in enumerate(fleet_mix(sessions)):
        fleet.admit(
            "s%02d" % index, scenario,
            units=max(1, int(units * units_scale)),
            recording=recording() if recording is not None else None,
        )
    return fleet


def run_fleet(sessions, seed=0, **kwargs):
    """Build the mixed fleet and run it to completion; returns it."""
    fleet = build_fleet(sessions, seed=seed, **kwargs)
    fleet.run_to_completion()
    return fleet


#: Branch workloads for a revive storm, cycled per branch.  Every entry
#: must tolerate running over the parent's existing file tree (their
#: setup only uses idempotent ``makedirs``); scenarios whose setup
#: ``create``s fixed paths (cat, gzip) would collide with the revived
#: image and are deliberately absent.
STORM_MIX = ("web", "make", "untar", "desktop")


def run_revive_storm(branches, seed=0, scenario="web", parent_units=24,
                     branch_units=4, crash_branch=None,
                     diverge=True, **fleet_kwargs):
    """One parent, ``branches`` simultaneous forks of its *single*
    checkpoint — the section 5.2 storm.

    Records the parent to completion, picks its last checkpoint, forks
    every branch from that same checkpoint, then runs the branches (each
    on a divergent workload cycled from :data:`STORM_MIX` unless
    ``diverge`` is False) under the normal fleet scheduler.
    ``crash_branch`` (an index) forks that branch under a
    ``revive.branch.refs`` crash plan and immediately recovers it —
    the storm must survive a member dying mid-fork.

    Returns ``(fleet, report)``; the report carries per-branch fork
    latency, the shared/private page split at fork time (pre-divergence)
    and after the run, and the crashed branch's recovery report.
    """
    from repro.common.faults import FaultPlan, InjectedCrash

    fleet_kwargs.setdefault("max_sessions", branches + 1)
    fleet = Fleet(seed=seed, **fleet_kwargs)
    fleet.admit("p0", scenario, units=parent_units)
    fleet.run_to_completion()
    parent = fleet.member("p0")
    source = parent.dejaview.engine.history[-1]
    report = {
        "branches": branches,
        "source_checkpoint": source.checkpoint_id,
        "fork_us": [],
        "crashed": None,
    }
    for index in range(branches):
        name = "br%02d" % index
        branch_scenario = STORM_MIX[index % len(STORM_MIX)] if diverge \
            else scenario
        if crash_branch is not None and index == crash_branch:
            plan = FaultPlan(seed=seed)
            plan.add("revive.branch.refs", mode="crash")
            try:
                fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                             name=name, scenario=branch_scenario,
                             units=branch_units, fault_plan=plan)
            except InjectedCrash:
                pass
            recovery = fleet.recover_session(name)
            report["crashed"] = {
                "name": name, "site": "revive.branch.refs",
                "recovery_ok": bool(recovery.get("ok", True)),
            }
            continue
        member = fleet.revive("p0", checkpoint_id=source.checkpoint_id,
                              name=name, scenario=branch_scenario,
                              units=branch_units)
        report["fork_us"].append(member.fork["fork_us"])
    report["split_at_fork"] = {
        member.name: fleet.branch_page_split(member.name)
        for member in fleet.branches() if member.runnable
    }
    fleet.run_to_completion()
    report["split_after_run"] = {
        member.name: fleet.branch_page_split(member.name)
        for member in fleet.branches() if member.dejaview is not None
    }
    return fleet, report
