"""Fleet load generator: many sessions, mixed Table 1 scenarios.

Builds a :class:`~repro.server.fleet.Fleet` whose members run a
deterministic mix of the existing workload scenarios.  The mix cycles a
prefix of :data:`DEFAULT_MIX`, so fleets with more than a couple of
sessions always contain *repeated* scenarios — and since every scenario
is fully deterministic (each seeds its own RNGs, and app RNGs seed from a
stable digest of the app name), two sessions running the same scenario
generate byte-identical page streams.  That repetition is what the
shared page store dedups across sessions; the bench gate on the
cross-session dedup ratio rides on it.

Unit counts here are smoke-sized (a fleet multiplies them by N); the
figure-quality single-session runs keep using each scenario's
``default_units``.
"""

from repro.server.fleet import Fleet

#: (scenario, units) in mix order — cheap, deterministic smoke sizes.
DEFAULT_MIX = (
    ("web", 4),
    ("gzip", 8),
    ("cat", 15),
    ("make", 8),
    ("untar", 30),
    ("octave", 2),
    ("video", 12),
    ("desktop", 10),
)


def fleet_mix(sessions):
    """The (scenario, units) assignment for an N-session fleet.

    Cycles the first ``max(2, N // 2)`` entries of :data:`DEFAULT_MIX`
    (clamped to the mix size), so N ≥ 2 always repeats scenarios across
    sessions: N=4 runs 2 scenarios twice, N=16 runs all 8 twice.
    """
    if sessions < 1:
        raise ValueError("a fleet needs at least one session")
    width = min(len(DEFAULT_MIX), max(2, sessions // 2))
    return [DEFAULT_MIX[i % width] for i in range(sessions)]


def build_fleet(sessions, seed=0, quotas=None, recording=None,
                units_scale=1.0, **fleet_kwargs):
    """Build a fleet and admit ``sessions`` members over the default mix.

    ``units_scale`` scales every member's unit count (≥ 1 unit each);
    ``recording`` (a factory returning a fresh
    :class:`~repro.desktop.dejaview.RecordingConfig`, or None for each
    scenario's default) applies to every member.  Members are named
    ``s00 .. sNN`` in admission order.
    """
    fleet_kwargs.setdefault("max_sessions", max(sessions, 1))
    fleet = Fleet(seed=seed, quotas=quotas, **fleet_kwargs)
    for index, (scenario, units) in enumerate(fleet_mix(sessions)):
        fleet.admit(
            "s%02d" % index, scenario,
            units=max(1, int(units * units_scale)),
            recording=recording() if recording is not None else None,
        )
    return fleet


def run_fleet(sessions, seed=0, **kwargs):
    """Build the mixed fleet and run it to completion; returns it."""
    fleet = build_fleet(sessions, seed=seed, **kwargs)
    fleet.run_to_completion()
    return fleet
