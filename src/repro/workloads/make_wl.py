"""The make scenario: building the Linux kernel.

Table 1: "Build the 2.6.16.3 Linux kernel".  Profile highlights from
section 6:

* the largest *checkpoint* recording overhead (~13 %): compilers churn
  processes and dirty memory fast, so every checkpoint has real work;
* moderate terminal output (one line per compile step);
* object files written continuously.

Modelled as a stream of compile steps, each spawning a short-lived ``cc``
process that dirties memory in its own address space before exiting a few
steps later (so checkpoints always catch several live compilers).
"""

from repro.common.costs import PAGE_SIZE
from repro.common.units import KiB, MiB, ms
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

CC_LIFETIME_UNITS = 3
CC_DIRTY_BYTES = 1 * MiB + 256 * KiB
OBJ_SIZE = 28 * KiB


@register
class MakeWorkload(Workload):
    name = "make"
    description = "kernel build: process churn + dirty compiler memory"
    default_units = 240

    def setup(self, run):
        app = run.session.launch("make")
        app.focus()
        run.session.fs.makedirs("/home/user/build")
        run.make = app
        run.live_ccs = []  # [(spawned process, heap region, retire unit)]
        run.terminal_lines = [app.show_text("") for _ in range(3)]

    def _spawn_cc(self, run, index):
        container = run.session.container
        cc = container.spawn("cc-%d" % index, parent=run.make.process)
        heap = cc.address_space.mmap(
            CC_DIRTY_BYTES // PAGE_SIZE + 1, name="cc-heap"
        )
        run.live_ccs.append((cc, heap, index + CC_LIFETIME_UNITS))
        return cc, heap

    def _retire_due(self, run, index):
        container = run.session.container
        keep = []
        for cc, heap, retire_at in run.live_ccs:
            if index >= retire_at:
                cc.exit(0)
                container.reap(cc)
            else:
                keep.append((cc, heap, retire_at))
        run.live_ccs = keep

    def unit(self, run, index):
        app = run.make
        session = run.session
        self._retire_due(run, index)
        cc, heap = self._spawn_cc(run, index)

        # The compiler runs: CPU plus fresh dirty pages in its own space,
        # while make itself keeps parsing rules and dependency state.
        app.compute(ms(32))
        app.dirty_memory(256 * KiB)
        content_pages = CC_DIRTY_BYTES // PAGE_SIZE
        for page in range(content_pages):
            cc.address_space.write_page(
                heap, page, app._page_content(compress_ratio=5.0)
            )

        # Write the object file.
        app.write_file("/home/user/build/obj%04d.o" % index, bytes(OBJ_SIZE))

        # One build line on the terminal.
        row = Region(0, session.height - 12, session.width, 10)
        app.scroll(Region(0, 0, session.width, session.height), 10)
        app.draw_text_line(row, seed=index)
        app.flush_display()
        app.update_text(run.terminal_lines[index % 3],
                        "CC drivers/obj%04d.o" % index)
        if index % 25 == 10:
            app.blocking_io(ms(4))
        return {}

    def teardown(self, run):
        self._retire_due(run, 10**9)
