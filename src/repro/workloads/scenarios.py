"""Imports every scenario module so the registry is populated.

``get_workload`` imports this module lazily; importing it directly also
works for callers that want the registry filled eagerly::

    from repro.workloads import scenarios  # noqa: F401
    from repro.workloads import SCENARIOS
"""

from repro.workloads import (  # noqa: F401
    cat_wl,
    desktop_wl,
    gzip_wl,
    make_wl,
    octave_wl,
    untar,
    video,
    web,
)
