"""The web scenario: Firefox running the iBench page-load benchmark.

Table 1: "Firefox 2.0.0.1 running iBench web browsing benchmark to download
54 web pages".  Profile highlights from section 6:

* pages load "in rapid fire succession" — a worst case, not real browsing;
* each page changes almost all of the screen, with many display commands,
  so display recording costs ~9 % (server/viewer/recorder CPU contention);
* Firefox generates accessibility information *on demand*, making index
  recording the dominant overhead (~99 %, nearly doubling page latency);
* the browser's memory footprint more than doubles over the run, which is
  what makes late uncached revives slow in Figure 7.
"""

import numpy as np

from repro.common.units import KiB, MiB, ms
from repro.access.toolkit import Role
from repro.display.commands import Region
from repro.workloads.generator import Workload, register

#: Extra per-event cost of Firefox's on-demand accessibility generation.
FIREFOX_AX_GENERATION_US = 10_000.0

PAGE_LINKS = 6
PAGE_PARAGRAPHS = 8
TEXT_ROWS = 18
TEXT_COLS = 4
IMAGES = 8


@register
class WebWorkload(Workload):
    name = "web"
    description = "Firefox 2.0.0.1 / iBench: 54 page downloads"
    default_units = 54

    def setup(self, run):
        app = run.session.launch("firefox")
        app.ax.event_generation_cost_us = FIREFOX_AX_GENERATION_US
        app.focus()
        app.grow_memory(8 * MiB)
        run.session.fs.makedirs("/home/user/.cache")
        run.browser = app
        run.page_nodes = []
        run.rng = np.random.default_rng(54)

    def unit(self, run, index):
        app = run.browser
        session = run.session
        width, height = session.width, session.height

        # Network fetch + parse/layout: the ~0.28 s/page baseline.
        app.blocking_io(ms(60))
        session.clock.advance_to_us(app.process.busy_until_us)
        app.compute(ms(180))

        # Render: complex pages issue ~a hundred drawing commands and
        # repaint nearly the whole screen.
        app.draw_fill(Region(0, 0, width, height), 0xFFFFFF)
        col_w = (width - 16) // TEXT_COLS
        for row in range(TEXT_ROWS):
            for col in range(TEXT_COLS):
                band = Region(8 + col * col_w, 4 + row * 11, col_w - 4, 9)
                app.draw_text_line(band, seed=index * 97 + row * TEXT_COLS + col)
        for img in range(IMAGES):
            app.draw_raw(
                Region(12 + (img % 4) * 76, 204 + (img // 4) * 18, 64, 16),
                seed=index * IMAGES + img,
            )
        app.flush_display()

        # Accessibility: tear down the old page's subtree, build the new
        # one (each event pays Firefox's on-demand generation cost).
        for node in run.page_nodes:
            app.remove_text(node)
        run.page_nodes = []
        for p in range(PAGE_PARAGRAPHS):
            text = "page %d paragraph %d " % (index, p) + " ".join(
                "word%d" % w for w in run.rng.integers(0, 5000, size=7)
            )
            run.page_nodes.append(app.show_text(text))
        for l in range(PAGE_LINKS):
            run.page_nodes.append(
                app.show_text(
                    "link%d-%d followme" % (index, l),
                    role=Role.LINK,
                    properties={"is_link": True},
                )
            )

        # Memory: render caches + steady browser growth (the footprint
        # more than doubles over the run — the Figure 7 effect).
        app.dirty_memory(4 * MiB + 512 * KiB)
        app.grow_memory(384 * KiB)

        # Disk cache write.
        app.write_file(
            "/home/user/.cache/page%d.html" % index,
            b"<html>" + bytes(90 * KiB),
        )
        return {"mouse_input": True}
