"""Deterministic virtual clock.

The paper reports wall-clock measurements taken on a 2007 desktop.  In this
reproduction every subsystem charges its work to a shared
:class:`VirtualClock` through the cost model, which makes all experiments
deterministic and lets the benchmark harness report the same quantities the
paper does (checkpoint downtime, browse latency, playback speedup, ...)
independent of the machine the reproduction happens to run on.

The clock only moves forward.  Components never read the host's time.
"""

from repro.common.units import US_PER_MS, US_PER_SEC


class VirtualClock:
    """A monotonically increasing simulated clock with microsecond ticks."""

    def __init__(self, start_us=0):
        if start_us < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_us = int(start_us)
        self._replay = None

    def bind_replay(self, tap):
        """Notify a replay tap of every advance (record/replay mode).
        The tap observes; it never charges the clock."""
        self._replay = tap if tap is not None and tap.active else None

    @property
    def now_us(self):
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self):
        """Current simulated time in (float) milliseconds."""
        return self._now_us / US_PER_MS

    @property
    def now_seconds(self):
        """Current simulated time in (float) seconds."""
        return self._now_us / US_PER_SEC

    def advance_us(self, delta_us):
        """Move time forward by ``delta_us`` microseconds.

        Fractional charges from the cost model are accepted and rounded to
        the nearest whole microsecond; negative charges are rejected because
        simulated time never flows backwards.
        """
        delta_us = int(round(delta_us))
        if delta_us < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self._now_us += delta_us
        if self._replay is not None:
            self._replay.clock(delta_us, self._now_us)
        return self._now_us

    def advance_to_us(self, deadline_us):
        """Move time forward to an absolute deadline (no-op if in the past)."""
        if deadline_us > self._now_us:
            delta_us = int(deadline_us) - self._now_us
            self._now_us = int(deadline_us)
            if self._replay is not None:
                self._replay.clock(delta_us, self._now_us)
        return self._now_us

    def stopwatch(self):
        """Start a :class:`Stopwatch` at the current instant."""
        return Stopwatch(self)

    def __repr__(self):
        return "VirtualClock(t=%dus)" % self._now_us


class Stopwatch:
    """Measures elapsed simulated time between two instants.

    >>> clock = VirtualClock()
    >>> watch = clock.stopwatch()
    >>> _ = clock.advance_us(1500)
    >>> watch.elapsed_us
    1500
    """

    def __init__(self, clock):
        self._clock = clock
        self._start_us = clock.now_us

    @property
    def start_us(self):
        return self._start_us

    @property
    def elapsed_us(self):
        return self._clock.now_us - self._start_us

    @property
    def elapsed_ms(self):
        return self.elapsed_us / US_PER_MS

    def restart(self):
        """Reset the start point to now and return the previous elapsed time."""
        elapsed = self.elapsed_us
        self._start_us = self._clock.now_us
        return elapsed
