"""Telemetry export adapters: Chrome trace-event JSON and Prometheus text.

Two one-way bridges from the reproduction's internal observability state
to the formats real tooling already reads:

* :func:`chrome_trace_events` turns the flight journal's span stream
  into Chrome trace-event *complete* events (``ph: "X"``) — load the
  resulting JSON in Perfetto or ``chrome://tracing`` and the fleet's
  per-member checkpoint pipelines render as nested slices on one
  timeline.  Each owner becomes a ``pid`` row; virtual microseconds map
  directly onto the trace's ``ts``/``dur`` microseconds.
* :func:`prometheus_text` renders a metrics snapshot (per-session, or a
  fleet :func:`~repro.common.telemetry.rollup_snapshots` rollup) in the
  Prometheus text exposition format: counters, gauges, and histogram
  summaries as ``{quantile="..."}`` gauge families, with metric names
  sanitized to the Prometheus grammar (dots become underscores).

Both adapters are pure functions over already-collected state — they
never touch a clock, a session, or the journal writer.
"""

import json
import re

from repro.common.flightrec import REC_ALERT, REC_FAULT, REC_SPAN

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name, prefix="dejaview"):
    """``checkpoint.downtime_us`` -> ``dejaview_checkpoint_downtime_us``."""
    cleaned = _NAME_OK.sub("_", name)
    if prefix:
        cleaned = "%s_%s" % (prefix, cleaned)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _label_str(labels):
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items()))
    return "{%s}" % body


# ---------------------------------------------------------------------- #
# Chrome trace events


def chrome_trace_events(records, instants=True):
    """Trace-event dicts from journal records (the SPAN stream, plus
    optional instant markers for faults and alerts).

    Spans become complete events: ``ts`` = virtual start, ``dur`` =
    virtual duration, ``pid`` = owner, ``tid`` = 0 (each owner is a
    single simulated core; nesting comes from ts/dur containment).
    Wall-clock nanoseconds ride along in ``args.wall_ns`` so both time
    domains survive the export.
    """
    events = []
    owners = set()
    for record in records:
        owners.add(record.owner)
        if record.rtype == REC_SPAN:
            data = record.data
            if data.get("dur_us") is None:
                continue
            event = {
                "name": data.get("name", "?"),
                "ph": "X",
                "ts": data.get("start_us", 0),
                "dur": data.get("dur_us", 0),
                "pid": record.owner,
                "tid": 0,
                "args": {"seq": record.seq,
                         "wall_ns": data.get("wall_ns")},
            }
            if data.get("attrs"):
                event["args"].update(data["attrs"])
            events.append(event)
        elif instants and record.rtype in (REC_FAULT, REC_ALERT):
            events.append({
                "name": ("fault:%s" % record.data.get("site")
                         if record.rtype == REC_FAULT
                         else "alert:%s" % record.data.get("rule")),
                "ph": "i",
                "ts": record.virtual_us,
                "pid": record.owner,
                "tid": 0,
                "s": "p",  # process-scoped instant
                "args": dict(record.data),
            })
    for owner in sorted(owners):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": owner,
            "tid": 0,
            "args": {"name": str(owner)},
        })
    return events


def chrome_trace_json(records, indent=None):
    """The full ``{"traceEvents": [...]}`` document as a JSON string."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(records),
         "displayTimeUnit": "ms",
         "otherData": {"producer": "dejaview flight recorder",
                       "time_domain": "virtual_us"}},
        indent=indent, default=str)


# ---------------------------------------------------------------------- #
# Prometheus text exposition


_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def prometheus_text(snapshot, prefix="dejaview", labels=None):
    """Render a metrics snapshot in the Prometheus text format.

    ``snapshot`` is any dict with ``counters`` / ``gauges`` /
    ``histograms`` keys (a session ``metrics.snapshot()`` or a fleet
    rollup).  Histogram summaries become a summary-style family:
    ``<name>{quantile="0.95"}``, ``<name>_count``, ``<name>_sum``.
    ``labels`` (e.g. ``{"fleet_seed": 3}``) attach to every sample.
    Returns the exposition body as a string ending in a newline.
    """
    labels = dict(labels or {})
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s%s %s" % (metric, _label_str(labels), value))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s%s %s" % (metric, _label_str(labels), value))
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        if not summary.get("count"):
            continue
        metric = sanitize_metric_name(name, prefix)
        lines.append("# TYPE %s summary" % metric)
        for key, quantile in _QUANTILES:
            value = summary.get(key)
            if value is None:
                continue
            q_labels = dict(labels)
            q_labels["quantile"] = quantile
            lines.append("%s%s %s" % (metric, _label_str(q_labels), value))
        lines.append("%s_count%s %s" % (metric, _label_str(labels),
                                        summary["count"]))
        lines.append("%s_sum%s %s" % (metric, _label_str(labels),
                                      summary["sum"]))
    return "\n".join(lines) + "\n"
