"""Calibrated cost model.

Every mechanism in the reproduction is real (the algorithms run and move real
bytes), but the *durations* the paper reports depend on its 2007 testbed
(3.2 GHz Pentium D, 4 GB RAM, 500 GB SATA disk).  The cost model assigns each
primitive operation a simulated duration, charged to the shared
:class:`~repro.common.clock.VirtualClock`.

The default constants are calibrated so that the evaluation harness
reproduces the *shape* of the paper's section 6 results:

* checkpoint downtime below 10 ms for application benchmarks (Figure 3),
* total checkpoint time dominated by pre-snapshot + writeback,
* storage growth between ~2.5 and ~20 MB/s depending on scenario (Figure 4),
* sub-second cached revives and multi-second uncached revives (Figure 7).

Benchmarks that ablate DejaView's optimizations (copy-on-write capture,
incremental checkpoints, deferred writeback) use the same constants, so the
*relative* cost of the unoptimized design emerges from the model rather than
being hard-coded.
"""

from dataclasses import dataclass, field

PAGE_SIZE = 4096
"""Virtual-memory page size in bytes (matches x86 Linux)."""


@dataclass
class CostModel:
    """Simulated durations (microseconds) for primitive operations."""

    # --- CPU / memory ----------------------------------------------------
    page_copy_us: float = 1.6
    """Copying one 4 KiB page of memory (COW fault service or capture)."""

    page_protect_us: float = 1.0
    """Write-protecting one page during a COW/incremental mark (PTE update
    plus TLB shootdown)."""

    cow_fault_us: float = 8.0
    """Servicing one post-resume COW write fault: trap, copy the page into
    the checkpoint buffer, unprotect, resume the faulting instruction."""

    page_scan_us: float = 0.15
    """Scanning one page-table entry while walking regions."""

    region_metadata_us: float = 4.0
    """Saving bookkeeping for one VM region (start, length, flags)."""

    memcpy_us_per_byte: float = 0.0004
    """Bulk in-memory copy cost (≈2.4 GB/s effective bandwidth)."""

    # --- Disk ------------------------------------------------------------
    disk_seek_us: float = 8000.0
    """One random seek + rotational latency on the 2007 SATA disk."""

    disk_write_us_per_byte: float = 0.018
    """Sequential write (≈55 MB/s)."""

    disk_read_us_per_byte: float = 0.016
    """Sequential read (≈62 MB/s)."""

    # --- Processes / quiesce ----------------------------------------------
    signal_deliver_us: float = 25.0
    """Delivering SIGSTOP/SIGCONT to one process."""

    context_switch_us: float = 6.0
    """One scheduler context switch."""

    fork_interpose_us: float = 2500.0
    """Per-fork tracking while checkpointing is active: interposing on
    process creation, wiring fault handlers and namespace entries.  This
    is what makes the build workload (dozens of compiler processes per
    second) the scenario with the highest checkpoint-recording overhead
    (Figure 2: ~13 % for make)."""

    process_state_save_us: float = 500.0
    """Saving one process's non-memory state (registers, files, credentials,
    signal tables, fd table).  Dominates desktop downtime when many
    applications run at once (Figure 3's real-usage bars)."""

    process_state_restore_us: float = 260.0
    """Recreating one process and restoring its non-memory state."""

    page_restore_us: float = 6.0
    """Installing one restored page into a revived address space (page
    table setup + copy)."""

    # --- File system -------------------------------------------------------
    fs_transaction_us: float = 12.0
    """Appending one transaction record to the log-structured file system."""

    fs_block_sync_us: float = 9.0
    """Syncing one dirty block during (pre-)snapshot."""

    fs_snapshot_base_us: float = 350.0
    """Fixed cost of establishing a snapshot point in the LFS log."""

    fs_snapshot_us_per_txn: float = 3.0
    """Per-transaction metadata finalization at snapshot time: workloads
    that created thousands of files since the last snapshot (untar) pay a
    visibly larger fs-snapshot share of downtime (Figure 3)."""

    fs_copy_up_us_per_byte: float = 0.0009
    """Copying a file from the read-only to the writable union layer."""

    fs_open_us: float = 45.0
    """Opening one file (path resolution + inode fetch)."""

    # --- Display -----------------------------------------------------------
    display_cmd_base_us: float = 150.0
    """Processing one display command through the display server
    (dispatch + rasterization setup).  This is the playback bottleneck:
    command-dense records (web) play back at ~10-30x real time while
    sparse ones (desktop) exceed 200x (Figure 6)."""

    display_us_per_payload_byte: float = 0.00055
    """Rasterizing command payload into the framebuffer."""

    display_log_us_per_byte: float = 0.00035
    """Appending encoded command bytes to the in-memory record stream."""

    display_record_cmd_us: float = 240.0
    """Per-command cost of the recording path: duplicating the command
    into the record stream and competing with the viewer for the CPU.
    This is why the web benchmark (hundreds of commands/s) pays ~9 %
    display-recording overhead while full-screen video (one command per
    frame, 24/s) pays under 1 % (section 6)."""

    screenshot_us_per_byte: float = 0.0005
    """Serializing the framebuffer into a keyframe."""

    # --- Accessibility / indexing -------------------------------------------
    ax_event_dispatch_us: float = 18.0
    """Delivering one accessibility event (synchronous, blocks the app)."""

    ax_real_node_query_us: float = 420.0
    """Querying one component of a *real* accessibility tree.  Expensive:
    each access round-trips between daemon and application ("continuous
    context switching", section 4.2)."""

    ax_mirror_node_us: float = 0.7
    """Touching one node of the daemon's mirror tree."""

    index_token_us: float = 2.2
    """Inserting or closing one token posting in the temporal index."""

    index_query_term_us: float = 1500.0
    """Looking up one query term's posting list (database round trip +
    index probe); a few terms per query lands search latency in the
    single-digit milliseconds of Figure 5."""

    index_posting_us: float = 0.35
    """Scanning/merging one posting during query evaluation."""

    # --- Misc ----------------------------------------------------------------
    zlib_compress_us_per_byte: float = 0.011
    """gzip-class compression of checkpoint data (~90 MB/s)."""

    extra: dict = field(default_factory=dict)
    """Free-form overrides for experiment-specific constants."""

    # ------------------------------------------------------------------ #
    # Composite helpers

    def disk_write_us(self, nbytes, sequential=True):
        """Duration of writing ``nbytes`` to disk (one seek if random)."""
        cost = nbytes * self.disk_write_us_per_byte
        if not sequential:
            cost += self.disk_seek_us
        return cost

    def disk_read_us(self, nbytes, sequential=True):
        """Duration of reading ``nbytes`` from disk (one seek if random)."""
        cost = nbytes * self.disk_read_us_per_byte
        if not sequential:
            cost += self.disk_seek_us
        return cost

    def copy_pages_us(self, npages):
        """Duration of copying ``npages`` whole pages in memory."""
        return npages * self.page_copy_us

    def protect_pages_us(self, npages):
        """Duration of write-protecting ``npages`` pages."""
        return npages * self.page_protect_us

    def compress_us(self, nbytes):
        """Duration of compressing ``nbytes`` with a gzip-class codec."""
        return nbytes * self.zlib_compress_us_per_byte

    @staticmethod
    def pages_for(nbytes):
        """Number of whole pages needed to hold ``nbytes``."""
        return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


DEFAULT_COSTS = CostModel()
"""A shared default instance; treat as read-only."""


def effective_disk_bandwidth_mb_s(costs=DEFAULT_COSTS):
    """Sequential disk write bandwidth implied by the model, in MB/s."""
    return 1.0 / costs.disk_write_us_per_byte


def sanity_check(costs):
    """Validate that a cost model is physically plausible.

    Raises ValueError when a constant is negative or when reads are slower
    than random seeks per byte (which would invert every I/O conclusion).
    """
    for name in (
        "page_copy_us",
        "page_protect_us",
        "disk_seek_us",
        "disk_write_us_per_byte",
        "disk_read_us_per_byte",
        "signal_deliver_us",
        "fs_transaction_us",
        "display_cmd_base_us",
        "ax_real_node_query_us",
        "ax_mirror_node_us",
        "index_token_us",
    ):
        if getattr(costs, name) < 0:
            raise ValueError("cost constant %s must be non-negative" % name)
    if costs.ax_mirror_node_us >= costs.ax_real_node_query_us:
        raise ValueError(
            "mirror tree must be cheaper than the real accessibility tree; "
            "otherwise the daemon design in section 4.2 is pointless"
        )
    return True
