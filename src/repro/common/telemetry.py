"""Unified telemetry: a process-wide but injectable metrics registry.

Every subsystem of the reproduction charges *simulated* time to the shared
:class:`~repro.common.clock.VirtualClock`; this module is the second half of
the observability story — counting what happened and how long it took, in
both virtual and wall time, so the evaluation harness and the CLI can report
where time and bytes go without each bench keeping ad-hoc dicts.

Design rules:

* **Telemetry never charges the clock.**  Instruments only read state, so a
  run with telemetry enabled and one with it disabled produce bit-identical
  simulated results (tested in ``tests/test_telemetry.py``).
* **The disabled path is a guarded no-op.**  :class:`NullRegistry` hands out
  shared inert instruments; call sites cache instrument handles once at
  construction, so a disabled ``counter.inc()`` is a single empty method
  call (micro-benched in ``benchmarks/bench_telemetry_overhead.py``).
* **Process-wide but injectable.**  Components accept ``telemetry=None``
  and fall back to :func:`get_telemetry` (a module-level default, initially
  disabled).  :class:`~repro.desktop.dejaview.DejaView` builds one enabled
  :class:`Telemetry` per recording session and injects it everywhere, so
  concurrent sessions never share counters.

Metric naming scheme (see DESIGN.md "Observability"): dotted lowercase
``<subsystem>.<quantity>[_<unit>]``, e.g. ``checkpoint.downtime_us``,
``daemon.mirror_hits``, ``fs.blocks_written``.  Span-derived histograms are
``span.<span name>.virtual_us`` / ``.wall_ns``.
"""

import math

from repro.common.tracing import NULL_TRACER, Tracer


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name):
        self.name = name
        self._value = 0

    def inc(self, amount=1):
        self._value += amount

    @property
    def value(self):
        return self._value


class Gauge:
    """A value that can go up and down (e.g. mirror-tree size)."""

    __slots__ = ("name", "_value")

    def __init__(self, name):
        self.name = name
        self._value = 0

    def set(self, value):
        self._value = value

    def add(self, amount=1):
        self._value += amount

    @property
    def value(self):
        return self._value


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list (q in [0, 100]).

    ``percentile([1..100], 95) == 95`` — the rank is ``ceil(q/100 * n)``,
    clamped to the ends, which keeps the math exact on the known
    distributions the tests assert against.
    """
    if not sorted_values:
        return None
    rank = math.ceil((q / 100.0) * len(sorted_values))
    rank = min(max(rank, 1), len(sorted_values))
    return sorted_values[rank - 1]


class Histogram:
    """Distribution of observed values with percentile summaries.

    Raw observations are kept (bounded by ``max_samples``, oldest halved
    out) — at the reproduction's scale a scenario run observes thousands of
    values, not millions, and exact percentiles beat approximate sketches
    for regression-testing the cost model.
    """

    __slots__ = ("name", "_values", "_count", "_sum", "_min", "_max",
                 "max_samples")

    def __init__(self, name, max_samples=65536):
        self.name = name
        self.max_samples = max_samples
        self._values = []
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def observe(self, value):
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        self._values.append(value)
        if len(self._values) > self.max_samples:
            # Decimate the oldest half; totals/min/max stay exact, the
            # percentile summary becomes recent-weighted.
            del self._values[: len(self._values) // 2]

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def summary(self):
        """count / sum / min / max / mean / p50 / p95 / p99."""
        if self._count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p95": None, "p99": None}
        ordered = sorted(self._values)
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": percentile(ordered, 50),
            "p95": percentile(ordered, 95),
            "p99": percentile(ordered, 99),
        }


class _NullInstrument:
    """Shared inert counter/gauge/histogram for the disabled fast path."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def add(self, amount=1):
        pass

    def observe(self, value):
        pass

    def summary(self):
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p95": None, "p99": None}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named counters, gauges and histograms for one recording session."""

    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument accessors (get-or-create; handles are cacheable) ----- #

    def counter(self, name):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name):
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------ #

    def snapshot(self):
        """JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def counter_values(self):
        """Just the counters, as a plain dict — cheap enough to call on
        a rollup cadence (no histogram sorting), which is what the
        flight recorder's counter-delta records are built from."""
        return {name: c.value for name, c in self._counters.items()}

    def reset(self):
        """Forget every instrument (new recording session)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self):
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class NullRegistry(MetricsRegistry):
    """Disabled registry: every accessor returns the shared inert
    instrument, and nothing is ever recorded."""

    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name):
        return _NULL_INSTRUMENT

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def counter_values(self):
        return {}


NULL_REGISTRY = NullRegistry()


class Telemetry:
    """One session's metrics registry + tracer, behind a single handle.

    ``Telemetry(clock)`` is enabled; ``Telemetry(enabled=False)`` (or the
    shared :data:`NULL_TELEMETRY`) is the no-op variant.  The tracer needs
    the session's virtual clock to dual-stamp spans; a disabled instance
    needs no clock at all.
    """

    def __init__(self, clock=None, enabled=True, keep_spans=256):
        if enabled and clock is None:
            raise ValueError("enabled telemetry needs a virtual clock")
        self.enabled = enabled
        self.clock = clock
        if enabled:
            self.metrics = MetricsRegistry()
            self.tracer = Tracer(clock, registry=self.metrics,
                                 keep=keep_spans)
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER

    # -- convenience passthroughs --------------------------------------- #

    def counter(self, name):
        return self.metrics.counter(name)

    def gauge(self, name):
        return self.metrics.gauge(name)

    def histogram(self, name):
        return self.metrics.histogram(name)

    def span(self, name, **attributes):
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------ #

    def snapshot(self, span_limit=8):
        """The machine-readable telemetry snapshot (CLI ``--json``)."""
        snap = {"enabled": self.enabled}
        snap.update(self.metrics.snapshot())
        snap["spans"] = self.tracer.snapshot(limit=span_limit)
        return snap

    def reset(self):
        self.metrics.reset()
        self.tracer.reset()


def rollup_snapshots(snapshots):
    """Merge per-session metric snapshots into one fleet-level view.

    ``snapshots`` maps a session name to its ``metrics.snapshot()`` (or
    ``Telemetry.snapshot()``) dict.  Counters and gauges sum across
    sessions; histogram summaries merge with exact count/sum/min/max and
    a count-weighted mean.

    Percentiles cannot be merged exactly from summaries (the raw samples
    are gone), so each quantile is reported two ways:

    * ``p50`` / ``p95`` / ``p99`` — the **count-weighted average** of the
      per-session percentiles.  For sessions drawn from similar
      distributions this tracks the true fleet-wide percentile closely;
      the old max-merge overstated it whenever any single session ran
      hot (one slow member of 16 used to define the whole fleet's p95).
    * ``p50_upper`` / ``p95_upper`` / ``p99_upper`` — the maximum across
      sessions: a guaranteed upper bound on the true fleet percentile
      (the pre-fix behavior, kept for conservative gating).

    ``merge: "count_weighted"`` marks the schema.  The per-session
    snapshots ride along under ``"sessions"``.
    """
    counters = {}
    gauges = {}
    merged_hists = {}
    weighted = {}  # key -> quantile -> [weighted sum, weight]
    for name in sorted(snapshots):
        snap = snapshots[name]
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, summary in snap.get("histograms", {}).items():
            merged = merged_hists.setdefault(
                key, {"count": 0, "sum": 0.0, "min": None, "max": None,
                      "mean": None, "p50": None, "p95": None, "p99": None,
                      "p50_upper": None, "p95_upper": None,
                      "p99_upper": None, "merge": "count_weighted"})
            if not summary.get("count"):
                continue
            merged["count"] += summary["count"]
            merged["sum"] += summary["sum"]
            for side, pick in (("min", min), ("max", max)):
                if merged[side] is None:
                    merged[side] = summary[side]
                elif summary[side] is not None:
                    merged[side] = pick(merged[side], summary[side])
            accum = weighted.setdefault(key, {})
            for quantile in ("p50", "p95", "p99"):
                value = summary.get(quantile)
                if value is None:
                    continue
                upper = quantile + "_upper"
                if merged[upper] is None:
                    merged[upper] = value
                else:
                    merged[upper] = max(merged[upper], value)
                pair = accum.setdefault(quantile, [0.0, 0])
                pair[0] += value * summary["count"]
                pair[1] += summary["count"]
    for key, summary in merged_hists.items():
        if summary["count"]:
            summary["mean"] = summary["sum"] / summary["count"]
        for quantile, (total, weight) in weighted.get(key, {}).items():
            if weight:
                summary[quantile] = total / weight
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(merged_hists.items())),
        "sessions": dict(sorted(snapshots.items())),
    }


NULL_TELEMETRY = Telemetry(enabled=False)

_default_telemetry = NULL_TELEMETRY


def get_telemetry():
    """The process-wide default telemetry (disabled unless installed)."""
    return _default_telemetry


def set_telemetry(telemetry):
    """Install a process-wide default; returns the previous one."""
    global _default_telemetry
    previous = _default_telemetry
    _default_telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


def resolve_telemetry(telemetry):
    """``telemetry`` if given, else the process-wide default."""
    return telemetry if telemetry is not None else _default_telemetry
