"""Deterministic fault injection (failpoints).

The record is only as valuable as its durability: playback, search, and
*Take me back* all assume the display log, checkpoint images, and LFS
snapshots survive the host dying mid-write.  To test that without real
power cuts, the write paths are instrumented with *failpoints* — named
sites where a :class:`FaultPlan` can deterministically fire a fault:

* ``mode="crash"`` raises :class:`InjectedCrash`, modelling the host
  dying at that instant.  The instrumented site leaves a *realistically
  torn* artifact (partial blob, truncated record, half-updated index)
  before re-raising, exactly as a kill -9 would.  ``InjectedCrash``
  derives from :class:`BaseException` so it sails through the blanket
  ``except Exception`` handlers of intermediate layers, like a real
  crash would.
* ``mode="io"`` raises :class:`InjectedFault` (an ``IOError``),
  modelling a transient write error.  Instrumented sites either check
  *before* mutating or roll back, so a transient fault never tears
  state — callers may retry.

Triggers are deterministic: fire on the Nth hit (``after``), with seeded
probability (``probability`` against an injected ``random.Random``), one
shot (``once=True``) or on every eligible hit.  Per-site hit/fired
counters surface through the existing :class:`MetricsRegistry` when a
registry is bound (``faults.hit.<site>`` / ``faults.fired.<site>``).

The no-op fast path mirrors :mod:`repro.common.telemetry`: subsystems
default to the shared :data:`NULL_FAULTS` plan whose ``check`` does
nothing, so an unconfigured recording pays no measurable overhead.
Fault checks never charge the virtual clock — like telemetry, injection
machinery is outside the simulated cost model.
"""

import random

from repro.common.errors import DejaViewError
from repro.common.flightrec import REC_FAULT

#: Canonical catalog of failpoint sites.  Registration lives here (not at
#: subsystem import time) so ``registered_failpoints()`` is complete even
#: before any subsystem module has been imported, and so the crash-point
#: sweep can enumerate every site it must exercise.
FAILPOINTS = {
    "storage.store.pre_commit":
        "CheckpointStorage.store, after serialization but before the "
        "blob and its accounting are committed (crash leaves a torn "
        "half-written blob frame)",
    "storage.cas.page_append":
        "CheckpointStorage.store, mid-way through appending page "
        "payloads to the content-addressed store (crash leaves a torn "
        "uncommitted page plus earlier pages committed with no manifest "
        "referencing them)",
    "storage.cas.manifest_commit":
        "CheckpointStorage.store, after every page is committed to the "
        "content-addressed store but before the manifest blob is written "
        "(crash strands the freshly committed pages as orphans)",
    "storage.shard.flush":
        "ShardedPageCAS.flush_shard, before a shard's queued page "
        "appends are written as one group commit (crash leaves the "
        "whole batch queued in memory — the writes never happened, and "
        "fsck drops the un-referenced queued pages)",
    "storage.shard.group_commit":
        "ShardedPageCAS.flush_shard, after a shard's batch is appended "
        "to its extents but before the group commit is durable (crash "
        "leaves the batch on disk with no commit record; fsck decides "
        "by refcount and reclaims pages of the interrupted store)",
    "lfs.append.mid_block":
        "LogStructuredFS block append, mid-way through the chunk loop "
        "(crash leaves orphan blocks, the last one partial, with the "
        "inode never bumped)",
    "recorder.log.append":
        "DisplayRecorder command-log append (crash leaves a torn TLV "
        "record at the log tail)",
    "recorder.screenshot.mid_write":
        "DisplayRecorder screenshot write (crash leaves a torn keyframe "
        "record with no timeline entry)",
    "index.ingest.post_open":
        "TemporalTextDatabase.open_occurrence, mid-way through posting "
        "insertion (crash leaves a partially indexed, uncommitted "
        "occurrence)",
    "index.close.mid_backfill":
        "TemporalTextDatabase.close_occurrence, mid-way through epoch "
        "bucket back-fill (crash leaves unback-filled buckets)",
    "replay.log.append":
        "EventLog.append (execution record/replay), after the event is "
        "encoded but before the record lands (crash leaves a torn TLV "
        "event at the log tail; recovery truncates to the valid prefix "
        "and appends an EV_RECOVER barrier)",
    "revive.branch.mount":
        "Fleet.revive, after the branch member is admitted but before "
        "the revived container and its COW union mount exist (crash "
        "leaves a fleet member shell with no session behind it; "
        "recovery reclaims the shell and any owner refs without "
        "touching the parent or sibling branches)",
    "revive.branch.refs":
        "Fleet.revive, mid-way through pinning the source checkpoint's "
        "page manifests under the branch owner (crash leaves partial "
        "owner refcounts with no base-manifest record committed; the "
        "branch's storage fsck rebuilds owner refs from committed "
        "manifests only, wiping the partial pins)",
    "thin.tombstone":
        "CheckpointStorage.thin, after the thinned checkpoint's replay "
        "fingerprints are captured but before the THINNED tombstone "
        "commits (crash leaves the image fully intact with no "
        "tombstone; re-running the thinning pass picks it up again — "
        "thinning is idempotent)",
    "thin.drop_refs":
        "CheckpointStorage.thin, mid-way through dropping the thinned "
        "manifest's page references (crash leaves the tombstone "
        "committed and the manifest gone with only part of its refs "
        "dropped; fsck rebuilds this owner's refcounts from surviving "
        "manifests and base pins, reclaiming the remainder)",
}


def registered_failpoints():
    """All registered failpoint site names, sorted."""
    return sorted(FAILPOINTS)


class FaultSpecError(DejaViewError):
    """A fault-plan specification was malformed or named an unknown site."""


class InjectedCrash(BaseException):
    """The simulated host died at a failpoint (kill -9 semantics).

    Derives from :class:`BaseException` so blanket ``except Exception``
    recovery code in intermediate layers cannot swallow it — nothing
    survives a real crash either.
    """

    def __init__(self, site, hit):
        super().__init__("injected crash at %s (hit %d)" % (site, hit))
        self.site = site
        self.hit = hit


class InjectedFault(IOError):
    """A transient I/O error fired at a failpoint; the operation may be
    retried."""

    def __init__(self, site, hit):
        super().__init__("injected fault at %s (hit %d)" % (site, hit))
        self.site = site
        self.hit = hit


class FaultRule:
    """One trigger: fire ``mode`` at ``site`` on the ``after``-th eligible
    hit, gated by ``probability`` against the plan's seeded RNG."""

    __slots__ = ("site", "mode", "after", "probability", "once",
                 "eligible_hits", "fired")

    def __init__(self, site, mode="crash", after=1, probability=1.0,
                 once=True):
        if site not in FAILPOINTS:
            raise FaultSpecError(
                "unknown failpoint %r (registered: %s)"
                % (site, ", ".join(registered_failpoints())))
        if mode not in ("crash", "io"):
            raise FaultSpecError("unknown fault mode %r" % (mode,))
        if after < 1:
            raise FaultSpecError("after must be >= 1, got %r" % (after,))
        if not 0.0 < probability <= 1.0:
            raise FaultSpecError(
                "probability must be in (0, 1], got %r" % (probability,))
        self.site = site
        self.mode = mode
        self.after = after
        self.probability = probability
        self.once = once
        self.eligible_hits = 0
        self.fired = 0


class _NullFaultPlan:
    """Shared inert plan: ``check`` is a no-op attribute lookup + call.

    Mirrors telemetry's null registry so the unconfigured hot path stays
    free of branches and dict traffic.
    """

    active = False

    def __bool__(self):
        return False

    def check(self, site):
        return None

    def hit_snapshot(self):
        return {}


NULL_FAULTS = _NullFaultPlan()


def resolve_faults(faults):
    """``faults`` if given, else the shared no-op plan (the telemetry
    ``resolve_telemetry`` pattern)."""
    return faults if faults is not None else NULL_FAULTS


class FaultPlan:
    """A deterministic set of fault rules plus per-site hit accounting.

    An empty plan is still useful: it counts hits per site (the crash
    sweep runs one as an *observer* to learn how often each site fires
    in a clean run before choosing where to crash).
    """

    active = True

    def __init__(self, rules=None, rng=None, seed=0):
        self.rng = rng if rng is not None else random.Random(seed)
        #: Seed for :meth:`fresh_copy`; None when an external RNG was
        #: injected (its consumed state cannot be reconstructed).
        self._seed = None if rng is not None else seed
        self.rules = []
        self.hits = {}
        self._rules_by_site = {}
        self._metrics = None
        self._m_hit = {}
        self._m_fired = {}
        self._flight = None
        for rule in (rules or ()):
            self._register(rule)

    # -------------------------------------------------------------- #
    # Construction

    def add(self, site, mode="crash", after=1, probability=1.0, once=True):
        """Register one rule; returns it (for inspecting ``fired``)."""
        rule = FaultRule(site, mode=mode, after=after,
                         probability=probability, once=once)
        self._register(rule)
        return rule

    def _register(self, rule):
        self.rules.append(rule)
        self._rules_by_site.setdefault(rule.site, []).append(rule)

    @classmethod
    def parse(cls, spec, rng=None, seed=0):
        """Build a plan from a compact text spec.

        ``spec`` is ``;``-separated rules, each
        ``site[:key=value[,key=value...]]`` — e.g.
        ``"lfs.append.mid_block:after=3"`` or
        ``"recorder.log.append:mode=io,p=0.2,repeat"``.  Keys: ``after``
        (int), ``mode`` (``crash``/``io``), ``p``/``probability``
        (float), ``repeat`` (fire on every eligible hit, not just once).
        """
        plan = cls(rng=rng, seed=seed)
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            site, _, opts = part.partition(":")
            kwargs = {}
            for opt in filter(None, (o.strip() for o in opts.split(","))):
                key, has_value, value = opt.partition("=")
                if key == "repeat" and not has_value:
                    kwargs["once"] = False
                elif key == "after":
                    kwargs["after"] = int(value)
                elif key == "mode":
                    kwargs["mode"] = value
                elif key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                else:
                    raise FaultSpecError(
                        "unknown fault option %r in %r" % (opt, part))
            plan.add(site, **kwargs)
        return plan

    def fresh_copy(self):
        """An unfired clone: same rules, same seed, zero hit state.

        Replaying a faulted recording re-injects its faults through a
        fresh copy — the plan is deterministic under its seed, so the
        clone fires at the same execution points the original did.
        Raises :class:`FaultSpecError` for plans built on an external
        RNG, whose consumed state cannot be reconstructed.
        """
        if self._seed is None:
            raise FaultSpecError(
                "cannot fresh_copy a plan built on an external rng")
        plan = type(self)(seed=self._seed)
        for rule in self.rules:
            plan.add(rule.site, mode=rule.mode, after=rule.after,
                     probability=rule.probability, once=rule.once)
        return plan

    def disarm(self):
        """Stop firing permanently; hit counting continues.

        The reopen path runs on a fresh host — the injected faults died
        with the simulated machine — so recovery code must not be
        subject to the plan that killed the run.  Rules stay visible to
        :meth:`fired` and :meth:`hit_snapshot` (and to
        :meth:`fresh_copy`, which clones the original armed rules)."""
        self._rules_by_site = {}

    # -------------------------------------------------------------- #
    # Telemetry

    def bind_telemetry(self, metrics):
        """Surface per-site hit/fired counters through ``metrics``."""
        self._metrics = metrics
        for site in FAILPOINTS:
            self._m_hit[site] = metrics.counter("faults.hit.%s" % site)
            self._m_fired[site] = metrics.counter("faults.fired.%s" % site)

    def bind_flightrec(self, flightscope):
        """Journal every fired fault through a flight-recorder scope —
        the record lands (and is flushed) *before* the injected
        exception propagates, so the journal's last entry before a
        simulated kill -9 is the failpoint that caused it."""
        self._flight = flightscope

    # -------------------------------------------------------------- #
    # The hot path

    def check(self, site):
        """Count a hit at ``site`` and fire any matching rule.

        Raises :class:`InjectedCrash` or :class:`InjectedFault` when a
        rule triggers; otherwise returns None.  Never charges the
        virtual clock.
        """
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        counter = self._m_hit.get(site)
        if counter is not None:
            counter.inc()
        for rule in self._rules_by_site.get(site, ()):
            if rule.once and rule.fired:
                continue
            rule.eligible_hits += 1
            if rule.eligible_hits < rule.after:
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            rule.fired += 1
            fired = self._m_fired.get(site)
            if fired is not None:
                fired.inc()
            if self._flight is not None:
                self._flight.record(REC_FAULT, {
                    "site": site, "mode": rule.mode, "hit": hit})
            if rule.mode == "crash":
                raise InjectedCrash(site, hit)
            raise InjectedFault(site, hit)
        return None

    # -------------------------------------------------------------- #
    # Introspection

    def fired(self, site=None):
        """Total fires, for one site or overall."""
        rules = self._rules_by_site.get(site, ()) if site else self.rules
        return sum(rule.fired for rule in rules)

    def hit_snapshot(self):
        """Per-site ``{"hits": n, "fired": m}`` map (every registered
        site appears, even if never hit) — the CI fault-matrix artifact."""
        return {
            site: {"hits": self.hits.get(site, 0),
                   "fired": self.fired(site)}
            for site in registered_failpoints()
        }
