"""Tag-length-value (TLV) binary record codec.

The display record log (section 4.1) and the checkpoint image format
(section 5) are both append-only streams of typed binary records.  This
module provides the shared framing: each record is

    +--------+------------+-----------------+---------+
    | tag:u32| length:u32 | payload (bytes) | crc:u32 |
    +--------+------------+-----------------+---------+

in little-endian byte order, preceded once per stream by a magic header that
identifies the stream kind and format version.  The trailing CRC-32 covers
the record header and payload, so a record torn by a crash mid-write is
detected (truncated or mismatched checksum) rather than silently misparsed.
Format version 2 added the checksum trailer; version-1 streams are rejected.
Format version 3 (checkpoint images only) keeps the identical framing but
marks streams whose page records are *digest references* into the
content-addressed page store instead of inline payloads; readers accept
both versions and expose :attr:`RecordReader.version` so the image codec
can pick the right record interpretation.

Streams are written to any file-like object with ``write``; in this
reproduction that is usually a :class:`io.BytesIO` held by the simulated
disk, but the format works equally against real files.

Crash-recovery helpers: :meth:`RecordWriter.write_torn` deliberately emits a
partial record (fault injection), :meth:`RecordWriter.truncate_to` discards a
torn tail, and :func:`scan_valid_prefix` finds the longest valid prefix of a
possibly-torn stream.
"""

import io
import struct
import zlib

_HEADER = struct.Struct("<4sHH")
_RECORD = struct.Struct("<II")
_CRC = struct.Struct("<I")

MAGIC = b"DJVW"
FORMAT_VERSION = 2
#: Streams whose page records reference the content-addressed store.
FORMAT_VERSION_MANIFEST = 3
SUPPORTED_VERSIONS = (FORMAT_VERSION, FORMAT_VERSION_MANIFEST)


class StreamCorrupt(ValueError):
    """The byte stream does not parse as a valid TLV record stream."""


class RecordWriter:
    """Appends TLV records to a binary stream.

    Parameters
    ----------
    fileobj:
        Writable binary file-like object.  If ``None``, an internal
        :class:`io.BytesIO` is created and exposed via :attr:`fileobj`.
    kind:
        16-bit stream kind identifier written into the header (e.g. display
        log vs checkpoint image), so readers can refuse mismatched streams.
    """

    def __init__(self, fileobj=None, kind=0, version=FORMAT_VERSION):
        if version not in SUPPORTED_VERSIONS:
            raise ValueError("unsupported format version %r" % (version,))
        self.fileobj = fileobj if fileobj is not None else io.BytesIO()
        self.kind = kind
        self.version = version
        self._bytes_written = 0
        header = _HEADER.pack(MAGIC, version, kind)
        self.fileobj.write(header)
        self._bytes_written += len(header)

    @property
    def bytes_written(self):
        """Total bytes emitted, including the stream header."""
        return self._bytes_written

    def write(self, tag, payload):
        """Append one record; returns the offset at which it was written."""
        if not 0 <= tag < 2**32:
            raise ValueError("tag out of range: %r" % (tag,))
        payload = bytes(payload)
        offset = self._bytes_written
        head = _RECORD.pack(tag, len(payload))
        self.fileobj.write(head)
        self.fileobj.write(payload)
        self.fileobj.write(_CRC.pack(zlib.crc32(head + payload)))
        self._bytes_written += _RECORD.size + len(payload) + _CRC.size
        return offset

    def write_torn(self, tag, payload, keep=0.5):
        """Append a deliberately torn record: the header plus only a
        ``keep`` fraction of the payload, with no checksum trailer —
        exactly what a crash mid-``write`` leaves behind.  Fault
        injection only; returns the offset of the torn record."""
        payload = bytes(payload)
        offset = self._bytes_written
        head = _RECORD.pack(tag, len(payload))
        partial = payload[:int(len(payload) * keep)]
        self.fileobj.write(head)
        self.fileobj.write(partial)
        self._bytes_written += _RECORD.size + len(partial)
        return offset

    def truncate_to(self, offset):
        """Discard everything at and after ``offset`` (recovery: drop a
        torn tail).  Returns the number of bytes dropped."""
        if not _HEADER.size <= offset <= self._bytes_written:
            raise ValueError("truncate offset %d outside stream" % offset)
        dropped = self._bytes_written - offset
        self.fileobj.seek(offset)
        self.fileobj.truncate()
        self._bytes_written = offset
        return dropped

    def getvalue(self):
        """Return the full stream bytes (only for BytesIO-backed writers)."""
        return self.fileobj.getvalue()

    @classmethod
    def resume(cls, fileobj, expect_kind=None):
        """Reopen an existing (possibly torn) stream for appending.

        Validates the header, scans the longest valid record prefix,
        truncates any torn tail, and returns ``(writer, dropped_bytes,
        record_count)`` with the writer positioned to append after the
        last intact record.  This is how the flight-recorder ring journal
        reuses its newest segment after an unclean shutdown instead of
        abandoning it.  Raises :class:`StreamCorrupt` if the header
        itself is invalid (nothing is resumable then).
        """
        fileobj.seek(0)
        reader = RecordReader(fileobj, expect_kind=expect_kind)
        count = 0
        end_offset = _HEADER.size
        while True:
            try:
                record = next(reader, None)
            except StreamCorrupt:
                break
            if record is None:
                break
            count += 1
            end_offset = fileobj.tell()
        fileobj.seek(0, io.SEEK_END)
        stream_end = fileobj.tell()
        writer = cls.__new__(cls)
        writer.fileobj = fileobj
        writer.kind = reader.kind
        writer.version = reader.version
        writer._bytes_written = stream_end
        dropped = writer.truncate_to(end_offset) if stream_end > end_offset \
            else 0
        return writer, dropped, count


def _read_record(fileobj, offset):
    """Read and verify one record at the stream's current position."""
    head = fileobj.read(_RECORD.size)
    if not head:
        return None
    if len(head) != _RECORD.size:
        raise StreamCorrupt("truncated record header at offset %d" % offset)
    tag, length = _RECORD.unpack(head)
    payload = fileobj.read(length)
    if len(payload) != length:
        raise StreamCorrupt("truncated record payload at offset %d" % offset)
    trailer = fileobj.read(_CRC.size)
    if len(trailer) != _CRC.size:
        raise StreamCorrupt("truncated record checksum at offset %d" % offset)
    (crc,) = _CRC.unpack(trailer)
    if crc != zlib.crc32(head + payload):
        raise StreamCorrupt("record checksum mismatch at offset %d" % offset)
    return tag, payload


class RecordReader:
    """Iterates TLV records from bytes or a readable binary stream."""

    def __init__(self, data, expect_kind=None):
        if isinstance(data, (bytes, bytearray, memoryview)):
            self.fileobj = io.BytesIO(bytes(data))
        else:
            self.fileobj = data
        header = self.fileobj.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StreamCorrupt("stream shorter than header")
        magic, version, kind = _HEADER.unpack(header)
        if magic != MAGIC:
            raise StreamCorrupt("bad magic %r" % (magic,))
        if version not in SUPPORTED_VERSIONS:
            raise StreamCorrupt("unsupported format version %d" % version)
        if expect_kind is not None and kind != expect_kind:
            raise StreamCorrupt(
                "stream kind %d does not match expected %d" % (kind, expect_kind)
            )
        self.kind = kind
        self.version = version

    def __iter__(self):
        return self

    def __next__(self):
        """Return the next ``(tag, payload, offset)`` triple."""
        offset = self.fileobj.tell()
        record = _read_record(self.fileobj, offset)
        if record is None:
            raise StopIteration
        tag, payload = record
        return tag, payload, offset

    def seek_to(self, offset):
        """Position the reader at a record offset previously returned by a
        writer, so iteration resumes from that record."""
        self.fileobj.seek(offset)
        return self


def read_at(data, offset):
    """Random-access read of the single record at ``offset``.

    ``data`` may be bytes or a seekable stream.  Returns ``(tag, payload)``.
    This is how the playback engine fetches screenshots and commands located
    via the timeline index without scanning the whole log.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        fileobj = io.BytesIO(bytes(data))
    else:
        fileobj = data
    fileobj.seek(offset)
    record = _read_record(fileobj, offset)
    if record is None:
        raise StreamCorrupt("no record at offset %d" % offset)
    return record


def scan_valid_prefix(data, expect_kind=None):
    """Find the longest valid prefix of a possibly-torn stream.

    Returns ``(end_offset, records)`` where ``records`` is a list of
    ``(tag, payload, offset)`` triples that parse and checksum cleanly
    and ``end_offset`` is the first byte past the last valid record —
    the offset to :meth:`RecordWriter.truncate_to` during recovery.
    Raises :class:`StreamCorrupt` only if the stream *header* itself is
    invalid (nothing is salvageable then).
    """
    reader = RecordReader(data, expect_kind=expect_kind)
    records = []
    end_offset = _HEADER.size
    while True:
        try:
            record = next(reader, None)
        except StreamCorrupt:
            break
        if record is None:
            break
        records.append(record)
        end_offset = reader.fileobj.tell()
    return end_offset, records
