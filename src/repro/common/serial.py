"""Tag-length-value (TLV) binary record codec.

The display record log (section 4.1) and the checkpoint image format
(section 5) are both append-only streams of typed binary records.  This
module provides the shared framing: each record is

    +--------+----------------+-----------------+
    | tag:u32| length:u32     | payload (bytes) |
    +--------+----------------+-----------------+

in little-endian byte order, preceded once per stream by a magic header that
identifies the stream kind and format version.  Streams are written to any
file-like object with ``write``; in this reproduction that is usually a
:class:`io.BytesIO` held by the simulated disk, but the format works equally
against real files (the examples write real files).
"""

import io
import struct

_HEADER = struct.Struct("<4sHH")
_RECORD = struct.Struct("<II")

MAGIC = b"DJVW"
FORMAT_VERSION = 1


class StreamCorrupt(ValueError):
    """The byte stream does not parse as a valid TLV record stream."""


class RecordWriter:
    """Appends TLV records to a binary stream.

    Parameters
    ----------
    fileobj:
        Writable binary file-like object.  If ``None``, an internal
        :class:`io.BytesIO` is created and exposed via :attr:`fileobj`.
    kind:
        16-bit stream kind identifier written into the header (e.g. display
        log vs checkpoint image), so readers can refuse mismatched streams.
    """

    def __init__(self, fileobj=None, kind=0):
        self.fileobj = fileobj if fileobj is not None else io.BytesIO()
        self.kind = kind
        self._bytes_written = 0
        header = _HEADER.pack(MAGIC, FORMAT_VERSION, kind)
        self.fileobj.write(header)
        self._bytes_written += len(header)

    @property
    def bytes_written(self):
        """Total bytes emitted, including the stream header."""
        return self._bytes_written

    def write(self, tag, payload):
        """Append one record; returns the offset at which it was written."""
        if not 0 <= tag < 2**32:
            raise ValueError("tag out of range: %r" % (tag,))
        payload = bytes(payload)
        offset = self._bytes_written
        self.fileobj.write(_RECORD.pack(tag, len(payload)))
        self.fileobj.write(payload)
        self._bytes_written += _RECORD.size + len(payload)
        return offset

    def getvalue(self):
        """Return the full stream bytes (only for BytesIO-backed writers)."""
        return self.fileobj.getvalue()


class RecordReader:
    """Iterates TLV records from bytes or a readable binary stream."""

    def __init__(self, data, expect_kind=None):
        if isinstance(data, (bytes, bytearray, memoryview)):
            self.fileobj = io.BytesIO(bytes(data))
        else:
            self.fileobj = data
        header = self.fileobj.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StreamCorrupt("stream shorter than header")
        magic, version, kind = _HEADER.unpack(header)
        if magic != MAGIC:
            raise StreamCorrupt("bad magic %r" % (magic,))
        if version != FORMAT_VERSION:
            raise StreamCorrupt("unsupported format version %d" % version)
        if expect_kind is not None and kind != expect_kind:
            raise StreamCorrupt(
                "stream kind %d does not match expected %d" % (kind, expect_kind)
            )
        self.kind = kind

    def __iter__(self):
        return self

    def __next__(self):
        """Return the next ``(tag, payload, offset)`` triple."""
        offset = self.fileobj.tell()
        head = self.fileobj.read(_RECORD.size)
        if not head:
            raise StopIteration
        if len(head) != _RECORD.size:
            raise StreamCorrupt("truncated record header at offset %d" % offset)
        tag, length = _RECORD.unpack(head)
        payload = self.fileobj.read(length)
        if len(payload) != length:
            raise StreamCorrupt("truncated record payload at offset %d" % offset)
        return tag, payload, offset

    def seek_to(self, offset):
        """Position the reader at a record offset previously returned by a
        writer, so iteration resumes from that record."""
        self.fileobj.seek(offset)
        return self


def read_at(data, offset):
    """Random-access read of the single record at ``offset``.

    ``data`` may be bytes or a seekable stream.  Returns ``(tag, payload)``.
    This is how the playback engine fetches screenshots and commands located
    via the timeline index without scanning the whole log.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        fileobj = io.BytesIO(bytes(data))
    else:
        fileobj = data
    fileobj.seek(offset)
    head = fileobj.read(_RECORD.size)
    if len(head) != _RECORD.size:
        raise StreamCorrupt("no record at offset %d" % offset)
    tag, length = _RECORD.unpack(head)
    payload = fileobj.read(length)
    if len(payload) != length:
        raise StreamCorrupt("truncated record payload at offset %d" % offset)
    return tag, payload
