"""Exception hierarchy for the DejaView reproduction.

Every subsystem raises exceptions derived from :class:`DejaViewError` so that
callers can catch failures from the whole stack with a single except clause
while still being able to discriminate by subsystem.
"""


class DejaViewError(Exception):
    """Base class for all errors raised by this library."""


class DisplayError(DejaViewError):
    """Error in the virtual display subsystem (driver, recorder, playback)."""


class VexError(DejaViewError):
    """Error in the virtual execution environment (simulated kernel)."""


class ProcessError(VexError):
    """A process-level operation failed (bad pid, invalid state transition)."""


class VirtualMemoryError(VexError):
    """A virtual-memory operation failed (bad address, protection mismatch).

    Historically exported as ``MemoryError_`` (trailing underscore to
    avoid shadowing the builtin); that alias is deprecated.
    """


class NamespaceError(VexError):
    """A virtual namespace operation failed (duplicate name, missing entry)."""


class CheckpointError(DejaViewError):
    """Checkpointing a session failed or produced an inconsistent image."""


class ReviveError(DejaViewError):
    """Reviving a session from a checkpoint image failed."""


class FileSystemError(DejaViewError):
    """Error in the log-structured or union file system."""


class SnapshotError(FileSystemError):
    """A file system snapshot could not be created or resolved."""


class IndexError_(DejaViewError):
    """Error in the text capture / indexing subsystem.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueryError(IndexError_):
    """A search query was malformed or referenced unknown context fields."""


class PolicyError(DejaViewError):
    """A checkpoint-policy rule was misconfigured."""


def __getattr__(name):
    if name == "MemoryError_":
        import warnings

        warnings.warn(
            "MemoryError_ is deprecated; use VirtualMemoryError",
            DeprecationWarning, stacklevel=2,
        )
        return VirtualMemoryError
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
