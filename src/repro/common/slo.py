"""Declarative SLO watchdogs over fleet telemetry.

A fleet that records everything still needs something to *watch* the
recordings.  An :class:`SLORule` names one quantity — a rollup histogram
percentile, a counter, a counter rate per simulated second, or a derived
service figure like the cross-session dedup ratio — and the threshold it
must satisfy.  An :class:`SLOWatchdog` evaluates its rules against a
fleet's observability context and journals a structured
:data:`~repro.common.flightrec.REC_ALERT` record on every state
*transition* (ok -> violated, violated -> ok), so the flight journal
holds the alert history without one record per evaluation, and
``fleet-stats`` can report the current standing of every objective.

Rules are deliberately declarative (data, not callbacks): they parse
from compact CLI specs, serialize into reports, and evaluate with no
access to anything but the snapshot dict — a watchdog can never perturb
the fleet it watches.
"""

from repro.common.errors import DejaViewError
from repro.common.flightrec import NULL_SCOPE, REC_ALERT

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}

#: CLI shorthand -> (source, metric, stat).
SHORTHANDS = {
    "downtime_p95": ("histogram", "checkpoint.downtime_us", "p95"),
    "downtime_p50": ("histogram", "checkpoint.downtime_us", "p50"),
    "dedup_ratio": ("derived", "dedup_ratio", None),
    "recovery_rate": ("derived", "recovery_rate_per_s", None),
    "crash_count": ("counter", "fleet.sessions_crashed", None),
    "throttle_count": ("counter", "fleet.sessions_throttled", None),
    "writeback_backlog_p95": ("histogram", "fleet.writeback_backlog", "p95"),
    "fork_p95": ("histogram", "fleet.fork_us", "p95"),
    "fork_p50": ("histogram", "fleet.fork_us", "p50"),
    "branch_count": ("counter", "fleet.branches_forked", None),
    "branch_fork_failures": ("counter", "fleet.branch_forks_failed", None),
    "thinned_count": ("counter", "fleet.checkpoints_thinned", None),
    "thin_bytes_freed": ("counter", "fleet.thin_bytes_freed", None),
    "replay_revive_p95": ("histogram", "revive.replay_us", "p95"),
    "replay_revive_p50": ("histogram", "revive.replay_us", "p50"),
}


class SLOSpecError(DejaViewError):
    """An SLO rule specification was malformed."""


class SLORule:
    """One objective: ``<value of metric> <op> <threshold>``.

    ``source`` selects where the value comes from in the evaluation
    context: ``histogram`` (a rollup histogram summary, read at
    ``stat``, e.g. ``p95``), ``counter``, ``gauge``, or ``derived`` (the
    fleet's computed figures: ``dedup_ratio``,
    ``recovery_rate_per_s``, ...).
    """

    __slots__ = ("name", "source", "metric", "stat", "op", "threshold")

    def __init__(self, name, source, metric, op, threshold, stat=None):
        if source not in ("histogram", "counter", "gauge", "derived"):
            raise SLOSpecError("unknown SLO source %r" % (source,))
        if op not in _OPS:
            raise SLOSpecError("unknown SLO op %r (have: %s)"
                               % (op, ", ".join(sorted(_OPS))))
        if source == "histogram" and not stat:
            raise SLOSpecError("histogram rules need a stat (p50/p95/p99)")
        self.name = name
        self.source = source
        self.metric = metric
        self.stat = stat
        self.op = op
        self.threshold = threshold

    @classmethod
    def parse(cls, spec):
        """Parse one rule from a compact spec.

        Shorthand form: ``downtime_p95<=20000`` or ``dedup_ratio>=0.2``
        (see :data:`SHORTHANDS`).  Explicit form:
        ``histogram:checkpoint.downtime_us:p95<=20000`` /
        ``counter:fleet.sessions_crashed<=0`` /
        ``derived:dedup_ratio>=0.2``.
        """
        spec = spec.strip()
        for op in ("<=", ">=", "<", ">"):  # two-char ops first
            if op in spec:
                left, _, right = spec.partition(op)
                break
        else:
            raise SLOSpecError(
                "no comparison operator in SLO spec %r" % (spec,))
        left = left.strip()
        try:
            threshold = float(right.strip())
        except ValueError:
            raise SLOSpecError(
                "bad threshold in SLO spec %r" % (spec,)) from None
        if left in SHORTHANDS:
            source, metric, stat = SHORTHANDS[left]
            return cls(left, source, metric, op, threshold, stat=stat)
        parts = left.split(":")
        if len(parts) == 2:
            source, metric = parts
            stat = None
        elif len(parts) == 3:
            source, metric, stat = parts
        else:
            raise SLOSpecError(
                "SLO spec %r is neither a shorthand (%s) nor "
                "source:metric[:stat]" % (spec, ", ".join(sorted(SHORTHANDS))))
        name = left.replace(":", ".")
        return cls(name, source, metric, op, threshold, stat=stat)

    def value_from(self, context):
        """Read this rule's current value out of an evaluation context
        (None when the quantity has no data yet)."""
        if self.source == "derived":
            return context.get("derived", {}).get(self.metric)
        if self.source == "histogram":
            summary = context.get("histograms", {}).get(self.metric)
            return summary.get(self.stat) if summary else None
        return context.get("%ss" % self.source, {}).get(self.metric)

    def describe(self):
        return {
            "name": self.name,
            "source": self.source,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
        }


def parse_slos(spec):
    """Parse a ``;``-separated rule list (the CLI ``--slo`` argument)."""
    return [SLORule.parse(part)
            for part in spec.split(";") if part.strip()]


def default_slos():
    """The stock fleet objectives: checkpoint downtime p95 under 25 ms,
    cross-session dedup at or above 15 %, and recovery events rarer
    than one per simulated second."""
    return [
        SLORule("downtime_p95", "histogram", "checkpoint.downtime_us",
                "<=", 25_000.0, stat="p95"),
        SLORule("dedup_ratio", "derived", "dedup_ratio", ">=", 0.15),
        SLORule("recovery_rate", "derived", "recovery_rate_per_s",
                "<=", 1.0),
    ]


class SLOWatchdog:
    """Evaluates rules against fleet context and journals transitions.

    ``evaluate(context)`` returns one verdict dict per rule; a rule
    whose quantity has no data yet reports ``ok: None`` (no alert — an
    empty fleet violates nothing).  Alert records (state ``violated`` /
    ``resolved``) go to the bound flight scope only when a rule's
    boolean state changes, so the journal carries the alert *history*,
    bounded by the number of actual transitions.
    """

    def __init__(self, rules=None, flightscope=None):
        self.rules = list(rules) if rules is not None else default_slos()
        self._flight = flightscope if flightscope is not None else NULL_SCOPE
        self._states = {}  # rule name -> last boolean ok
        self.alerts_emitted = 0
        self.evaluations = 0

    def bind_flightscope(self, flightscope):
        self._flight = flightscope

    def evaluate(self, context):
        self.evaluations += 1
        verdicts = []
        for rule in self.rules:
            value = rule.value_from(context)
            ok = None if value is None \
                else _OPS[rule.op](value, rule.threshold)
            verdict = rule.describe()
            verdict["value"] = value
            verdict["ok"] = ok
            verdicts.append(verdict)
            if ok is None:
                continue
            previous = self._states.get(rule.name)
            self._states[rule.name] = ok
            if previous is None and ok:
                continue  # first sight, already healthy: nothing to say
            if previous is None or previous != ok:
                self.alerts_emitted += 1
                self._flight.record(REC_ALERT, {
                    "rule": rule.name,
                    "state": "resolved" if ok else "violated",
                    "metric": rule.metric if rule.stat is None
                    else "%s:%s" % (rule.metric, rule.stat),
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "value": value,
                })
        return verdicts

    def standing(self):
        """Current per-rule boolean state (None = never had data)."""
        return {rule.name: self._states.get(rule.name)
                for rule in self.rules}
