"""Byte and time unit helpers.

All simulated durations in this library are integer **microseconds** and all
sizes are integer **bytes**.  These helpers keep call sites readable and give
benchmarks a single place to format human-readable output.
"""

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

US_PER_MS = 1000
US_PER_SEC = 1_000_000
MS_PER_SEC = 1000


def ms(value):
    """Convert milliseconds to microseconds."""
    return int(value * US_PER_MS)


def seconds(value):
    """Convert seconds to microseconds."""
    return int(value * US_PER_SEC)


def us_to_ms(value_us):
    """Convert microseconds to (float) milliseconds."""
    return value_us / US_PER_MS


def us_to_seconds(value_us):
    """Convert microseconds to (float) seconds."""
    return value_us / US_PER_SEC


def format_bytes(nbytes):
    """Render a byte count as a human-readable string.

    >>> format_bytes(2048)
    '2.0 KiB'
    """
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return "%d B" % int(value)
            return "%.1f %s" % (value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration_us(duration_us):
    """Render a simulated duration as a human-readable string.

    >>> format_duration_us(1500)
    '1.50 ms'
    """
    if duration_us < 1000:
        return "%d us" % duration_us
    if duration_us < US_PER_SEC:
        return "%.2f ms" % (duration_us / US_PER_MS)
    return "%.2f s" % (duration_us / US_PER_SEC)


def format_rate(bytes_per_second):
    """Render a storage growth rate as MB/s (decimal MB, as the paper does)."""
    return "%.2f MB/s" % (bytes_per_second / 1e6)
