"""Shared infrastructure for the DejaView reproduction.

This package hosts the pieces every subsystem relies on:

* :mod:`repro.common.clock` -- the deterministic virtual clock that stands in
  for wall-clock time on the paper's 2007 testbed.
* :mod:`repro.common.events` -- a synchronous publish/subscribe event bus
  (accessibility events in the paper are delivered synchronously, so the bus
  is synchronous by design).
* :mod:`repro.common.costs` -- the calibrated cost model translating abstract
  operations (copying a page, seeking a disk, inserting an index token) into
  simulated microseconds.
* :mod:`repro.common.serial` -- a tag-length-value binary record codec used
  by the display log and the checkpoint image format.
* :mod:`repro.common.units` -- byte/time unit helpers.
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.telemetry` -- the injectable metrics registry
  (counters, gauges, percentile histograms) with a guarded no-op fast path.
* :mod:`repro.common.faults` -- deterministic failpoint injection
  (named crash/IO fault sites with seeded triggers) behind the same
  no-op fast-path pattern as telemetry.
* :mod:`repro.common.tracing` -- nested spans stamped with both virtual and
  wall-clock time.
"""

from repro.common.clock import Stopwatch, VirtualClock
from repro.common.costs import CostModel
from repro.common.errors import (
    CheckpointError,
    DejaViewError,
    DisplayError,
    FileSystemError,
    IndexError_,
    ReviveError,
    VexError,
    VirtualMemoryError,
)
from repro.common.events import EventBus
from repro.common.faults import (
    NULL_FAULTS,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    registered_failpoints,
    resolve_faults,
)
from repro.common.serial import RecordReader, RecordWriter, StreamCorrupt
from repro.common.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.common.tracing import Span, Tracer
from repro.common.units import GiB, KiB, MiB, format_bytes, format_duration_us

__all__ = [
    "VirtualClock",
    "Stopwatch",
    "EventBus",
    "CostModel",
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "RecordReader",
    "RecordWriter",
    "StreamCorrupt",
    "FaultPlan",
    "NULL_FAULTS",
    "InjectedCrash",
    "InjectedFault",
    "registered_failpoints",
    "resolve_faults",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_duration_us",
    "DejaViewError",
    "DisplayError",
    "VexError",
    "CheckpointError",
    "ReviveError",
    "FileSystemError",
    "IndexError_",
    "VirtualMemoryError",
]
