"""The fleet flight recorder: an always-on crash-surviving event journal.

DejaView's pitch is that the *user* can always go back and see what
happened; this module gives the system itself the same property.  Every
closed telemetry span, counter-delta rollup, scheduler decision, quota
throttle, failpoint fire, and recovery action is appended as a typed
record to a size-bounded ring journal, so after a crash ``repro doctor
--post-mortem`` can replay the last seconds of service history from the
surviving bytes — the black-box recorder for the recorder (the rr lesson
from PAPERS.md: a compact stream of events is cheap enough to leave on).

Journal format
--------------

The journal is a directory (or an in-memory list, for tests and
ephemeral fleets) of *segments*.  Each segment is a
:mod:`repro.common.serial` format-v2 TLV stream (stream kind
:data:`STREAM_KIND_FLIGHT`): one record per event, tag = record type,
payload = compact JSON ``[seq, virtual_us, wall_ns, owner, data]``.  The
per-record CRC-32 trailer means a record torn by ``kill -9`` is detected
and dropped — :func:`replay_journal` only ever returns a *verified CRC
prefix* of each segment.  When the active segment exceeds
``segment_bytes`` the recorder rotates to a fresh one and deletes the
oldest beyond ``max_segments``; the journal is therefore bounded at
roughly ``segment_bytes * (max_segments + 1)`` bytes and always holds
the most recent history.

Reopening an existing journal directory *resumes* the newest segment:
the torn tail (if any) is truncated via
:meth:`~repro.common.serial.RecordWriter.resume` and appending
continues after the last intact record, with the sequence counter
carried forward — recovery actions land in the same timeline as the
crash they repair.

Invariants
----------

* **Journaling never charges the virtual clock.**  Records *read*
  ``clock.now_us`` and ``time.perf_counter_ns()``; a journal-enabled run
  is bit-identical (simulated results, recorded bytes) to a disabled
  one.  ``benchmarks/bench_flightrec_overhead.py`` pins this.
* **The disabled path is a guarded no-op.**  :data:`NULL_FLIGHTREC`
  mirrors ``NULL_TELEMETRY`` / ``NULL_FAULTS``: scopes hand back shared
  inert objects, and the tracer sink stays ``None`` so the span hot path
  is untouched.
* **Monotonic sequence numbers.**  One counter per recorder, across all
  owners, so replay can interleave fleet-level scheduler decisions with
  per-member spans in true order even though each runs on its own
  virtual clock.
"""

import io
import json
import os
import time

from repro.common.serial import (
    RecordWriter,
    StreamCorrupt,
    scan_valid_prefix,
)

#: Stream kind for journal segments (refused by other stream readers).
STREAM_KIND_FLIGHT = 0xF17E

# -- record types (TLV tags) ------------------------------------------- #

REC_SPAN = 1        #: a closed telemetry span (name, start, durations)
REC_COUNTERS = 2    #: a counter-delta rollup since the previous rollup
REC_SCHED = 3       #: a fleet scheduler decision (who ran, queue depth)
REC_QUOTA = 4       #: a quota violation parking a session as throttled
REC_FAULT = 5       #: a failpoint fired (the event *before* the crash)
REC_RECOVERY = 6    #: a recovery action (per-subsystem repair summary)
REC_ALERT = 7       #: an SLO watchdog alert (violation or resolution)
REC_EVENT = 8       #: lifecycle event (admission, app launch, done, ...)
REC_FLUSH = 9       #: a shard group commit (batch size, backlog highwater)

REC_NAMES = {
    REC_SPAN: "SPAN",
    REC_COUNTERS: "COUNTERS",
    REC_SCHED: "SCHED",
    REC_QUOTA: "QUOTA",
    REC_FAULT: "FAULT",
    REC_RECOVERY: "RECOVERY",
    REC_ALERT: "ALERT",
    REC_EVENT: "EVENT",
    REC_FLUSH: "FLUSH",
}


class FlightRecord:
    """One decoded journal record."""

    __slots__ = ("seq", "rtype", "virtual_us", "wall_ns", "owner", "data")

    def __init__(self, seq, rtype, virtual_us, wall_ns, owner, data):
        self.seq = seq
        self.rtype = rtype
        self.virtual_us = virtual_us
        self.wall_ns = wall_ns
        self.owner = owner
        self.data = data

    @property
    def type_name(self):
        return REC_NAMES.get(self.rtype, "REC_%d" % self.rtype)

    def to_dict(self):
        return {
            "seq": self.seq,
            "type": self.type_name,
            "virtual_us": self.virtual_us,
            "wall_ns": self.wall_ns,
            "owner": self.owner,
            "data": self.data,
        }

    def __repr__(self):
        return "FlightRecord(#%d %s owner=%r t=%dus)" % (
            self.seq, self.type_name, self.owner, self.virtual_us)


def _encode(seq, virtual_us, wall_ns, owner, data):
    return json.dumps([seq, virtual_us, wall_ns, owner, data],
                      separators=(",", ":"), default=str).encode("utf-8")


def _decode(tag, payload):
    seq, virtual_us, wall_ns, owner, data = json.loads(
        payload.decode("utf-8"))
    return FlightRecord(seq, tag, virtual_us, wall_ns, owner, data)


# ---------------------------------------------------------------------- #
# The no-op fast path


class _NullScope:
    """Inert per-owner view: every record call is one empty method."""

    active = False

    def __bool__(self):
        return False

    def record(self, rtype, data):
        pass

    def record_counter_deltas(self, counter_values):
        pass

    def span_sink(self):
        # None keeps the tracer's per-span `sink is None` fast path.
        return None


class _NullFlightRecorder:
    """Shared disabled recorder (the telemetry NULL_* pattern)."""

    active = False

    def __bool__(self):
        return False

    def scope(self, owner, clock):
        return NULL_SCOPE

    def record(self, rtype, owner, virtual_us, data):
        pass

    def replay(self):
        return JournalReplay([], segments=0, torn_tail_bytes=0)

    def flush(self):
        pass

    def close(self):
        pass


NULL_SCOPE = _NullScope()
NULL_FLIGHTREC = _NullFlightRecorder()


def resolve_flightrec(flightrec):
    """``flightrec`` if given, else the shared no-op recorder."""
    return flightrec if flightrec is not None else NULL_FLIGHTREC


# ---------------------------------------------------------------------- #
# Scopes: one owner + one clock bound to a shared recorder


class FlightScope:
    """A recorder view bound to one owner and one virtual clock.

    A fleet shares one :class:`FlightRecorder` across members whose
    virtual clocks differ; each member (and the fleet itself, on the
    service clock) records through its own scope so every record is
    stamped with the right virtual time.
    """

    __slots__ = ("recorder", "owner", "clock")

    active = True

    def __init__(self, recorder, owner, clock):
        self.recorder = recorder
        self.owner = owner
        self.clock = clock

    def record(self, rtype, data):
        self.recorder.record(rtype, self.owner, self.clock.now_us, data)

    def record_counter_deltas(self, counter_values):
        """Journal one REC_COUNTERS record with the counters that moved
        since this owner's previous rollup (no record if none did)."""
        deltas = self.recorder._counter_deltas(self.owner, counter_values)
        if deltas:
            self.record(REC_COUNTERS, {"deltas": deltas})

    def span_sink(self):
        """A callable for :attr:`~repro.common.tracing.Tracer.sink` that
        journals every closed span under this scope's owner."""
        record = self.record

        def sink(span):
            depth = 0
            parent = span.parent
            while parent is not None:
                depth += 1
                parent = parent.parent
            data = {
                "name": span.name,
                "start_us": span.start_virtual_us,
                "dur_us": span.virtual_us,
                "wall_ns": span.wall_ns,
                "depth": depth,
            }
            if span.parent is not None:
                data["parent"] = span.parent.name
            if span.attributes:
                data["attrs"] = dict(span.attributes)
            record(REC_SPAN, data)

        return sink


# ---------------------------------------------------------------------- #
# The recorder


class FlightRecorder:
    """Appends typed records to a size-bounded ring of journal segments.

    Parameters
    ----------
    directory:
        Journal directory for on-disk segments (``flight-NNNNNN.djj``).
        ``None`` keeps segments in memory (tests, ephemeral fleets) —
        same framing, no crash survival.  An existing directory is
        *resumed*: the newest segment's torn tail is truncated and the
        sequence counter continues after the last intact record.
    segment_bytes:
        Rotation threshold; a segment that crosses it is closed and a
        fresh one opened.
    max_segments:
        Closed segments retained besides the active one; older segments
        are deleted (the ring bound).
    """

    active = True

    def __init__(self, directory=None, segment_bytes=256 * 1024,
                 max_segments=4):
        if segment_bytes < 1024:
            raise ValueError("segment_bytes must be >= 1024")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.max_segments = max_segments
        self._seq = 0
        self._segment_index = 0
        #: (index, path-or-BytesIO) of retained segments, oldest first;
        #: the last entry is the active segment.
        self._segments = []
        self._writer = None
        self._last_counters = {}  # owner -> {counter: value}
        self.records_written = 0
        self.resumed_records = 0
        self.resume_truncated_bytes = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._resume_directory()
        if self._writer is None:
            self._open_segment()

    # -- segment management -------------------------------------------- #

    def _segment_path(self, index):
        return os.path.join(self.directory, "flight-%06d.djj" % index)

    def _resume_directory(self):
        """Adopt existing on-disk segments: keep the ring bound, resume
        the newest segment after its last intact record, and carry the
        sequence counter forward."""
        existing = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith("flight-") and name.endswith(".djj"))
        if not existing:
            return
        indices = [int(name[len("flight-"):-len(".djj")])
                   for name in existing]
        for index in indices:
            self._segments.append((index, self._segment_path(index)))
        self._segment_index = indices[-1]
        # Carry the seq counter past everything already journaled.
        replay = replay_journal(self.directory)
        if replay.records:
            self._seq = replay.records[-1].seq + 1
            self.resumed_records = len(replay.records)
        # Resume the newest segment in place (truncating a torn tail)
        # so post-crash recovery records join the pre-crash timeline.
        path = self._segment_path(self._segment_index)
        try:
            fileobj = open(path, "r+b")
            writer, dropped, _count = RecordWriter.resume(
                fileobj, expect_kind=STREAM_KIND_FLIGHT)
        except (OSError, StreamCorrupt):
            # Unreadable tail segment: leave it for replay-as-is and
            # start a fresh segment after it.
            return
        self.resume_truncated_bytes = dropped
        self._writer = writer
        self._prune_segments()

    def _open_segment(self):
        self._segment_index += 1
        if self.directory is not None:
            path = self._segment_path(self._segment_index)
            fileobj = open(path, "w+b")
            handle = path
        else:
            fileobj = io.BytesIO()
            handle = fileobj
        if self._writer is not None and self.directory is not None:
            self._writer.fileobj.close()
        self._writer = RecordWriter(fileobj, kind=STREAM_KIND_FLIGHT)
        if self.directory is not None:
            fileobj.flush()
        self._segments.append((self._segment_index, handle))
        self._prune_segments()

    def _prune_segments(self):
        while len(self._segments) > self.max_segments + 1:
            _index, handle = self._segments.pop(0)
            if self.directory is not None:
                try:
                    os.remove(handle)
                except OSError:
                    pass

    # -- the hot path --------------------------------------------------- #

    def record(self, rtype, owner, virtual_us, data):
        """Append one record.  Never charges any virtual clock."""
        payload = _encode(self._seq, virtual_us, time.perf_counter_ns(),
                          owner, data)
        self._seq += 1
        self._writer.write(rtype, payload)
        self.records_written += 1
        if self.directory is not None:
            # User-space buffers die with the process on kill -9; the OS
            # page cache does not.  flush() per record is what makes the
            # journal a *flight* recorder (fsync would only add power-loss
            # durability, which the simulated host does not model).
            self._writer.fileobj.flush()
        if self._writer.bytes_written >= self.segment_bytes:
            self._open_segment()

    def _counter_deltas(self, owner, counter_values):
        last = self._last_counters.setdefault(owner, {})
        deltas = {}
        for name, value in counter_values.items():
            previous = last.get(name, 0)
            if value != previous:
                deltas[name] = value - previous
                last[name] = value
        return deltas

    # -- convenience ---------------------------------------------------- #

    def scope(self, owner, clock):
        """A per-owner, per-clock recording view."""
        return FlightScope(self, owner, clock)

    def flush(self):
        if self.directory is not None and self._writer is not None:
            self._writer.fileobj.flush()

    def close(self):
        if self.directory is not None and self._writer is not None:
            self._writer.fileobj.flush()
            self._writer.fileobj.close()
            self._writer = None

    # -- replay --------------------------------------------------------- #

    def segment_data(self):
        """Raw bytes of every retained segment, oldest first."""
        blobs = []
        for _index, handle in self._segments:
            if self.directory is not None:
                try:
                    with open(handle, "rb") as fh:
                        blobs.append(fh.read())
                except OSError:
                    continue
            else:
                blobs.append(handle.getvalue())
        return blobs

    def replay(self):
        """Decode the retained journal (verified CRC prefix per
        segment); see :func:`replay_segments`."""
        return replay_segments(self.segment_data())


class JournalReplay:
    """Decoded journal state: records in seq order plus integrity info."""

    def __init__(self, records, segments, torn_tail_bytes,
                 undecodable_records=0):
        #: :class:`FlightRecord` list, ascending seq.
        self.records = records
        #: Segments scanned.
        self.segments = segments
        #: Bytes past the last CRC-verified record across segments — a
        #: crash mid-append leaves exactly this much torn tail.
        self.torn_tail_bytes = torn_tail_bytes
        #: Records whose CRC verified but whose payload did not decode.
        self.undecodable_records = undecodable_records

    @property
    def verified(self):
        """True when every retained byte belongs to an intact record."""
        return self.torn_tail_bytes == 0 and self.undecodable_records == 0

    def last(self, k):
        """The most recent ``k`` records (the post-mortem window)."""
        return self.records[-k:] if k else list(self.records)

    def of_type(self, rtype):
        return [r for r in self.records if r.rtype == rtype]

    def by_owner(self, owner):
        return [r for r in self.records if r.owner == owner]

    def window_us(self, start_us, end_us):
        """Records whose virtual stamp falls inside [start_us, end_us]
        (owners run on their own clocks; filter per owner if needed)."""
        return [r for r in self.records
                if start_us <= r.virtual_us <= end_us]

    def to_dict(self, last=None):
        records = self.last(last) if last else self.records
        return {
            "segments": self.segments,
            "records_total": len(self.records),
            "torn_tail_bytes": self.torn_tail_bytes,
            "undecodable_records": self.undecodable_records,
            "verified": self.verified,
            "records": [r.to_dict() for r in records],
        }


def replay_segments(blobs):
    """Decode journal segments (byte blobs, oldest first) into a
    :class:`JournalReplay`.  Each segment contributes only its longest
    valid CRC prefix; a segment whose header is torn contributes
    nothing but counts its bytes as torn tail."""
    records = []
    torn = 0
    undecodable = 0
    for blob in blobs:
        try:
            end_offset, raw = scan_valid_prefix(
                blob, expect_kind=STREAM_KIND_FLIGHT)
        except StreamCorrupt:
            torn += len(blob)
            continue
        torn += len(blob) - end_offset
        for tag, payload, _offset in raw:
            try:
                records.append(_decode(tag, payload))
            except (ValueError, UnicodeDecodeError):
                undecodable += 1
    records.sort(key=lambda r: r.seq)
    return JournalReplay(records, segments=len(blobs),
                         torn_tail_bytes=torn,
                         undecodable_records=undecodable)


def replay_journal(directory):
    """Replay an on-disk journal directory (the post-crash entry point:
    works on the surviving bytes alone, no recorder needed)."""
    blobs = []
    try:
        names = sorted(
            name for name in os.listdir(directory)
            if name.startswith("flight-") and name.endswith(".djj"))
    except OSError:
        names = []
    for name in names:
        try:
            with open(os.path.join(directory, name), "rb") as fh:
                blobs.append(fh.read())
        except OSError:
            continue
    return replay_segments(blobs)


# ---------------------------------------------------------------------- #
# Post-mortem rendering


def _summarize(record):
    data = record.data
    if record.rtype == REC_SPAN:
        extra = ""
        if data.get("attrs"):
            extra = " " + " ".join(
                "%s=%s" % kv for kv in sorted(data["attrs"].items()))
        return "%s%s dur=%sus depth=%d%s" % (
            "  " * data.get("depth", 0), data.get("name", "?"),
            data.get("dur_us"), data.get("depth", 0), extra)
    if record.rtype == REC_SCHED:
        return "picked=%s runnable=%d consumed=%sus state=%s" % (
            data.get("picked"), data.get("runnable", 0),
            data.get("consumed_us"), data.get("state"))
    if record.rtype == REC_QUOTA:
        return "%s used=%s limit=%s -> throttled" % (
            data.get("quota"), data.get("used"), data.get("limit"))
    if record.rtype == REC_FAULT:
        return "%s mode=%s hit=%s" % (
            data.get("site"), data.get("mode"), data.get("hit"))
    if record.rtype == REC_RECOVERY:
        action = data.get("action", "?")
        rest = " ".join("%s=%s" % (k, v) for k, v in sorted(data.items())
                        if k != "action")
        return ("%s %s" % (action, rest)).strip()
    if record.rtype == REC_ALERT:
        return "%s %s: %s %s %s (value=%s)" % (
            data.get("state", "?"), data.get("rule"), data.get("metric"),
            data.get("op"), data.get("threshold"), data.get("value"))
    if record.rtype == REC_FLUSH:
        return "shard=%s pages=%s bytes=%s backlog=%s highwater=%s" % (
            data.get("shard"), data.get("pages"), data.get("bytes"),
            data.get("backlog_bytes"), data.get("backlog_highwater_bytes"))
    if record.rtype == REC_COUNTERS:
        deltas = data.get("deltas", {})
        shown = sorted(deltas.items())[:4]
        line = " ".join("%s+%s" % kv for kv in shown)
        if len(deltas) > len(shown):
            line += " (+%d more)" % (len(deltas) - len(shown))
        return line
    # REC_EVENT and anything newer
    event = data.get("event", "?")
    rest = " ".join("%s=%s" % (k, v) for k, v in sorted(data.items())
                    if k != "event")
    return ("%s %s" % (event, rest)).strip()


def format_post_mortem(replay, last=40):
    """Human-readable last-K-events timeline from a
    :class:`JournalReplay` — what ``repro doctor --post-mortem``
    prints.  Returns a list of lines."""
    lines = []
    total = len(replay.records)
    shown = replay.last(last)
    lines.append(
        "flight journal: %d record(s) across %d segment(s), %s"
        % (total, replay.segments,
           "CRC prefix verified" if replay.verified
           else "torn tail: %d byte(s) dropped" % replay.torn_tail_bytes))
    if len(shown) < total:
        lines.append("... %d earlier record(s) rotated/omitted ..."
                     % (total - len(shown)))
    for record in shown:
        lines.append("#%-5d t=%10.3fms %-8s %-8s %s" % (
            record.seq, record.virtual_us / 1000.0, record.owner,
            record.type_name, _summarize(record)))
    return lines
