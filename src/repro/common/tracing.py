"""Nested spans stamped with virtual *and* wall-clock time.

The paper's evaluation reports *simulated* latencies (the virtual clock is
what stands in for the 2007 testbed), while ROADMAP's performance work needs
the *real* cost of this implementation.  A :class:`Span` therefore carries
two intervals for the same piece of work:

* ``virtual_us`` — elapsed :class:`~repro.common.clock.VirtualClock` time,
  i.e. what the paper's figures would show;
* ``wall_ns`` — elapsed ``time.perf_counter_ns()`` time, i.e. what this
  Python implementation actually spent.

Spans nest: the checkpoint engine opens one ``checkpoint`` span per
checkpoint with one child span per pipeline phase, so a single trace shows
where both kinds of time went in one pass.

Tracing never *charges* the virtual clock — it only reads it — so enabling
or disabling a tracer can never change simulated results.  The
:class:`NullTracer` is the guarded no-op fast path: its ``span()`` returns a
shared reusable context manager whose enter/exit do nothing, so an
uninstrumented run pays one attribute lookup and two empty calls per span
site.
"""

import time
from collections import deque


class Span:
    """One timed operation, possibly with nested children."""

    __slots__ = ("name", "attributes", "parent", "children",
                 "start_virtual_us", "end_virtual_us",
                 "start_wall_ns", "end_wall_ns")

    def __init__(self, name, start_virtual_us, start_wall_ns, parent=None,
                 attributes=None):
        self.name = name
        self.parent = parent
        self.children = []
        self.attributes = dict(attributes or {})
        self.start_virtual_us = start_virtual_us
        self.end_virtual_us = None
        self.start_wall_ns = start_wall_ns
        self.end_wall_ns = None

    def set(self, key, value):
        """Attach an attribute to the span (e.g. pages saved).

        Raises :class:`ValueError` once the span has closed: a finished
        span may already have been exported (flight-recorder journal,
        span histograms), so late mutation would silently diverge from
        what observers saw.
        """
        if self.end_virtual_us is not None:
            raise ValueError(
                "span %r is closed; attributes are immutable after close"
                % (self.name,))
        self.attributes[key] = value
        return self

    @property
    def finished(self):
        return self.end_virtual_us is not None

    @property
    def virtual_us(self):
        """Elapsed simulated time (None while the span is open)."""
        if self.end_virtual_us is None:
            return None
        return self.end_virtual_us - self.start_virtual_us

    @property
    def wall_ns(self):
        """Elapsed host time in nanoseconds (None while open)."""
        if self.end_wall_ns is None:
            return None
        return self.end_wall_ns - self.start_wall_ns

    def to_dict(self):
        """JSON-ready representation, children included."""
        record = {
            "name": self.name,
            "start_virtual_us": self.start_virtual_us,
            "virtual_us": self.virtual_us,
            "wall_ns": self.wall_ns,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def __repr__(self):
        return "Span(%r, virtual_us=%r, wall_ns=%r, children=%d)" % (
            self.name, self.virtual_us, self.wall_ns, len(self.children))


class _SpanContext:
    """Context manager opening/closing one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(self, tracer, name, attributes):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span = None

    def __enter__(self):
        self.span = self._tracer._begin(self._name, self._attributes)
        return self.span

    def __exit__(self, *exc):
        self._tracer._end(self.span)
        return False


class Tracer:
    """Produces nested spans on one virtual clock.

    ``registry`` (optional, a :class:`~repro.common.telemetry.MetricsRegistry`)
    receives two histogram observations per finished span —
    ``span.<name>.virtual_us`` and ``span.<name>.wall_ns`` — so percentile
    summaries survive even after old raw spans rotate out of the bounded
    ``roots`` buffer.
    """

    enabled = True

    def __init__(self, clock, registry=None, keep=256):
        self.clock = clock
        self.registry = registry
        #: Most recent finished root spans (bounded; oldest dropped).
        self.roots = deque(maxlen=keep)
        self.span_count = 0
        self._active = None
        #: Optional callable invoked with every finished span (the flight
        #: recorder's journal hook).  Sinks only *read* the span; the
        #: span is already closed and stamped when the sink sees it.
        self.sink = None

    # ------------------------------------------------------------------ #

    def span(self, name, **attributes):
        """Open a span: ``with tracer.span("checkpoint.quiesce"): ...``"""
        return _SpanContext(self, name, attributes)

    @property
    def current(self):
        """The innermost open span (None outside any span)."""
        return self._active

    def _begin(self, name, attributes):
        span = Span(
            name,
            start_virtual_us=self.clock.now_us,
            start_wall_ns=time.perf_counter_ns(),
            parent=self._active,
            attributes=attributes,
        )
        if self._active is not None:
            self._active.children.append(span)
        self._active = span
        return span

    def _end(self, span):
        span.end_virtual_us = self.clock.now_us
        span.end_wall_ns = time.perf_counter_ns()
        self._active = span.parent
        if span.parent is None:
            self.roots.append(span)
        self.span_count += 1
        if self.registry is not None:
            self.registry.histogram(
                "span.%s.virtual_us" % span.name).observe(span.virtual_us)
            self.registry.histogram(
                "span.%s.wall_ns" % span.name).observe(span.wall_ns)
        if self.sink is not None:
            self.sink(span)

    # ------------------------------------------------------------------ #

    def snapshot(self, limit=8):
        """JSON-ready trace state: totals plus the last ``limit`` roots."""
        roots = list(self.roots)[-limit:] if limit is not None \
            else list(self.roots)
        return {
            "span_count": self.span_count,
            "retained_roots": len(self.roots),
            "recent_roots": [r.to_dict() for r in roots],
        }

    def reset(self):
        self.roots.clear()
        self.span_count = 0
        self._active = None


class _NullSpan:
    """Inert span: every mutation is a no-op."""

    __slots__ = ()
    name = ""
    attributes = {}
    children = ()
    parent = None
    virtual_us = None
    wall_ns = None
    finished = False

    def set(self, key, value):
        return self

    def to_dict(self):
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled fast path: span() hands back one shared no-op context."""

    enabled = False
    span_count = 0
    roots = ()
    current = None

    def span(self, name, **attributes):
        return _NULL_SPAN_CONTEXT

    def snapshot(self, limit=8):
        return {"span_count": 0, "retained_roots": 0, "recent_roots": []}

    def reset(self):
        pass


NULL_TRACER = NullTracer()
