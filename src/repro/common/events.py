"""Synchronous publish/subscribe event bus.

The paper's accessibility infrastructure delivers events *synchronously*:
"applications block until event delivery is finished" (section 4.2).  The bus
therefore invokes every subscriber inline, on the publisher's (virtual)
thread, and returns only once all handlers have run.  This property is what
makes the mirror-tree optimization in :mod:`repro.access.daemon` matter: slow
handlers directly stall the application that generated the event.
"""

from collections import defaultdict


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use to unsubscribe."""

    __slots__ = ("topic", "handler", "_bus", "_active")

    def __init__(self, bus, topic, handler):
        self._bus = bus
        self.topic = topic
        self.handler = handler
        self._active = True

    @property
    def active(self):
        return self._active

    def cancel(self):
        """Stop receiving events.  Idempotent."""
        if self._active:
            self._bus._remove(self)
            self._active = False


class EventBus:
    """Topic-based synchronous event dispatch.

    Handlers are invoked in subscription order.  A handler raising an
    exception propagates to the publisher, mirroring the way a buggy
    accessibility client can take down the application that emitted the
    event.
    """

    def __init__(self):
        self._subs = defaultdict(list)
        self._published_count = 0
        self._delivered_count = 0
        self._error_count = 0

    def subscribe(self, topic, handler):
        """Register ``handler`` for ``topic`` and return a Subscription."""
        if not callable(handler):
            raise TypeError("handler must be callable")
        sub = Subscription(self, topic, handler)
        self._subs[topic].append(sub)
        return sub

    def publish(self, topic, event):
        """Deliver ``event`` synchronously to every subscriber of ``topic``.

        Returns the number of handlers that received the event.  A handler
        is counted as delivered-to *before* it runs, so an exception (which
        still propagates to the publisher, as in the real accessibility
        stack) cannot silently corrupt the delivery accounting; the failure
        itself is tallied in :attr:`error_count`.
        """
        self._published_count += 1
        # Copy: a handler may subscribe/unsubscribe during delivery.
        delivered = 0
        for sub in list(self._subs.get(topic, ())):
            if sub.active:
                delivered += 1
                self._delivered_count += 1
                try:
                    sub.handler(event)
                except BaseException:
                    self._error_count += 1
                    raise
        return delivered

    def subscriber_count(self, topic):
        return sum(1 for sub in self._subs.get(topic, ()) if sub.active)

    @property
    def published_count(self):
        """Total number of publish() calls, for instrumentation."""
        return self._published_count

    @property
    def delivered_count(self):
        """Total (publish, handler) deliveries, including ones whose
        handler subsequently raised."""
        return self._delivered_count

    @property
    def error_count(self):
        """Handler invocations that raised out of publish()."""
        return self._error_count

    def _remove(self, sub):
        handlers = self._subs.get(sub.topic)
        if handlers and sub in handlers:
            handlers.remove(sub)
