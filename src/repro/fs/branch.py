"""Branchable file system views.

"DejaView's combination of unioning and file system snapshots provides a
branchable file system to enable DejaView to create multiple revived
sessions from a single checkpoint" (section 5.2).

The :class:`BranchableStore` wraps the session's log-structured file system
and hands out independent read-write branches rooted at any recorded
checkpoint counter.  Branches never interfere: each gets its own writable
upper layer, and the shared lower layer is an immutable snapshot.
"""

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.fs.lfs import LogStructuredFS
from repro.fs.union import ReadOnlyUnionView, UnionMount


class BranchableStore:
    """The session file system plus its revive branches."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS, fs=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.fs = fs if fs is not None else LogStructuredFS(
            clock=self.clock, costs=costs
        )
        self.branches = []

    # ------------------------------------------------------------------ #
    # Checkpoint-side interface (called by the checkpoint engine)

    def pre_snapshot_sync(self):
        """Flush dirty blocks ahead of quiescing (section 5.1.2)."""
        return self.fs.sync()

    def take_snapshot(self, checkpoint_counter):
        """Snapshot the live file system and bind it to a checkpoint."""
        txn = self.fs.snapshot()
        self.fs.associate_checkpoint(checkpoint_counter, txn)
        return txn

    # ------------------------------------------------------------------ #
    # Revive-side interface

    def branch_at(self, checkpoint_counter, clock=None, costs=None):
        """Create an independent writable view of the file system exactly
        as it was at ``checkpoint_counter``.

        The branch's writable layer is itself a log-structured file system,
        so "the revived session retains DejaView's ability to continuously
        checkpoint session state and later revive it" (section 5.2).

        ``clock``/``costs`` put the branch's writable layer on a *foreign*
        timeline — a fleet branch forked from this store runs on its own
        clock, and its writes must never advance the parent's.  Lower-layer
        reads are clock-free, so sharing the snapshot is safe.
        """
        clock = clock if clock is not None else self.clock
        costs = costs if costs is not None else self.costs
        lower = self.fs.view_for_checkpoint(checkpoint_counter)
        upper = LogStructuredFS(clock=clock, costs=costs)
        branch = UnionMount(lower, upper, clock=clock, costs=costs)
        self.branches.append(branch)
        return branch

    @property
    def branch_count(self):
        return len(self.branches)


class RevivedStore:
    """Checkpoint-side file system store for a *revived* session.

    A revived session's file system is a union mount: a read-only lower
    snapshot plus a writable upper LFS.  To keep checkpointing the revived
    session, only the upper layer needs snapshotting — the lower layer is
    immutable by construction.  Branching a checkpoint of the revived
    session stacks three layers: a fresh writable upper on top of
    (upper-at-snapshot, original lower).

    This is what section 5.2 means by "by using the same log structured
    file system for the writable layer, the revived session retains
    DejaView's ability to continuously checkpoint session state and later
    revive it."
    """

    def __init__(self, mount, clock=None, costs=DEFAULT_COSTS):
        self.mount = mount
        self.clock = clock if clock is not None else mount.clock
        self.costs = costs
        self.branches = []

    @property
    def fs(self):
        """The writable layer (where relinking etc. happens)."""
        return self.mount.upper_fs

    def pre_snapshot_sync(self):
        return self.fs.sync()

    def take_snapshot(self, checkpoint_counter):
        txn = self.fs.snapshot()
        self.fs.associate_checkpoint(checkpoint_counter, txn)
        return txn

    def branch_at(self, checkpoint_counter, clock=None, costs=None):
        clock = clock if clock is not None else self.clock
        costs = costs if costs is not None else self.costs
        upper_view = self.fs.view_for_checkpoint(checkpoint_counter)
        lower = ReadOnlyUnionView([upper_view, self.mount.lower])
        fresh_upper = LogStructuredFS(clock=clock, costs=costs)
        branch = UnionMount(lower, fresh_upper, clock=clock, costs=costs)
        self.branches.append(branch)
        return branch

    @property
    def branch_count(self):
        return len(self.branches)
