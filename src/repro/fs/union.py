"""Union mounts: writable layer stacked on a read-only snapshot.

Section 5.2: "DejaView leverages unioning file systems to join the
read-only snapshot with a writable file system by stacking the latter on top
of the former ... file system objects from the writable layer are always
visible, while objects from the read-only layer are only visible if no
corresponding object exists in the other layer."

Semantics implemented here (matching UnionFS):

* lookup order: upper layer first, then whiteout check, then lower layer;
* modifying an object that exists only in the lower layer *copies it up*
  to the upper layer first (charged per byte — the paper notes desktop
  applications rarely modify large files in place, mostly rewriting them
  wholesale, which skips the copy);
* deletion of a lower-layer object creates a *whiteout* marker in the
  upper layer.
"""

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import FileSystemError
from repro.fs.lfs import WHITEOUT_PREFIX, LogStructuredFS
from repro.fs.vfs import join_path, normalize_path, path_components, split_path


def _whiteout_path(path):
    parent, name = split_path(path)
    return join_path(parent, WHITEOUT_PREFIX + name)


class UnionMount:
    """A read-write union of a read-only lower view and a writable upper.

    ``lower`` is any object with the read API (usually a
    :class:`~repro.fs.lfs.SnapshotView`); ``upper`` is a writable
    :class:`~repro.fs.lfs.LogStructuredFS` (defaults to a fresh one, which
    keeps revived sessions snapshotable — section 5.2).
    """

    def __init__(self, lower, upper=None, clock=None, costs=DEFAULT_COSTS):
        self.lower = lower
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.upper = upper if upper is not None else LogStructuredFS(
            clock=self.clock, costs=costs
        )
        self.copy_up_count = 0
        self.copy_up_bytes = 0

    # ------------------------------------------------------------------ #
    # Visibility helpers

    def _whiteout_present(self, path):
        """Is the path (or any ancestor) whited out in the upper layer?"""
        current = "/"
        for name in path_components(path):
            child = join_path(current, name)
            if self.upper.exists(_whiteout_path(child)):
                return True
            current = child
        return False

    def _in_upper(self, path):
        return self.upper.exists(path)

    def _in_lower(self, path):
        return not self._whiteout_present(path) and self.lower.exists(path)

    def exists(self, path):
        path = normalize_path(path)
        return self._in_upper(path) or self._in_lower(path)

    def is_dir(self, path):
        path = normalize_path(path)
        if self._in_upper(path):
            return self.upper.is_dir(path)
        if self._in_lower(path):
            return self.lower.is_dir(path)
        return False

    # ------------------------------------------------------------------ #
    # Read API

    def read_file(self, path):
        path = normalize_path(path)
        if self._in_upper(path):
            return self.upper.read_file(path)
        if self._in_lower(path):
            return self.lower.read_file(path)
        raise FileSystemError("no such file or directory: %s" % path)

    def stat(self, path):
        path = normalize_path(path)
        if self._in_upper(path):
            return self.upper.stat(path)
        if self._in_lower(path):
            return self.lower.stat(path)
        raise FileSystemError("no such file or directory: %s" % path)

    def listdir(self, path):
        path = normalize_path(path)
        if not self.exists(path):
            raise FileSystemError("no such file or directory: %s" % path)
        names = set()
        if self._in_upper(path) and self.upper.is_dir(path):
            names.update(self.upper.listdir(path))
        if self._in_lower(path) and self.lower.is_dir(path):
            for name in self.lower.listdir(path):
                child = join_path(path, name)
                if not self.upper.exists(_whiteout_path(child)):
                    names.add(name)
        return sorted(names)

    def walk_files(self, path="/"):
        stack = [normalize_path(path)]
        while stack:
            current = stack.pop()
            for name in self.listdir(current):
                child = join_path(current, name)
                if self.is_dir(child):
                    stack.append(child)
                else:
                    yield child

    # ------------------------------------------------------------------ #
    # Write API

    def _ensure_upper_dirs(self, path):
        """Materialize the parent chain of ``path`` in the upper layer."""
        parent, _name = split_path(path)
        current = "/"
        for name in path_components(parent):
            child = join_path(current, name)
            if not self.upper.exists(child):
                if not self._in_lower(child) or not self.lower.is_dir(child):
                    raise FileSystemError("no such directory: %s" % child)
                self.upper.mkdir(child)
            current = child

    def _copy_up(self, path):
        """Copy a lower-layer file into the upper layer (section 5.2)."""
        data = self.lower.read_file(path)
        self._ensure_upper_dirs(path)
        self.upper.create(path, data)
        self.copy_up_count += 1
        self.copy_up_bytes += len(data)
        self.clock.advance_us(len(data) * self.costs.fs_copy_up_us_per_byte)

    def _clear_whiteout(self, path):
        wh = _whiteout_path(path)
        if self.upper.exists(wh):
            self.upper.unlink(wh)

    def write_file(self, path, data, append=False):
        path = normalize_path(path)
        if not self._in_upper(path) and self._in_lower(path):
            if append:
                # Appending modifies existing content: copy-up required.
                self._copy_up(path)
            else:
                # Whole-file rewrite: no need to copy old contents
                # ("they overwrite files completely, which obviates the
                # need to copy the file between the layers").
                self._ensure_upper_dirs(path)
        else:
            self._ensure_upper_dirs(path)
        self._clear_whiteout(path)
        return self.upper.write_file(path, data, append=append)

    def write_at(self, path, offset, data):
        path = normalize_path(path)
        if not self._in_upper(path):
            if self._in_lower(path):
                self._copy_up(path)
            else:
                raise FileSystemError("no such file or directory: %s" % path)
        return self.upper.write_at(path, offset, data)

    def mkdir(self, path):
        path = normalize_path(path)
        if self.exists(path):
            raise FileSystemError("path already exists: %s" % path)
        self._ensure_upper_dirs(path)
        self._clear_whiteout(path)
        return self.upper.mkdir(path)

    def makedirs(self, path):
        path = normalize_path(path)
        current = "/"
        for name in path_components(path):
            child = join_path(current, name)
            if not self.exists(child):
                self.mkdir(child)
            current = child

    def unlink(self, path):
        path = normalize_path(path)
        existed_lower = self._in_lower(path)
        existed_upper = self._in_upper(path)
        if not existed_lower and not existed_upper:
            raise FileSystemError("no such file or directory: %s" % path)
        if existed_upper:
            self.upper.unlink(path)
        if existed_lower:
            # Hide the lower object behind a whiteout marker.
            self._ensure_upper_dirs(path)
            wh = _whiteout_path(path)
            if not self.upper.exists(wh):
                self.upper.create(wh)

    def rename(self, src, dst):
        data = self.read_file(src)
        self.write_file(dst, data)
        self.unlink(src)

    def create(self, path, data=b"", mode=0o644):
        path = normalize_path(path)
        if self.exists(path):
            raise FileSystemError("path already exists: %s" % path)
        self._ensure_upper_dirs(path)
        self._clear_whiteout(path)
        return self.upper.create(path, data, mode=mode)

    def open(self, path):
        """Open a file handle in the writable layer, copying up a
        lower-only file first — handles carry upper-layer inode ids so
        the checkpoint engine's open-unlinked relinking keeps working on
        a branch."""
        path = normalize_path(path)
        if not self._in_upper(path):
            if not self._in_lower(path):
                raise FileSystemError(
                    "no such file or directory: %s" % path)
            self._copy_up(path)
        return self.upper.open(path)

    # ------------------------------------------------------------------ #
    # Session-grade surface: a revived branch uses the union mount as its
    # primary file system, so it must also carry the bookkeeping API a
    # recording session expects (sync barriers, byte accounting, crash
    # recovery, telemetry/fault bindings).  All of it delegates to the
    # writable layer — the lower snapshot is immutable and costless.

    def sync(self):
        """Flush the writable layer's dirty blocks."""
        return self.upper.sync()

    @property
    def log_bytes(self):
        return self.upper.log_bytes

    def visible_bytes(self, txn=None):
        """Visible size of the union: the writable layer plus every
        lower-layer file not shadowed or whited out."""
        total = self.upper.visible_bytes(txn)
        for path in self.lower.walk_files("/"):
            if not self._in_upper(path) and self._in_lower(path):
                total += self.lower.stat(path)["size"]
        return total

    def recover(self):
        """Post-crash recovery of the writable layer (the lower snapshot
        is read-only and cannot tear)."""
        return self.upper.recover()

    def bind_telemetry(self, telemetry):
        bind = getattr(self.upper, "bind_telemetry", None)
        if bind is not None:
            bind(telemetry)

    def bind_faults(self, faults):
        bind = getattr(self.upper, "bind_faults", None)
        if bind is not None:
            bind(faults)

    # ------------------------------------------------------------------ #

    @property
    def upper_fs(self):
        """The writable layer (itself snapshotable, enabling re-recording
        of revived sessions — section 5.2)."""
        return self.upper


class ReadOnlyUnionView:
    """A read-only union of stacked read-only layers (top first).

    Used when a *revived* session is itself checkpointed and revived: the
    second-generation revive's lower layer is the union of the first
    revive's upper-layer snapshot stacked on the original snapshot.
    Whiteouts in upper layers hide lower-layer objects, exactly as in the
    writable union.
    """

    def __init__(self, layers):
        if not layers:
            raise FileSystemError("a union view needs at least one layer")
        self.layers = list(layers)

    def _covering_layer(self, path):
        """The topmost layer where ``path`` is visible, or None."""
        path = normalize_path(path)
        for layer in self.layers:
            if self._whiteout_in(layer, path):
                return None
            if layer.exists(path):
                return layer
        return None

    @staticmethod
    def _whiteout_in(layer, path):
        current = "/"
        for name in path_components(path):
            child = join_path(current, name)
            if layer.exists(_whiteout_path(child)):
                return True
            current = child
        return False

    def exists(self, path):
        return self._covering_layer(path) is not None

    def is_dir(self, path):
        layer = self._covering_layer(path)
        return layer.is_dir(path) if layer is not None else False

    def read_file(self, path):
        layer = self._covering_layer(path)
        if layer is None:
            raise FileSystemError("no such file or directory: %s" % path)
        return layer.read_file(path)

    def stat(self, path):
        layer = self._covering_layer(path)
        if layer is None:
            raise FileSystemError("no such file or directory: %s" % path)
        return layer.stat(path)

    def listdir(self, path):
        path = normalize_path(path)
        if not self.exists(path):
            raise FileSystemError("no such file or directory: %s" % path)
        names = set()
        for depth, layer in enumerate(self.layers):
            if not (layer.exists(path) and layer.is_dir(path)):
                continue
            for name in layer.listdir(path):
                if name.startswith(WHITEOUT_PREFIX):
                    continue
                child = join_path(path, name)
                # Hidden if any layer above carries a whiteout for it.
                hidden = any(
                    upper.exists(_whiteout_path(child))
                    for upper in self.layers[:depth]
                )
                if not hidden:
                    names.add(name)
        return sorted(names)

    def walk_files(self, path="/"):
        stack = [normalize_path(path)]
        while stack:
            current = stack.pop()
            for name in self.listdir(current):
                child = join_path(current, name)
                if self.is_dir(child):
                    stack.append(child)
                else:
                    yield child
