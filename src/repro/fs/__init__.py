"""File system substrate (paper sections 5.1.1 and 5.2).

DejaView needs a file system whose state at every checkpoint can be
recovered later, cheaply, and then branched into independently writable
views for revived sessions.  The paper combines NILFS (a log-structured file
system where "every modifying transaction results in a file system snapshot
point") with UnionFS (to stack a writable layer on a read-only snapshot).

* :mod:`repro.fs.lfs` -- the log-structured file system: versioned inodes
  and directory entries, append-only data blocks, O(1) snapshots at any
  transaction, checkpoint-counter association, dirty-block accounting for
  the pre-snapshot/sync cost model, and relink support for open-unlinked
  files.
* :mod:`repro.fs.union` -- union mounts: read-only lower + writable upper,
  copy-up on modification, whiteouts on deletion.
* :mod:`repro.fs.branch` -- the branchable combination: any checkpoint
  counter can be branched into a fresh read-write view, many times over,
  each branch itself snapshotable.
* :mod:`repro.fs.vfs` -- shared path helpers and the read-only view
  interface.
"""

from repro.fs.branch import BranchableStore, RevivedStore
from repro.fs.lfs import LogStructuredFS, SnapshotView
from repro.fs.union import ReadOnlyUnionView, UnionMount
from repro.fs.vfs import join_path, normalize_path, split_path

__all__ = [
    "LogStructuredFS",
    "SnapshotView",
    "UnionMount",
    "ReadOnlyUnionView",
    "BranchableStore",
    "RevivedStore",
    "normalize_path",
    "split_path",
    "join_path",
]
