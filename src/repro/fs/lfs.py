"""Log-structured file system with snapshot-at-every-transaction.

Modelled on NILFS (Konishi et al., the paper's reference [20]): "all file
system modifications append data to the disk, be it meta data updates,
directory changes or syncing data blocks.  Thus, every modifying transaction
results in a file system snapshot point" (section 5.1.1).

Implementation: inodes and directory entries are *versioned* — every
modifying operation bumps a global transaction counter and appends a new
version; nothing is ever overwritten.  A snapshot is therefore just a
transaction number, and reading "at snapshot s" resolves every version list
at ``txn <= s``.  Data blocks are append-only and immutable.

The checkpoint engine's hooks:

* :meth:`LogStructuredFS.sync` — flush dirty blocks (the pre-snapshot of
  section 5.1.2); cost scales with the number of unflushed blocks.
* :meth:`LogStructuredFS.snapshot` — establish a snapshot point (any
  remaining dirty blocks are flushed first, which is why pre-snapshotting
  shrinks the in-downtime snapshot cost).
* :meth:`LogStructuredFS.associate_checkpoint` — record the checkpoint
  counter in the log, creating the "unique association between file system
  snapshots and checkpoint images".
* :meth:`LogStructuredFS.relink` — give an open-unlinked inode a directory
  entry in a hidden directory so its contents survive into the snapshot
  without being copied into the checkpoint image (section 5.1.2).
"""

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import FileSystemError, SnapshotError
from repro.common.faults import InjectedCrash, resolve_faults
from repro.common.telemetry import resolve_telemetry
from repro.fs.vfs import join_path, normalize_path, path_components, split_path

BLOCK_SIZE = 4096
#: Approximate metadata bytes appended to the log per transaction.  NILFS
#: logs inode-table and directory blocks alongside data, so metadata-heavy
#: workloads (untar's thousands of small files) pay real log space per
#: transaction — "it includes more overhead for file creation" (section 6).
METADATA_RECORD_BYTES = 2048

RELINK_DIR = "/.dejaview"
"""Hidden directory used to relink open-unlinked files (section 5.1.2)."""

WHITEOUT_PREFIX = ".wh."
"""Prefix for union-mount whiteout entries (hidden from normal listings)."""

ROOT_INODE = 1

FP_APPEND_MID_BLOCK = "lfs.append.mid_block"


class _InodeVersion:
    __slots__ = ("txn", "kind", "size", "blocks", "nlink", "mtime_us", "mode")

    def __init__(self, txn, kind, size=0, blocks=(), nlink=1, mtime_us=0,
                 mode=0o644):
        self.txn = txn
        self.kind = kind  # "file" | "dir"
        self.size = size
        self.blocks = tuple(blocks)
        self.nlink = nlink
        self.mtime_us = mtime_us
        self.mode = mode


class _Inode:
    __slots__ = ("inode_id", "versions", "open_count")

    def __init__(self, inode_id):
        self.inode_id = inode_id
        self.versions = []
        self.open_count = 0

    def current(self):
        return self.versions[-1]

    def at(self, txn):
        """Latest version with version.txn <= txn, or None."""
        lo, hi = 0, len(self.versions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.versions[mid].txn <= txn:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return self.versions[lo - 1]


class FileHandle:
    """An open file.  Reads resolve the inode's *current* state, so a file
    unlinked while open remains readable — the case relinking handles."""

    def __init__(self, fs, inode_id, path):
        self._fs = fs
        self.inode_id = inode_id
        self.path = path
        self.closed = False
        fs._inodes[inode_id].open_count += 1

    def read(self):
        if self.closed:
            raise FileSystemError("read on closed handle for %s" % self.path)
        return self._fs._read_inode(self.inode_id)

    def stat(self):
        if self.closed:
            raise FileSystemError("stat on closed handle for %s" % self.path)
        return self._fs._stat_inode(self.inode_id)

    def close(self):
        if not self.closed:
            self.closed = True
            self._fs._inodes[self.inode_id].open_count -= 1

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class LogStructuredFS:
    """The append-only, versioned file system."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS, telemetry=None,
                 faults=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.bind_telemetry(resolve_telemetry(telemetry))
        self.bind_faults(faults)
        self._txn = 0
        self._inodes = {}
        self._next_inode = ROOT_INODE
        self._blocks = {}  # block id -> bytes
        self._next_block = 1
        # (dir inode id, name) -> [(txn, child inode id or None), ...]
        self._dentries = {}
        # dir inode id -> set of names ever bound (listing support)
        self._names = {}
        # Accounting.
        self.log_bytes = 0
        self.reclaimed_bytes = 0
        self._pending_blocks = 0
        self._synced_txn = 0
        self._last_snapshot_txn = 0
        self._checkpoint_map = {}  # checkpoint counter -> txn
        # Create the root directory and the hidden relink directory.
        root = self._alloc_inode("dir")
        assert root.inode_id == ROOT_INODE
        self._mkdir_under(ROOT_INODE, RELINK_DIR[1:])

    def bind_telemetry(self, telemetry):
        """(Re)attach a telemetry sink.  The file system is created by the
        session before the recorder exists, so :class:`DejaView` rebinds it
        to the recording session's telemetry at attach time."""
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._m_txns = metrics.counter("fs.txns")
        self._m_blocks = metrics.counter("fs.blocks_written")
        self._m_snapshots = metrics.counter("fs.snapshots")
        self._m_synced = metrics.counter("fs.blocks_synced")
        self._m_reclaimed = metrics.counter("fs.cleaner_reclaimed_bytes")

    def bind_faults(self, faults):
        """(Re)attach a fault plan.  Like telemetry, the file system is
        created by the session before the recorder exists, so
        :class:`DejaView` rebinds it at attach time."""
        self.faults = resolve_faults(faults)

    # ------------------------------------------------------------------ #
    # Low-level helpers

    def _alloc_inode(self, kind, mode=0o644):
        inode = _Inode(self._next_inode)
        self._next_inode += 1
        self._inodes[inode.inode_id] = inode
        self._begin_txn()
        inode.versions.append(
            _InodeVersion(self._txn, kind, mtime_us=self.clock.now_us, mode=mode)
        )
        if kind == "dir":
            self._names.setdefault(inode.inode_id, set())
        return inode

    def _begin_txn(self):
        self._txn += 1
        self.log_bytes += METADATA_RECORD_BYTES
        self._m_txns.inc()
        self.clock.advance_us(self.costs.fs_transaction_us)
        return self._txn

    def _bump_inode(self, inode, **changes):
        cur = inode.current()
        self._begin_txn()
        inode.versions.append(
            _InodeVersion(
                self._txn,
                changes.get("kind", cur.kind),
                changes.get("size", cur.size),
                changes.get("blocks", cur.blocks),
                changes.get("nlink", cur.nlink),
                self.clock.now_us,
                changes.get("mode", cur.mode),
            )
        )

    def _set_dentry(self, dir_inode_id, name, child_id):
        self._begin_txn()
        self._dentries.setdefault((dir_inode_id, name), []).append(
            (self._txn, child_id)
        )
        self._names.setdefault(dir_inode_id, set()).add(name)

    def _resolve_dentry(self, dir_inode_id, name, txn=None):
        history = self._dentries.get((dir_inode_id, name))
        if not history:
            return None
        if txn is None:
            return history[-1][1]
        result = None
        for entry_txn, child in history:
            if entry_txn <= txn:
                result = child
            else:
                break
        return result

    def _append_blocks(self, data):
        """Append data as new log blocks; returns the block id tuple."""
        chunks = (
            [data[off : off + BLOCK_SIZE]
             for off in range(0, len(data), BLOCK_SIZE)]
            if data else []
        )
        try:
            # A transient fault raises before any block lands: the append
            # never happened and the caller may retry.
            self.faults.check(FP_APPEND_MID_BLOCK)
        except InjectedCrash:
            # Crash mid-append: a prefix of the blocks made it to the
            # log, the last of them partial, and the inode version that
            # would reference them was never written — orphan blocks,
            # exactly what recover() reclaims.
            torn = list(chunks[: max(1, (len(chunks) + 1) // 2)]) \
                if chunks else []
            if torn:
                torn[-1] = torn[-1][: max(1, len(torn[-1]) // 2)]
            for chunk in torn:
                block_id = self._next_block
                self._next_block += 1
                self._blocks[block_id] = bytes(chunk)
            self.log_bytes += len(torn) * BLOCK_SIZE
            self._m_blocks.inc(len(torn))
            self._pending_blocks += len(torn)
            raise
        ids = []
        for chunk in chunks:
            block_id = self._next_block
            self._next_block += 1
            self._blocks[block_id] = bytes(chunk)
            ids.append(block_id)
        nblocks = len(ids)
        # Data lands in the log in whole blocks (log-structured layout).
        self.log_bytes += nblocks * BLOCK_SIZE
        self._m_blocks.inc(nblocks)
        # The disk transfer happens regardless of DejaView (the kernel
        # writes dirty pages back eventually), so it is charged here, at
        # append time.  sync()/snapshot() only add the flush bookkeeping.
        self.clock.advance_us(
            self.costs.disk_write_us(nblocks * BLOCK_SIZE, sequential=True)
        )
        self._pending_blocks += nblocks
        return tuple(ids)

    # ------------------------------------------------------------------ #
    # Path resolution

    def _lookup(self, path, txn=None):
        """Resolve a path to an inode id at a transaction (None = current)."""
        inode_id = ROOT_INODE
        for name in path_components(path):
            version = self._version_of(inode_id, txn)
            if version is None or version.kind != "dir":
                return None
            inode_id = self._resolve_dentry(inode_id, name, txn)
            if inode_id is None:
                return None
        if self._version_of(inode_id, txn) is None:
            return None
        return inode_id

    def _version_of(self, inode_id, txn=None):
        inode = self._inodes.get(inode_id)
        if inode is None:
            return None
        return inode.current() if txn is None else inode.at(txn)

    def _require(self, path, txn=None):
        inode_id = self._lookup(path, txn)
        if inode_id is None:
            raise FileSystemError("no such file or directory: %s" % path)
        return inode_id

    # ------------------------------------------------------------------ #
    # Public mutation API (current view only; snapshots are read-only)

    def mkdir(self, path):
        path = normalize_path(path)
        parent_path, name = split_path(path)
        parent_id = self._require(parent_path)
        if self._resolve_dentry(parent_id, name) is not None:
            raise FileSystemError("path already exists: %s" % path)
        inode = self._alloc_inode("dir")
        self._set_dentry(parent_id, name, inode.inode_id)
        return inode.inode_id

    def _mkdir_under(self, parent_id, name):
        inode = self._alloc_inode("dir")
        self._set_dentry(parent_id, name, inode.inode_id)
        return inode.inode_id

    def makedirs(self, path):
        """Create a directory and any missing ancestors."""
        path = normalize_path(path)
        current = "/"
        for name in path_components(path):
            child = join_path(current, name)
            if self._lookup(child) is None:
                self.mkdir(child)
            current = child
        return self._require(path)

    def create(self, path, data=b"", mode=0o644):
        """Create a regular file with initial contents."""
        path = normalize_path(path)
        parent_path, name = split_path(path)
        parent_id = self._require(parent_path)
        if self._resolve_dentry(parent_id, name) is not None:
            raise FileSystemError("path already exists: %s" % path)
        inode = self._alloc_inode("file", mode)
        blocks = self._append_blocks(bytes(data))
        self._bump_inode(inode, size=len(data), blocks=blocks)
        self._set_dentry(parent_id, name, inode.inode_id)
        return inode.inode_id

    def write_file(self, path, data, append=False):
        """Write a file (replace contents, or append), creating if needed.

        Log-structured semantics: new data always lands in new blocks; a
        whole-file rewrite never touches old blocks (they remain reachable
        from earlier snapshots).
        """
        path = normalize_path(path)
        data = bytes(data)
        inode_id = self._lookup(path)
        if inode_id is None:
            return self.create(path, data)
        inode = self._inodes[inode_id]
        cur = inode.current()
        if cur.kind != "file":
            raise FileSystemError("not a regular file: %s" % path)
        if append:
            old = self._read_inode(inode_id)
            # Only the trailing partial block needs rewriting; whole old
            # blocks can be reused (they are immutable).
            keep = len(old) // BLOCK_SIZE
            tail = old[keep * BLOCK_SIZE :] + data
            blocks = cur.blocks[:keep] + self._append_blocks(tail)
            size = len(old) + len(data)
        else:
            blocks = self._append_blocks(data)
            size = len(data)
        self._bump_inode(inode, size=size, blocks=blocks)
        return inode_id

    def write_at(self, path, offset, data):
        """Positional write (read-modify-write of the affected blocks)."""
        path = normalize_path(path)
        inode_id = self._require(path)
        old = self._read_inode(inode_id)
        if offset > len(old):
            old = old + bytes(offset - len(old))
        new = old[:offset] + bytes(data) + old[offset + len(data) :]
        inode = self._inodes[inode_id]
        blocks = self._append_blocks(new)
        self._bump_inode(inode, size=len(new), blocks=blocks)
        return inode_id

    def truncate(self, path, size=0):
        path = normalize_path(path)
        inode_id = self._require(path)
        data = self._read_inode(inode_id)[:size]
        inode = self._inodes[inode_id]
        blocks = self._append_blocks(data)
        self._bump_inode(inode, size=len(data), blocks=blocks)

    def unlink(self, path):
        """Remove a directory entry.  The inode's blocks remain in the log
        (reachable from snapshots); open handles keep working."""
        path = normalize_path(path)
        parent_path, name = split_path(path)
        parent_id = self._require(parent_path)
        inode_id = self._resolve_dentry(parent_id, name)
        if inode_id is None:
            raise FileSystemError("no such file or directory: %s" % path)
        inode = self._inodes[inode_id]
        if inode.current().kind == "dir":
            if self.listdir(path, include_hidden=True):
                raise FileSystemError("directory not empty: %s" % path)
        self._set_dentry(parent_id, name, None)
        self._bump_inode(inode, nlink=max(0, inode.current().nlink - 1))
        return inode_id

    def rename(self, src, dst):
        src = normalize_path(src)
        dst = normalize_path(dst)
        src_parent, src_name = split_path(src)
        dst_parent, dst_name = split_path(dst)
        src_parent_id = self._require(src_parent)
        dst_parent_id = self._require(dst_parent)
        inode_id = self._resolve_dentry(src_parent_id, src_name)
        if inode_id is None:
            raise FileSystemError("no such file or directory: %s" % src)
        self._set_dentry(dst_parent_id, dst_name, inode_id)
        self._set_dentry(src_parent_id, src_name, None)
        return inode_id

    def link(self, existing, new_path):
        """Hard link: bind an existing inode under a second name."""
        existing = normalize_path(existing)
        new_path = normalize_path(new_path)
        inode_id = self._require(existing)
        parent_path, name = split_path(new_path)
        parent_id = self._require(parent_path)
        if self._resolve_dentry(parent_id, name) is not None:
            raise FileSystemError("path already exists: %s" % new_path)
        inode = self._inodes[inode_id]
        self._set_dentry(parent_id, name, inode_id)
        self._bump_inode(inode, nlink=inode.current().nlink + 1)
        return inode_id

    # ------------------------------------------------------------------ #
    # Read API (works on the live view and, via txn, on snapshots)

    def _read_inode(self, inode_id, txn=None):
        version = self._version_of(inode_id, txn)
        if version is None:
            raise FileSystemError("inode %d absent at txn %r" % (inode_id, txn))
        if version.kind != "file":
            raise FileSystemError("inode %d is a directory" % inode_id)
        data = b"".join(self._blocks[b] for b in version.blocks)
        return data[: version.size]

    def _stat_inode(self, inode_id, txn=None):
        version = self._version_of(inode_id, txn)
        if version is None:
            raise FileSystemError("inode %d absent at txn %r" % (inode_id, txn))
        return {
            "inode": inode_id,
            "kind": version.kind,
            "size": version.size,
            "nlink": version.nlink,
            "mtime_us": version.mtime_us,
            "mode": version.mode,
        }

    def read_file(self, path, txn=None):
        return self._read_inode(self._require(path, txn), txn)

    def stat(self, path, txn=None):
        return self._stat_inode(self._require(path, txn), txn)

    def exists(self, path, txn=None):
        return self._lookup(normalize_path(path), txn) is not None

    def is_dir(self, path, txn=None):
        inode_id = self._lookup(normalize_path(path), txn)
        if inode_id is None:
            return False
        return self._version_of(inode_id, txn).kind == "dir"

    def listdir(self, path, txn=None, include_hidden=False):
        path = normalize_path(path)
        dir_id = self._require(path, txn)
        version = self._version_of(dir_id, txn)
        if version.kind != "dir":
            raise FileSystemError("not a directory: %s" % path)
        names = []
        for name in sorted(self._names.get(dir_id, ())):
            if self._resolve_dentry(dir_id, name, txn) is None:
                continue
            hidden = name.startswith(WHITEOUT_PREFIX) or (
                path == "/" and name == RELINK_DIR[1:]
            )
            if hidden and not include_hidden:
                continue
            names.append(name)
        return names

    def walk_files(self, path="/", txn=None):
        """Yield every regular file path under ``path`` (snapshot-aware)."""
        stack = [normalize_path(path)]
        while stack:
            current = stack.pop()
            for name in self.listdir(current, txn):
                child = join_path(current, name)
                if self.is_dir(child, txn):
                    stack.append(child)
                else:
                    yield child

    def open(self, path):
        path = normalize_path(path)
        return FileHandle(self, self._require(path), path)

    # ------------------------------------------------------------------ #
    # Snapshot machinery (the checkpoint engine's interface)

    @property
    def pending_blocks(self):
        """Dirty blocks not yet flushed to the log device."""
        return self._pending_blocks

    def sync(self):
        """Flush dirty blocks (the *pre-snapshot*).  Returns blocks flushed."""
        flushed = self._pending_blocks
        if flushed:
            self._m_synced.inc(flushed)
            self.clock.advance_us(flushed * self.costs.fs_block_sync_us)
            self._pending_blocks = 0
        self._synced_txn = self._txn
        return flushed

    def snapshot(self):
        """Establish a snapshot point; returns the snapshot's txn id.

        Any still-dirty blocks are flushed inside this call — which is why
        the engine pre-syncs before quiescing: "it greatly reduces, and many
        times eliminates, the amount of data needed to be written while the
        processes are unresponsive" (section 5.1.2).
        """
        self._m_snapshots.inc()
        self.clock.advance_us(self.costs.fs_snapshot_base_us)
        # Metadata finalization scales with the transactions accumulated
        # since the previous snapshot (untar's thousands of file creations
        # make the fs snapshot the biggest slice of its downtime).
        txns_since = max(0, self._txn - self._last_snapshot_txn)
        self.clock.advance_us(txns_since * self.costs.fs_snapshot_us_per_txn)
        self.sync()
        self._last_snapshot_txn = self._txn
        return self._txn

    def associate_checkpoint(self, counter, txn=None):
        """Record the checkpoint counter in the log (section 5.1.1)."""
        if counter in self._checkpoint_map:
            raise SnapshotError("checkpoint counter %d already recorded" % counter)
        self._checkpoint_map[counter] = self._txn if txn is None else txn
        self.log_bytes += METADATA_RECORD_BYTES

    def txn_for_checkpoint(self, counter):
        if counter not in self._checkpoint_map:
            raise SnapshotError("no snapshot recorded for checkpoint %d" % counter)
        return self._checkpoint_map[counter]

    def view_at(self, txn):
        """A read-only view of the file system at a snapshot point."""
        if txn > self._txn:
            raise SnapshotError("snapshot txn %d is in the future" % txn)
        return SnapshotView(self, txn)

    def view_for_checkpoint(self, counter):
        return self.view_at(self.txn_for_checkpoint(counter))

    # ------------------------------------------------------------------ #
    # Relinking open-unlinked files (section 5.1.2, optimization 2)

    def relink(self, handle):
        """Give an open-unlinked inode a name in the hidden relink
        directory, so the upcoming snapshot retains its contents without
        them being written into the checkpoint image."""
        return self.relink_inode(handle.inode_id)

    def relink_inode(self, inode_id):
        """Inode-id variant of :meth:`relink` (the checkpoint engine works
        from file descriptor records, which carry inode ids)."""
        inode = self._inodes.get(inode_id)
        if inode is None:
            raise FileSystemError("relink of unknown inode")
        if inode.current().nlink > 0:
            return None  # still linked somewhere; nothing to do
        name = "relink-%d" % inode_id
        target = join_path(RELINK_DIR, name)
        if self._lookup(target) is None:
            relink_dir_id = self._require(RELINK_DIR)
            self._set_dentry(relink_dir_id, name, inode_id)
            self._bump_inode(inode, nlink=1)
        return target

    def unlink_relinked(self, target):
        """Undo a relink after revive restores the open-unlinked state."""
        self.unlink(target)

    # ------------------------------------------------------------------ #
    # Accounting

    @property
    def current_txn(self):
        return self._txn

    def visible_bytes(self, txn=None):
        """Total size of files visible at a snapshot (paper's 'visible
        size'); excludes the hidden relink directory."""
        return sum(
            self.stat(path, txn)["size"] for path in self.walk_files("/", txn)
        )

    # ------------------------------------------------------------------ #
    # Garbage collection (NILFS model: checkpoints are reclaimable unless
    # promoted to protected snapshots)

    def collect_garbage(self, protected_txns):
        """Reclaim log blocks not reachable from the live view or any
        protected snapshot.

        NILFS distinguishes plain *checkpoints* (reclaimable by the
        cleaner) from *snapshots* (protected).  DejaView protects the
        snapshots its checkpoint images reference; when old checkpoints
        are pruned, their snapshots become unprotected and the cleaner can
        reclaim the log space.  Returns the number of bytes reclaimed.
        """
        roots = set(protected_txns)
        live_blocks = set()
        # Blocks reachable from each protected snapshot...
        for txn in roots:
            live_blocks.update(self._blocks_at(txn))
        # ...and from the live file system.
        live_blocks.update(self._blocks_at(None))
        # Open-but-unlinked inodes stay live regardless of directories.
        for inode in self._inodes.values():
            if inode.open_count > 0:
                live_blocks.update(inode.current().blocks)
        reclaimed = 0
        for block_id in list(self._blocks):
            if block_id not in live_blocks:
                reclaimed += len(self._blocks.pop(block_id))
        self.reclaimed_bytes += reclaimed
        self._m_reclaimed.inc(reclaimed)
        # The cleaner copies live data out of dying segments; charge a
        # pass over the reclaimed volume.
        self.clock.advance_us(reclaimed * self.costs.memcpy_us_per_byte)
        return reclaimed

    def _blocks_at(self, txn):
        """All block ids reachable from the namespace at ``txn``."""
        blocks = set()
        stack = [ROOT_INODE]
        seen = set()
        while stack:
            inode_id = stack.pop()
            if inode_id in seen:
                continue
            seen.add(inode_id)
            version = self._version_of(inode_id, txn)
            if version is None:
                continue
            if version.kind == "file":
                blocks.update(version.blocks)
                continue
            for name in self._names.get(inode_id, ()):
                child = self._resolve_dentry(inode_id, name, txn)
                if child is not None:
                    stack.append(child)
        return blocks

    def unprotect_checkpoint(self, counter):
        """Forget the snapshot binding of a pruned checkpoint."""
        if counter not in self._checkpoint_map:
            raise SnapshotError("no snapshot recorded for checkpoint %d" % counter)
        del self._checkpoint_map[counter]

    def protected_txns(self):
        """The snapshot txns currently bound to checkpoints."""
        return sorted(set(self._checkpoint_map.values()))

    @property
    def live_log_bytes(self):
        """Log footprint after garbage collection."""
        return self.log_bytes - self.reclaimed_bytes

    # ------------------------------------------------------------------ #
    # Crash recovery

    def recover(self):
        """Post-crash log recovery (the NILFS mount-time roll-forward).

        A crash mid-append leaves *orphan* blocks: data blocks that made
        it into the log (the last possibly partial) whose inode version
        was never written, because versions are appended only after
        their blocks.  The version lists are therefore the table of
        record — recovery reclaims unreferenced blocks, defensively
        drops tail inode versions that reference missing blocks, and
        resets the dirty-block counter.
        """
        referenced = set()
        for inode in self._inodes.values():
            for version in inode.versions:
                referenced.update(version.blocks)
        orphans = 0
        for block_id in list(self._blocks):
            if block_id not in referenced:
                del self._blocks[block_id]
                orphans += 1
        reclaimed = orphans * BLOCK_SIZE
        if reclaimed:
            self.reclaimed_bytes += reclaimed
            self._m_reclaimed.inc(reclaimed)
        torn_versions = 0
        for inode in self._inodes.values():
            while len(inode.versions) > 1 and any(
                block_id not in self._blocks
                for block_id in inode.versions[-1].blocks
            ):
                inode.versions.pop()
                torn_versions += 1
        self._pending_blocks = 0
        # Recovery scans the log tail once.
        self.clock.advance_us(
            self.costs.disk_read_us(max(reclaimed, BLOCK_SIZE),
                                    sequential=True)
        )
        return {
            "orphan_blocks": orphans,
            "orphan_bytes": reclaimed,
            "torn_versions": torn_versions,
        }


class SnapshotView:
    """Read-only file system view at a fixed transaction.

    Provides the read API only — "standard snapshotting file systems only
    provide read-only snapshots" (section 5.2); writability comes from
    stacking a union mount on top.
    """

    def __init__(self, fs, txn):
        self._fs = fs
        self.txn = txn

    def read_file(self, path):
        return self._fs.read_file(path, txn=self.txn)

    def stat(self, path):
        return self._fs.stat(path, txn=self.txn)

    def exists(self, path):
        return self._fs.exists(path, txn=self.txn)

    def is_dir(self, path):
        return self._fs.is_dir(path, txn=self.txn)

    def listdir(self, path, include_hidden=False):
        return self._fs.listdir(path, txn=self.txn, include_hidden=include_hidden)

    def walk_files(self, path="/"):
        return self._fs.walk_files(path, txn=self.txn)
