"""Shared path handling for the simulated file systems.

All paths are absolute, ``/``-separated, and normalized before use.  The
helpers here are deliberately strict: relative paths and ``..`` traversal
are rejected rather than resolved, because nothing in the DejaView stack
needs them and rejecting them keeps union-mount lookups unambiguous.
"""

from repro.common.errors import FileSystemError


def normalize_path(path):
    """Normalize an absolute path (collapse slashes, strip trailing slash).

    >>> normalize_path('//a///b/')
    '/a/b'
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise FileSystemError("paths must be absolute strings: %r" % (path,))
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part == "..":
            raise FileSystemError("'..' traversal is not supported: %r" % path)
        if part == ".":
            raise FileSystemError("'.' segments are not supported: %r" % path)
    return "/" + "/".join(parts)


def split_path(path):
    """Split a normalized path into ``(parent_path, basename)``.

    >>> split_path('/a/b/c')
    ('/a/b', 'c')
    >>> split_path('/a')
    ('/', 'a')
    """
    path = normalize_path(path)
    if path == "/":
        raise FileSystemError("the root has no parent")
    parent, _, name = path.rpartition("/")
    return (parent or "/", name)


def join_path(parent, name):
    """Join a parent path and a basename.

    >>> join_path('/', 'a')
    '/a'
    >>> join_path('/a', 'b')
    '/a/b'
    """
    if "/" in name:
        raise FileSystemError("basename may not contain '/': %r" % name)
    parent = normalize_path(parent)
    if parent == "/":
        return "/" + name
    return parent + "/" + name


def path_components(path):
    """The list of components of a normalized path (root -> leaf).

    >>> path_components('/a/b')
    ['a', 'b']
    """
    path = normalize_path(path)
    if path == "/":
        return []
    return path[1:].split("/")
