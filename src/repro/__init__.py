"""DejaView reproduction: a personal virtual computer recorder.

This library reproduces "DejaView: A Personal Virtual Computer Recorder"
(Laadan, Baratto, Phung, Potter, Nieh -- SOSP 2007) as a fully simulated but
algorithmically faithful system: a THINC-style virtual display, a
Zap-style virtual execution environment with continuous low-downtime
checkpointing, a NILFS-style log-structured + union file system, and an
accessibility-driven temporal text index -- all on a deterministic virtual
clock with a cost model calibrated to the paper's 2007 testbed.

Quickstart::

    from repro import DesktopSession, DejaView, Query

    session = DesktopSession()
    dejaview = DejaView(session)
    editor = session.launch("editor")
    editor.show_text("meeting notes: discuss DejaView reproduction")
    dejaview.tick()

    results = dejaview.search(Query.keywords("dejaview"))
    revived = dejaview.take_me_back(session.clock.now_us)

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the harness that regenerates every figure of the paper's evaluation.
"""

from repro.checkpoint import (
    CheckpointEngine,
    CheckpointPolicy,
    CheckpointStorage,
    EngineOptions,
    PolicyConfig,
    ReviveManager,
)
from repro.common import CostModel, VirtualClock
from repro.desktop import (
    DejaView,
    DesktopSession,
    RecordingConfig,
    SessionManager,
    SimApplication,
)
from repro.display import Framebuffer, PlaybackEngine, Region
from repro.index import Clause, Query, SearchEngine
from repro.server import Fleet, SessionQuotas
from repro.workloads import SCENARIOS, get_workload, run_fleet, run_scenario

__version__ = "1.0.0"

__all__ = [
    "DesktopSession",
    "DejaView",
    "RecordingConfig",
    "SimApplication",
    "SessionManager",
    "Query",
    "Clause",
    "SearchEngine",
    "PlaybackEngine",
    "Framebuffer",
    "Region",
    "CheckpointEngine",
    "EngineOptions",
    "CheckpointPolicy",
    "PolicyConfig",
    "CheckpointStorage",
    "ReviveManager",
    "VirtualClock",
    "CostModel",
    "Fleet",
    "SessionQuotas",
    "SCENARIOS",
    "get_workload",
    "run_scenario",
    "run_fleet",
    "__version__",
]
