"""The virtual execution environment (container).

A container encapsulates one user desktop session: its private namespace,
its process forest, its file system mount and its network policy.  "This
lightweight virtualization mechanism imposes low overhead as it operates
above the OS instance to encapsulate only the user's desktop computing
session, as opposed to an entire machine instance" (section 3).
"""

from repro.common.errors import ProcessError
from repro.vex.namespace import Namespace
from repro.vex.process import Process, ProcessState


class Container:
    """One virtual execution environment."""

    def __init__(self, container_id, name, clock):
        self.container_id = container_id
        self.name = name
        self.clock = clock
        self.namespace = Namespace(container_id)
        self.processes = []
        #: Revived sessions start with network access disabled
        #: (section 5.2); live sessions have it enabled.
        self.network_enabled = True
        #: Per-application network overrides: process name -> bool.
        self.network_policy = {}
        self.mount = None  # set by the desktop layer (a union/lfs view)
        #: Callbacks invoked with each newly spawned process (the
        #: checkpoint engine interposes on process creation — Zap-style
        #: virtualization tracks every fork).
        self.spawn_listeners = []

    # ------------------------------------------------------------------ #
    # Process management

    def spawn(self, name, parent=None, vpid=None, uid=1000, gid=1000, nice=0):
        """Create a process inside this container's namespace."""
        if parent is not None and parent not in self.processes:
            raise ProcessError("parent process is not in this container")
        process = Process(vpid=0, name=name, parent=parent, uid=uid, gid=gid,
                          nice=nice)
        process.vpid = self.namespace.allocate_vpid(process, vpid)
        if parent is not None:
            parent.children.append(process)
        self.processes.append(process)
        for listener in self.spawn_listeners:
            listener(process)
        return process

    def reap(self, process):
        """Remove a zombie process from the container."""
        if process.state is not ProcessState.ZOMBIE:
            raise ProcessError("cannot reap a live process")
        self.namespace.release_vpid(process.vpid)
        self.processes.remove(process)
        if process.parent is not None and process in process.parent.children:
            process.parent.children.remove(process)

    def live_processes(self):
        return [p for p in self.processes if p.state is not ProcessState.ZOMBIE]

    def process_by_vpid(self, vpid):
        return self.namespace.lookup_vpid(vpid)

    # ------------------------------------------------------------------ #
    # Aggregates used by the checkpoint engine

    @property
    def total_resident_pages(self):
        return sum(p.address_space.resident_pages for p in self.live_processes())

    @property
    def total_dirty_pages(self):
        return sum(
            len(region.dirty)
            for p in self.live_processes()
            for region in p.address_space.regions()
        )

    def all_signalable(self, now_us):
        """True when every live process can act on a stop signal now."""
        return all(p.signalable(now_us) for p in self.live_processes())

    def network_allowed_for(self, process_name):
        """Effective network policy for an application (section 5.2)."""
        if process_name in self.network_policy:
            return self.network_policy[process_name]
        return self.network_enabled

    def __repr__(self):
        return "Container(id=%d, name=%r, processes=%d)" % (
            self.container_id,
            self.name,
            len(self.processes),
        )
