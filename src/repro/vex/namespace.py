"""Private virtual namespaces.

"By providing a virtual namespace, revived sessions can use the same OS
resource names as used before being checkpointed, even if they are mapped to
different underlying OS resources upon revival.  By providing a private
namespace, revived sessions from different points in time can run
concurrently and use the same OS resource names inside their respective
namespaces, yet not conflict among each other" (section 3).

A :class:`Namespace` therefore maps *virtual* identifiers (vpids, IPC keys,
display names) to the kernel's underlying objects.  Each container owns one.
"""

from repro.common.errors import NamespaceError


class Namespace:
    """Virtual pid + named-resource tables for one container."""

    def __init__(self, namespace_id):
        self.namespace_id = namespace_id
        self._vpids = {}  # vpid -> Process
        self._next_vpid = 1
        self._resources = {}  # (kind, name) -> object

    # ------------------------------------------------------------------ #
    # Virtual pids

    def allocate_vpid(self, process, vpid=None):
        """Bind a process to a vpid.

        When reviving, the original vpids are reinstated explicitly
        (``vpid=...``); live sessions allocate sequentially.
        """
        if vpid is None:
            vpid = self._next_vpid
            while vpid in self._vpids:
                vpid += 1
        if vpid in self._vpids:
            raise NamespaceError(
                "vpid %d already in use in namespace %d"
                % (vpid, self.namespace_id)
            )
        self._vpids[vpid] = process
        self._next_vpid = max(self._next_vpid, vpid + 1)
        return vpid

    def release_vpid(self, vpid):
        if vpid not in self._vpids:
            raise NamespaceError("vpid %d not present" % vpid)
        del self._vpids[vpid]

    def lookup_vpid(self, vpid):
        process = self._vpids.get(vpid)
        if process is None:
            raise NamespaceError(
                "vpid %d not found in namespace %d" % (vpid, self.namespace_id)
            )
        return process

    def vpids(self):
        return sorted(self._vpids)

    # ------------------------------------------------------------------ #
    # Named resources (IPC keys, display sockets, ...)

    def bind(self, kind, name, obj):
        key = (kind, name)
        if key in self._resources:
            raise NamespaceError("%s %r already bound" % (kind, name))
        self._resources[key] = obj

    def resolve(self, kind, name):
        key = (kind, name)
        if key not in self._resources:
            raise NamespaceError("%s %r not bound" % (kind, name))
        return self._resources[key]

    def unbind(self, kind, name):
        key = (kind, name)
        if key not in self._resources:
            raise NamespaceError("%s %r not bound" % (kind, name))
        del self._resources[key]

    def bound_names(self, kind):
        return sorted(name for (k, name) in self._resources if k == kind)

    def __len__(self):
        return len(self._vpids)
