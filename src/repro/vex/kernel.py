"""The simulated kernel.

Owns the virtual clock, the cost model and the containers.  DejaView's
checkpointer runs as "a privileged process outside of the user's virtual
execution environment" (section 5.1.1); in this reproduction that role is
played by the checkpoint engine, which holds a reference to the kernel and
manipulates containers from the outside.
"""

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.replay.tap import NULL_TAP
from repro.vex.container import Container
from repro.vex.signals import SIGCONT, SIGSTOP


class Kernel:
    """Top-level simulated OS instance."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.containers = []
        self._next_container_id = 1
        #: Replay tap observing signal deliveries (bound by the session
        #: that owns this kernel; the no-op tap otherwise).
        self.replay = NULL_TAP

    def create_container(self, name):
        container = Container(self._next_container_id, name, self.clock)
        self._next_container_id += 1
        self.containers.append(container)
        return container

    def destroy_container(self, container):
        self.containers.remove(container)

    # ------------------------------------------------------------------ #
    # Signal plumbing used by the quiesce path

    def signal_process(self, process, signum):
        """Deliver a signal, charging its cost to the clock."""
        self.clock.advance_us(self.costs.signal_deliver_us)
        acted = process.deliver_signal(signum, self.clock.now_us)
        if self.replay.active:
            self.replay.signal(process.vpid, signum, self.clock.now_us,
                               acted)
        return acted

    def stop_all(self, container):
        """SIGSTOP every live process; returns how many acted immediately."""
        acted = 0
        for process in container.live_processes():
            if self.signal_process(process, SIGSTOP):
                acted += 1
        return acted

    def continue_all(self, container):
        for process in container.live_processes():
            self.signal_process(process, SIGCONT)
            # The freshly woken process may have queued signals from the
            # quiesce window.
            process.flush_pending_signals(self.clock.now_us)

    def wait_until(self, deadline_us):
        """Advance simulated time to a deadline (pre-quiesce waiting)."""
        self.clock.advance_to_us(deadline_us)
