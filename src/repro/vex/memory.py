"""Paged virtual memory with protection, COW capture and dirty tracking.

This module implements the memory substrate for the checkpoint optimizations
of section 5.1.2:

* Every process has an :class:`AddressSpace` of :class:`VMRegion` objects.
* Page contents are real bytes, so checkpoints move (and account for) real
  data, and revive correctness can be asserted bit-for-bit.
* The checkpoint engine write-protects saved regions and marks the pages
  with a **special flag**.  A write to a flagged page raises a fault that
  the engine intercepts: it copies the original page (COW), clears the flag,
  and lets the write proceed — all without the application noticing.  A
  write fault on a page *not* carrying the flag is a genuine segmentation
  violation and propagates.
* Applications may call ``mmap``/``munmap``/``mprotect``/``mremap``
  independently; the address space adjusts the incremental-checkpoint state
  exactly as the paper describes (e.g. an application making a region
  read-only clears the checkpoint flag so future faults reach the
  application).
"""

from repro.common.costs import PAGE_SIZE
from repro.common.errors import VirtualMemoryError

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4


class PageFault(Exception):
    """Internal fault raised when a flagged (COW-marked) page is written.

    Callers never see this: :meth:`AddressSpace.write` services it through
    the registered fault handler and retries the access.
    """

    def __init__(self, region, page_index):
        super().__init__("COW fault in %r page %d" % (region.name, page_index))
        self.region = region
        self.page_index = page_index


class SegmentationFault(VirtualMemoryError):
    """A genuine access violation (unmapped address or protection breach)."""


def _zero_page():
    return bytes(PAGE_SIZE)


class VMRegion:
    """A contiguous run of pages with uniform protection.

    ``start`` is a page-aligned virtual address; pages are stored sparsely
    (unwritten pages read as zeros, as anonymous mappings do).
    """

    __slots__ = (
        "start",
        "npages",
        "prot",
        "name",
        "pages",
        "ckpt_flagged",
        "dirty",
    )

    def __init__(self, start, npages, prot=PROT_READ | PROT_WRITE, name="anon"):
        if start % PAGE_SIZE != 0:
            raise VirtualMemoryError("region start must be page-aligned")
        if npages <= 0:
            raise VirtualMemoryError("region must span at least one page")
        self.start = start
        self.npages = npages
        self.prot = prot
        self.name = name
        self.pages = {}  # page index -> bytes(PAGE_SIZE)
        #: Pages write-protected by the checkpoint engine ("special flag").
        self.ckpt_flagged = set()
        #: Pages written since the flag set was last installed.
        self.dirty = set()

    @property
    def end(self):
        return self.start + self.npages * PAGE_SIZE

    @property
    def nbytes(self):
        return self.npages * PAGE_SIZE

    @property
    def resident_pages(self):
        """Pages that have ever been written (hold real content)."""
        return len(self.pages)

    def contains_addr(self, addr):
        return self.start <= addr < self.end

    def page_content(self, page_index):
        """Content of one page (zeros if never written)."""
        if not 0 <= page_index < self.npages:
            raise VirtualMemoryError(
                "page %d outside region %r" % (page_index, self.name)
            )
        return self.pages.get(page_index, _zero_page())

    def clone_for_checkpoint(self):
        """Metadata-only copy used in checkpoint images."""
        return {
            "start": self.start,
            "npages": self.npages,
            "prot": self.prot,
            "name": self.name,
        }

    def __repr__(self):
        return "VMRegion(%s, start=%#x, npages=%d, prot=%d)" % (
            self.name,
            self.start,
            self.npages,
            self.prot,
        )


class AddressSpace:
    """A process's virtual memory map."""

    #: Where mmap starts handing out addresses.
    MMAP_BASE = 0x1000_0000

    def __init__(self):
        self._regions = {}  # start -> VMRegion
        self._next_addr = self.MMAP_BASE
        self._fault_handler = None
        #: Optional handler invoked on first touch of a non-resident page
        #: (demand-paged revive, section 6's suggested improvement).
        self._demand_handler = None
        self.fault_count = 0

    # ------------------------------------------------------------------ #
    # Region management (the intercepted syscalls)

    def mmap(self, npages, prot=PROT_READ | PROT_WRITE, name="anon"):
        """Map a fresh region; returns the region."""
        start = self._next_addr
        region = VMRegion(start, npages, prot, name)
        self._regions[start] = region
        self._next_addr = region.end + PAGE_SIZE  # guard gap
        return region

    def map_fixed(self, start, npages, prot=PROT_READ | PROT_WRITE, name="anon"):
        """Map a region at an exact address (the revive path recreates the
        checkpointed layout verbatim)."""
        region = VMRegion(start, npages, prot, name)
        for existing in self._regions.values():
            if start < existing.end and region.end > existing.start:
                raise VirtualMemoryError(
                    "fixed mapping overlaps %r" % (existing.name,)
                )
        self._regions[start] = region
        self._next_addr = max(self._next_addr, region.end + PAGE_SIZE)
        return region

    def munmap(self, start):
        """Unmap the region at ``start``.

        The region simply disappears from the incremental state — the
        engine's next checkpoint will no longer list it (section 5.1.2:
        "if the application unmaps ... that region is removed").
        """
        region = self._regions.pop(start, None)
        if region is None:
            raise VirtualMemoryError("munmap of unmapped address %#x" % start)
        return region

    def mprotect(self, start, prot):
        """Change a region's protection.

        Downgrading to read-only clears any checkpoint flags on the region
        so that later faults propagate to the application instead of being
        swallowed by the engine (section 5.1.2).
        """
        region = self._regions.get(start)
        if region is None:
            raise VirtualMemoryError("mprotect of unmapped address %#x" % start)
        region.prot = prot
        if not prot & PROT_WRITE:
            region.ckpt_flagged.clear()
        return region

    def mremap(self, start, new_npages):
        """Grow or shrink a region in place.

        Pages past the new end are discarded, along with their checkpoint
        flags and dirty bits ("if it ... remaps a region, that region is
        ... adjusted in the incremental state").
        """
        region = self._regions.get(start)
        if region is None:
            raise VirtualMemoryError("mremap of unmapped address %#x" % start)
        if new_npages <= 0:
            raise VirtualMemoryError("mremap to zero pages; use munmap")
        if new_npages < region.npages:
            for idx in list(region.pages):
                if idx >= new_npages:
                    del region.pages[idx]
            region.ckpt_flagged = {i for i in region.ckpt_flagged if i < new_npages}
            region.dirty = {i for i in region.dirty if i < new_npages}
        region.npages = new_npages
        return region

    def regions(self):
        """All regions, ordered by start address."""
        return [self._regions[s] for s in sorted(self._regions)]

    def find_region(self, addr):
        for region in self._regions.values():
            if region.contains_addr(addr):
                return region
        return None

    # ------------------------------------------------------------------ #
    # Access path

    def read(self, addr, nbytes):
        """Read ``nbytes`` starting at ``addr`` (must stay in one region)."""
        region = self.find_region(addr)
        if region is None:
            raise SegmentationFault("read of unmapped address %#x" % addr)
        if not region.prot & PROT_READ:
            raise SegmentationFault("read of PROT_NONE region %r" % region.name)
        if addr + nbytes > region.end:
            raise SegmentationFault("read crosses region end")
        out = bytearray()
        offset = addr - region.start
        while nbytes > 0:
            page_index, page_off = divmod(offset, PAGE_SIZE)
            chunk = min(nbytes, PAGE_SIZE - page_off)
            self._demand_fault(region, page_index)
            page = region.page_content(page_index)
            out += page[page_off : page_off + chunk]
            offset += chunk
            nbytes -= chunk
        return bytes(out)

    def write(self, addr, data):
        """Write ``data`` at ``addr``, servicing COW faults transparently."""
        region = self.find_region(addr)
        if region is None:
            raise SegmentationFault("write to unmapped address %#x" % addr)
        if not region.prot & PROT_WRITE:
            raise SegmentationFault(
                "write to read-only region %r" % region.name
            )
        if addr + len(data) > region.end:
            raise SegmentationFault("write crosses region end")
        offset = addr - region.start
        data = bytes(data)
        pos = 0
        while pos < len(data):
            page_index, page_off = divmod(offset, PAGE_SIZE)
            chunk = min(len(data) - pos, PAGE_SIZE - page_off)
            self._touch_page(region, page_index)
            page = bytearray(region.pages.get(page_index, _zero_page()))
            page[page_off : page_off + chunk] = data[pos : pos + chunk]
            region.pages[page_index] = bytes(page)
            offset += chunk
            pos += chunk
        return len(data)

    def write_page(self, region, page_index, content):
        """Replace one whole page (the workload generators' fast path)."""
        if len(content) != PAGE_SIZE:
            raise VirtualMemoryError("write_page requires exactly one page of data")
        self._touch_page(region, page_index)
        region.pages[page_index] = bytes(content)

    def _demand_fault(self, region, page_index):
        """First touch of a non-resident page under demand paging."""
        if self._demand_handler is not None and page_index not in region.pages:
            self._demand_handler(region, page_index)

    def set_demand_handler(self, handler):
        """Install (or clear) the demand-paging handler."""
        self._demand_handler = handler

    def _touch_page(self, region, page_index):
        """Dirty bookkeeping + COW fault interception for one page write."""
        self._demand_fault(region, page_index)
        if page_index in region.ckpt_flagged:
            # The engine's special flag is present: deliver the fault to the
            # registered handler, which copies the page and clears the flag.
            self.fault_count += 1
            if self._fault_handler is None:
                raise PageFault(region, page_index)
            self._fault_handler(region, page_index)
            region.ckpt_flagged.discard(page_index)
        region.dirty.add(page_index)

    # ------------------------------------------------------------------ #
    # Checkpoint support

    def set_fault_handler(self, handler):
        """Install the engine's COW fault handler (or None to remove)."""
        self._fault_handler = handler

    def protect_resident_pages(self):
        """Write-protect every resident page of every writable region and
        mark it with the checkpoint flag.  Returns the number of pages
        flagged (the cost driver for Figure 3's capture phase)."""
        flagged = 0
        for region in self._regions.values():
            if not region.prot & PROT_WRITE:
                continue
            for page_index in region.pages:
                region.ckpt_flagged.add(page_index)
                flagged += 1
        return flagged

    def clear_checkpoint_flags(self):
        for region in self._regions.values():
            region.ckpt_flagged.clear()

    def clear_dirty(self):
        """Reset dirty-page bookkeeping (after a checkpoint captures it)."""
        for region in self._regions.values():
            region.dirty.clear()

    def dirty_pages(self):
        """``[(region, page_index), ...]`` written since the last clear."""
        out = []
        for region in self.regions():
            for page_index in sorted(region.dirty):
                out.append((region, page_index))
        return out

    @property
    def resident_pages(self):
        return sum(region.resident_pages for region in self._regions.values())

    @property
    def resident_bytes(self):
        return self.resident_pages * PAGE_SIZE

    @property
    def mapped_bytes(self):
        return sum(region.nbytes for region in self._regions.values())
