"""Virtual execution environment (paper sections 3 and 5).

DejaView builds on Zap: the user's desktop session runs inside a *container*
— a private virtual namespace layered above the OS — so the whole session
can be checkpointed and later revived even though the underlying OS
resources change.  This package is the simulated kernel substrate those
mechanisms run against:

* :mod:`repro.vex.memory` -- paged virtual address spaces with protection
  bits, write-fault interception, copy-on-write support and dirty-page
  tracking (the foundation of incremental checkpointing, section 5.1.2).
* :mod:`repro.vex.process` -- processes and threads with the full state
  vector section 5.2 enumerates (registers, credentials, signals, open
  files, scheduling parameters, ...).
* :mod:`repro.vex.signals` -- signal numbers and delivery, including the
  uninterruptible-sleep behaviour pre-quiescing works around.
* :mod:`repro.vex.namespace` -- private virtual namespaces so concurrently
  revived sessions can reuse the same resource names without conflict.
* :mod:`repro.vex.sockets` -- TCP/UDP socket state and the revive-time
  reset semantics of section 5.2.
* :mod:`repro.vex.container` -- the virtual execution environment itself.
* :mod:`repro.vex.kernel` -- the top-level simulated kernel that owns the
  clock and the containers.
"""

from repro.vex.container import Container
from repro.vex.kernel import Kernel
from repro.vex.memory import AddressSpace, PageFault, SegmentationFault, VMRegion
from repro.vex.namespace import Namespace
from repro.vex.process import FileDescriptor, Process, ProcessState, Thread
from repro.vex.signals import SIGCONT, SIGKILL, SIGSEGV, SIGSTOP, SIGUSR1
from repro.vex.sockets import Socket, SocketState

__all__ = [
    "Kernel",
    "Container",
    "Namespace",
    "Process",
    "ProcessState",
    "Thread",
    "FileDescriptor",
    "AddressSpace",
    "VMRegion",
    "PageFault",
    "SegmentationFault",
    "Socket",
    "SocketState",
    "SIGSTOP",
    "SIGCONT",
    "SIGKILL",
    "SIGSEGV",
    "SIGUSR1",
]
