"""Processes, threads and file descriptors.

The state vector mirrors the list section 5.2 gives for what revive
restores: "process run state, program name, scheduling parameters,
credentials, pending and blocked signals, CPU registers, FPU state, ptrace
information, file system namespace, list of open files, signal handling
information, and virtual memory."
"""

from enum import Enum

from repro.common.errors import ProcessError
from repro.vex.memory import AddressSpace
from repro.vex.signals import SIGCONT, SIGKILL, SIGSTOP, UNBLOCKABLE


class ProcessState(Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    #: Blocked in an uninterruptible operation (e.g. disk I/O): signals are
    #: queued but not acted upon until the operation completes.
    UNINTERRUPTIBLE = "uninterruptible"
    STOPPED = "stopped"
    ZOMBIE = "zombie"


class Thread:
    """One thread of execution: CPU context only (memory is per-process)."""

    __slots__ = ("tid", "registers", "fpu_state")

    def __init__(self, tid, registers=None, fpu_state=b""):
        self.tid = tid
        self.registers = dict(registers or {"pc": 0, "sp": 0})
        self.fpu_state = bytes(fpu_state)

    def snapshot(self):
        # fpu_state is hex-encoded so snapshots stay JSON-serializable in
        # the checkpoint image's metadata record.
        return {
            "tid": self.tid,
            "registers": dict(self.registers),
            "fpu_state": self.fpu_state.hex(),
        }

    @classmethod
    def from_snapshot(cls, data):
        return cls(data["tid"], data["registers"], bytes.fromhex(data["fpu_state"]))


class FileDescriptor:
    """An open file table entry.

    ``kind`` is ``"file"`` or ``"socket"``.  For files we keep the path, the
    inode the path resolved to, the offset and whether the file has been
    unlinked while open — the case the relinking optimization of
    section 5.1.2 exists for.
    """

    __slots__ = ("fd", "kind", "path", "inode", "offset", "flags", "unlinked", "socket")

    def __init__(self, fd, kind="file", path=None, inode=None, offset=0,
                 flags=0, socket=None):
        self.fd = fd
        self.kind = kind
        self.path = path
        self.inode = inode
        self.offset = offset
        self.flags = flags
        self.unlinked = False
        self.socket = socket

    def snapshot(self):
        data = {
            "fd": self.fd,
            "kind": self.kind,
            "path": self.path,
            "inode": self.inode,
            "offset": self.offset,
            "flags": self.flags,
            "unlinked": self.unlinked,
        }
        if self.socket is not None:
            data["socket"] = self.socket.snapshot()
        return data


class Process:
    """A simulated process inside a virtual execution environment."""

    def __init__(self, vpid, name, parent=None, uid=1000, gid=1000, nice=0):
        self.vpid = vpid
        self.name = name
        self.parent = parent
        self.children = []
        self.state = ProcessState.RUNNABLE
        self.exit_code = None
        # Scheduling and identity.
        self.nice = nice
        self.uid = uid
        self.gid = gid
        self.groups = [gid]
        # Signals.
        self.pending_signals = []
        self.blocked_signals = set()
        self.signal_handlers = {}  # signum -> name of handler (opaque)
        # Threads (thread 0 is the main thread).
        self._next_tid = 1
        self.threads = [Thread(tid=0)]
        # Ptrace.
        self.ptraced_by = None
        # Filesystem view.
        self.cwd = "/"
        self.open_files = {}  # fd -> FileDescriptor
        self._next_fd = 3  # 0..2 reserved for std streams
        # Memory.
        self.address_space = AddressSpace()
        # Uninterruptible-sleep bookkeeping: while the simulated clock is
        # before busy_until_us, the process is in disk I/O.
        self.busy_until_us = 0
        # Set while quiesced by the checkpoint engine.
        self._resume_state = None

    # ------------------------------------------------------------------ #
    # Threads

    def spawn_thread(self, registers=None):
        thread = Thread(self._next_tid, registers)
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    # ------------------------------------------------------------------ #
    # Files

    def open_fd(self, kind="file", path=None, inode=None, flags=0, socket=None):
        fd = self._next_fd
        self._next_fd += 1
        entry = FileDescriptor(fd, kind, path, inode, flags=flags, socket=socket)
        self.open_files[fd] = entry
        return entry

    def close_fd(self, fd):
        if fd not in self.open_files:
            raise ProcessError("close of unknown fd %d in %s" % (fd, self.name))
        return self.open_files.pop(fd)

    # ------------------------------------------------------------------ #
    # State transitions

    def run_state_for(self, now_us):
        """Effective state, accounting for uninterruptible I/O windows."""
        if self.state in (ProcessState.STOPPED, ProcessState.ZOMBIE):
            return self.state
        if now_us < self.busy_until_us:
            return ProcessState.UNINTERRUPTIBLE
        return self.state

    def begin_io(self, now_us, duration_us):
        """Enter uninterruptible sleep until ``now + duration``."""
        self.busy_until_us = max(self.busy_until_us, now_us + int(duration_us))

    def signalable(self, now_us):
        """Can the process act on a stop signal right now?  (pre-quiesce)"""
        return self.run_state_for(now_us) not in (
            ProcessState.UNINTERRUPTIBLE,
            ProcessState.ZOMBIE,
        )

    def deliver_signal(self, signum, now_us):
        """Deliver (or queue) a signal.

        STOP/CONT act immediately when the process is signalable; while in
        uninterruptible sleep, signals queue and act when the sleep ends
        (callers re-deliver via :meth:`flush_pending_signals`).
        """
        if signum in self.blocked_signals and signum not in UNBLOCKABLE:
            self.pending_signals.append(signum)
            return False
        if not self.signalable(now_us) and signum != SIGKILL:
            self.pending_signals.append(signum)
            return False
        self._act_on_signal(signum)
        return True

    def flush_pending_signals(self, now_us):
        """Re-attempt delivery of queued signals (e.g. after I/O ends)."""
        if not self.signalable(now_us):
            return 0
        pending, self.pending_signals = self.pending_signals, []
        acted = 0
        for signum in pending:
            if signum in self.blocked_signals and signum not in UNBLOCKABLE:
                self.pending_signals.append(signum)
                continue
            self._act_on_signal(signum)
            acted += 1
        return acted

    def _act_on_signal(self, signum):
        if signum == SIGSTOP:
            if self.state not in (ProcessState.ZOMBIE,):
                self._resume_state = self.state
                self.state = ProcessState.STOPPED
        elif signum == SIGCONT:
            if self.state is ProcessState.STOPPED:
                self.state = self._resume_state or ProcessState.RUNNABLE
                self._resume_state = None
        elif signum == SIGKILL:
            self.exit(-9)
        # Other signals are recorded but have no modelled default action.

    def exit(self, code=0):
        self.state = ProcessState.ZOMBIE
        self.exit_code = code

    def __repr__(self):
        return "Process(vpid=%d, name=%r, state=%s)" % (
            self.vpid,
            self.name,
            self.state.value,
        )
