"""Socket state and revive semantics.

Section 5.2: "when reviving a session, DejaView drops all external
connections of stateful protocols, such as TCP, by resetting the state of
their respective sockets; internal connections that are fully contained
within the user's session, e.g. to localhost, remain intact. ... sockets
that correspond to stateless protocols, such as UDP, are always restored
precisely."
"""

from enum import Enum


class SocketState(Enum):
    CLOSED = "closed"
    LISTENING = "listening"
    ESTABLISHED = "established"
    RESET = "reset"


PROTO_TCP = "tcp"
PROTO_UDP = "udp"


class Socket:
    """A simulated network socket."""

    __slots__ = ("proto", "local", "remote", "state", "internal")

    def __init__(self, proto, local, remote=None, state=SocketState.CLOSED,
                 internal=False):
        if proto not in (PROTO_TCP, PROTO_UDP):
            raise ValueError("unknown protocol %r" % proto)
        self.proto = proto
        self.local = local
        self.remote = remote
        self.state = state
        #: True when the connection is fully contained within the user's
        #: session (e.g. to localhost).
        self.internal = internal

    @property
    def is_stateful(self):
        return self.proto == PROTO_TCP

    def reset(self):
        """RST the connection (what the application sees as a peer drop)."""
        self.state = SocketState.RESET

    def snapshot(self):
        return {
            "proto": self.proto,
            "local": self.local,
            "remote": self.remote,
            "state": self.state.value,
            "internal": self.internal,
        }

    @classmethod
    def from_snapshot(cls, data):
        return cls(
            proto=data["proto"],
            local=data["local"],
            remote=data["remote"],
            state=SocketState(data["state"]),
            internal=data["internal"],
        )

    def restore_for_revive(self):
        """Apply section 5.2 revive semantics to this socket.

        Returns ``True`` if the socket survived intact, ``False`` if it was
        reset.  UDP and internal connections are restored precisely; external
        stateful (TCP) connections are reset.
        """
        if self.is_stateful and not self.internal and \
                self.state is SocketState.ESTABLISHED:
            self.reset()
            return False
        return True

    def __repr__(self):
        return "Socket(%s %s->%s %s%s)" % (
            self.proto,
            self.local,
            self.remote,
            self.state.value,
            " internal" if self.internal else "",
        )
