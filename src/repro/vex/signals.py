"""Signals for the simulated kernel.

Only the signals the checkpoint/restart machinery cares about are modelled.
The semantics that matter to DejaView:

* ``SIGSTOP`` / ``SIGCONT`` implement quiescing (section 5.1.1).
* A process blocked in an *uninterruptible* state (e.g. waiting on disk
  I/O) does not handle signals until the blocking operation completes —
  this is exactly why DejaView pre-quiesces: "DejaView waits to quiesce the
  session until either all the processes are ready to receive signals or a
  configurable time has elapsed" (section 5.1.2).
* ``SIGSEGV`` is the write-fault signal the incremental checkpoint
  mechanism intercepts: faults on pages carrying the special checkpoint
  flag are absorbed; genuine faults proceed "down the normal handling
  path".
"""

SIGKILL = 9
SIGSEGV = 11
SIGUSR1 = 10
SIGUSR2 = 12
SIGTERM = 15
SIGSTOP = 19
SIGCONT = 18
SIGCHLD = 17

_NAMES = {
    SIGKILL: "SIGKILL",
    SIGSEGV: "SIGSEGV",
    SIGUSR1: "SIGUSR1",
    SIGUSR2: "SIGUSR2",
    SIGTERM: "SIGTERM",
    SIGSTOP: "SIGSTOP",
    SIGCONT: "SIGCONT",
    SIGCHLD: "SIGCHLD",
}

#: Signals that cannot be blocked or handled by the process.
UNBLOCKABLE = frozenset({SIGKILL, SIGSTOP})


def signal_name(signum):
    """Human-readable name for a signal number."""
    return _NAMES.get(signum, "SIG%d" % signum)
