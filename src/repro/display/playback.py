"""Playback engine (section 4.3).

Supports the PVR operations: skip to an arbitrary time, play at the original
rate or a scaled one, play at the fastest possible rate (for Figure 6's
playback-speedup experiment), fast-forward, and rewind.

Skipping to time ``T`` binary-searches the timeline index for the latest
screenshot at or before ``T``, loads it, and replays only the commands
between the screenshot and ``T``.  Before applying them, the engine *prunes*
the command list: commands whose output is entirely overwritten by a later
opaque command are discarded ("DejaView builds a list of commands that are
pertinent to the contents of the screen by discarding those that are
overwritten by newer ones").  COPY commands read prior screen state, so a
kept COPY pins every earlier command (they cannot be pruned past it) — a
conservative but correct approximation of the paper's dependency analysis.
"""

import struct
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import DisplayError
from repro.common.serial import StreamCorrupt, read_at
from repro.common.telemetry import resolve_telemetry
from repro.display.framebuffer import Framebuffer
from repro.display.protocol import CommandLogReader

_TS = struct.Struct("<Q")


@dataclass
class PlaybackStats:
    """Outcome of a playback operation, in simulated time."""

    recorded_duration_us: int
    playback_duration_us: int
    commands_considered: int
    commands_applied: int

    @property
    def speedup(self):
        """How much faster than real time the record was played."""
        if self.playback_duration_us <= 0:
            return float("inf")
        return self.recorded_duration_us / self.playback_duration_us


def prune_commands(commands):
    """Drop commands fully overwritten by later opaque commands.

    ``commands`` is a chronologically ordered list; the return value is the
    chronologically ordered subset whose application yields the same final
    framebuffer.
    """
    kept = []
    covers = []  # regions of later kept opaque commands
    copy_seen = False
    for command in reversed(commands):
        if not copy_seen and any(c.contains(command.region) for c in covers):
            continue
        kept.append(command)
        if command.OPAQUE:
            covers.append(command.region)
        else:
            # A COPY depends on earlier screen contents: stop pruning.
            copy_seen = True
    kept.reverse()
    return kept


class _KeyframeCache:
    """LRU cache of decoded keyframes, keyed by screenshot offset.

    "DejaView also caches screenshots for search results, using a LRU
    scheme, where the cache size is tunable" (section 4.4).
    """

    def __init__(self, capacity, hit_counter=None, miss_counter=None):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._m_hits = hit_counter
        self._m_misses = miss_counter

    def get(self, key):
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return self._entries[key]
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def put(self, key, value):
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class PlaybackEngine:
    """Reconstructs display state from a :class:`DisplayRecord`."""

    def __init__(self, record, clock=None, costs=DEFAULT_COSTS,
                 cache_capacity=8, prune=True, cold=False, telemetry=None):
        """``cold=True`` charges record reads at disk cost; the default
        models the paper's measurement setting, where the record being
        browsed was just written and still sits in the page cache."""
        self.record = record
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.prune = prune
        self.cold = cold
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_seeks = metrics.counter("playback.seeks")
        self._m_considered = metrics.counter("playback.commands_considered")
        self._m_applied = metrics.counter("playback.commands_applied")
        self._m_seek_us = metrics.histogram("playback.seek_us")
        self._m_segments_skipped = metrics.counter("display.segments_skipped")
        self._last_anchor = None
        self._cache = _KeyframeCache(
            cache_capacity,
            hit_counter=metrics.counter("playback.cache_hits"),
            miss_counter=metrics.counter("playback.cache_misses"),
        )

    def _charge_read(self, nbytes):
        if self.cold:
            self.clock.advance_us(self.costs.disk_read_us(nbytes, sequential=False))
        else:
            self.clock.advance_us(nbytes * self.costs.memcpy_us_per_byte)

    # ------------------------------------------------------------------ #
    # Keyframe access

    def _load_keyframe(self, entry):
        """Decode the screenshot for a timeline entry (LRU-cached)."""
        cached = self._cache.get(entry.screenshot_offset)
        if cached is not None:
            # Cached frames still cost a copy (the caller will mutate it).
            self.clock.advance_us(
                cached.nbytes * self.costs.memcpy_us_per_byte
            )
            return cached.clone()
        tag, payload = read_at(self.record.screenshot_bytes, entry.screenshot_offset)
        (shot_time,) = _TS.unpack_from(payload)
        if shot_time != entry.time_us:
            raise DisplayError(
                "timeline entry time %d does not match screenshot %d"
                % (entry.time_us, shot_time)
            )
        snapshot = payload[_TS.size :]
        self._charge_read(len(snapshot))
        # Decoding the keyframe into a framebuffer (the part the LRU cache
        # saves on repeat visits).
        self.clock.advance_us(len(snapshot) * self.costs.screenshot_us_per_byte)
        fb = Framebuffer.from_snapshot(snapshot)
        self._cache.put(entry.screenshot_offset, fb.clone())
        return fb

    def _load_anchor(self, index):
        """Load a playback anchor: the keyframe at timeline ``index``, or
        — when its record is torn/corrupt — the nearest earlier one that
        decodes.  Skipped segments are counted, never raised: a torn
        record costs fidelity, not playback.  Returns ``(fb, entry)``;
        ``(None, None)`` when no keyframe at or before ``index`` loads.
        """
        while index is not None and index >= 0:
            entry = self.record.timeline[index]
            try:
                fb = self._load_keyframe(entry)
            except (StreamCorrupt, DisplayError):
                self._m_segments_skipped.inc()
                index -= 1
                continue
            return fb, entry
        return None, None

    def _commands_between(self, command_offset, start_us, end_us):
        """Commands with start_us < t <= end_us, reading from an offset
        (``None`` scans from the start of the log).  A torn record ends
        the scan — everything past it is unreadable anyway."""
        result = []
        reader = CommandLogReader(self.record.log_bytes)
        if command_offset is not None:
            reader.seek_to(command_offset)
        bytes_read = 0
        try:
            for command, timestamp_us, _offset in reader:
                if timestamp_us > end_us:
                    break
                bytes_read += command.payload_size
                if timestamp_us > start_us:
                    result.append((command, timestamp_us))
        except StreamCorrupt:
            self._m_segments_skipped.inc()
        # One positioning step, then a sequential scan of the log.
        self._charge_read(bytes_read)
        return result

    # ------------------------------------------------------------------ #
    # PVR operations

    def seek(self, time_us):
        """Skip to ``time_us``: reconstruct and return the screen then.

        Returns ``(framebuffer, stats)``.  This is the "browse" operation
        measured in Figure 5.
        """
        with self.telemetry.span("playback.seek") as span:
            watch = self.clock.stopwatch()
            index, entry = self.record.timeline.locate(time_us)
            if entry is None:
                raise DisplayError(
                    "requested time %d precedes the first screenshot" % time_us
                )
            fb, anchor = self._load_anchor(index)
            self._last_anchor = anchor
            if anchor is not None:
                anchor_time = anchor.time_us
                timed = self._commands_between(anchor.command_offset,
                                               anchor_time, time_us)
            else:
                # Every keyframe at or before time_us is corrupt: start
                # from a blank screen and replay the surviving log.
                fb = Framebuffer(self.record.width, self.record.height)
                anchor_time = 0
                timed = self._commands_between(None, -1, time_us)
            commands = [cmd for cmd, _ts in timed]
            to_apply = prune_commands(commands) if self.prune else commands
            for command in to_apply:
                command.apply(fb)
                self.clock.advance_us(
                    self.costs.display_cmd_base_us
                    + command.payload_size * self.costs.display_us_per_payload_byte
                )
            stats = PlaybackStats(
                recorded_duration_us=max(0, time_us - anchor_time),
                playback_duration_us=0,
                commands_considered=len(commands),
                commands_applied=len(to_apply),
            )
            self._m_seeks.inc()
            self._m_considered.inc(len(commands))
            self._m_applied.inc(len(to_apply))
            self._m_seek_us.observe(watch.elapsed_us)
            span.set("commands_applied", len(to_apply))
        return fb, stats

    def play(self, start_us, end_us, speed=1.0, fastest=False):
        """Play the record from ``start_us`` to ``end_us``.

        ``speed`` scales the inter-command sleeps ("it can provide playback
        at twice the normal rate by only allowing half as much time as
        specified to elapse between commands"); ``fastest`` ignores command
        times entirely and processes them as quickly as possible.

        Returns ``(framebuffer, stats)`` where the stats carry the measured
        speedup (Figure 6).
        """
        if speed <= 0:
            raise DisplayError("playback speed must be positive")
        first = self.record.timeline.first_time_us
        if first is None:
            raise DisplayError("empty record")
        # Clamp into the record's range: playing "from the beginning"
        # means from the first keyframe.
        start_us = max(start_us, first)
        watch = self.clock.stopwatch()
        fb, _ = self.seek(start_us)
        anchor = self._last_anchor  # the keyframe seek actually used
        timed = self._commands_between(
            anchor.command_offset if anchor is not None else None,
            start_us, end_us)
        applied = 0
        previous_ts = start_us
        for command, timestamp_us in timed:
            if not fastest:
                gap_us = (timestamp_us - previous_ts) / speed
                self.clock.advance_us(gap_us)
                previous_ts = timestamp_us
            command.apply(fb)
            self.clock.advance_us(
                self.costs.display_cmd_base_us
                + command.payload_size * self.costs.display_us_per_payload_byte
            )
            applied += 1
        stats = PlaybackStats(
            recorded_duration_us=max(0, end_us - start_us),
            playback_duration_us=watch.elapsed_us,
            commands_considered=len(timed),
            commands_applied=applied,
        )
        return fb, stats

    def fast_forward(self, from_us, to_us):
        """Fast-forward: play each keyframe in turn, then replay from the
        last one before ``to_us`` (section 4.3)."""
        if to_us < from_us:
            raise DisplayError("fast_forward target precedes start")
        shown = 0
        for entry in self.record.timeline.entries_between(from_us, to_us):
            try:
                fb = self._load_keyframe(entry)
            except (StreamCorrupt, DisplayError):
                self._m_segments_skipped.inc()
                continue
            self.clock.advance_us(
                fb.nbytes * self.costs.display_us_per_payload_byte
            )
            shown += 1
        fb, stats = self.seek(to_us)
        return fb, stats, shown

    def rewind(self, from_us, to_us):
        """Rewind: like fast-forward but walking the keyframes backwards."""
        if to_us > from_us:
            raise DisplayError("rewind target follows start")
        shown = 0
        for entry in reversed(self.record.timeline.entries_between(to_us, from_us)):
            try:
                fb = self._load_keyframe(entry)
            except (StreamCorrupt, DisplayError):
                self._m_segments_skipped.inc()
                continue
            self.clock.advance_us(
                fb.nbytes * self.costs.display_us_per_payload_byte
            )
            shown += 1
        fb, stats = self.seek(to_us)
        return fb, stats, shown

    # ------------------------------------------------------------------ #

    @property
    def cache_stats(self):
        return {"hits": self._cache.hits, "misses": self._cache.misses}


class SubstreamPlayer:
    """PVR controls restricted to one substream of the record.

    "Substreams behave like a typical recording, where all the PVR
    functionality is available, but restricted to that portion of time"
    (section 4.4).  Every operation's time arguments are clamped into the
    substream's window, so a search result can be explored like a small
    self-contained recording.
    """

    def __init__(self, engine, start_us, end_us):
        if end_us < start_us:
            raise DisplayError("substream end precedes start")
        self.engine = engine
        self.start_us = start_us
        self.end_us = end_us

    @property
    def duration_us(self):
        return self.end_us - self.start_us

    def _clamp(self, time_us):
        return max(self.start_us, min(time_us, self.end_us))

    def seek(self, time_us):
        return self.engine.seek(self._clamp(time_us))

    def play(self, start_us=None, end_us=None, speed=1.0, fastest=False):
        start = self._clamp(start_us if start_us is not None else self.start_us)
        end = self._clamp(end_us if end_us is not None else self.end_us)
        return self.engine.play(start, end, speed=speed, fastest=fastest)

    def fast_forward(self, from_us, to_us):
        return self.engine.fast_forward(self._clamp(from_us), self._clamp(to_us))

    def rewind(self, from_us, to_us):
        return self.engine.rewind(self._clamp(from_us), self._clamp(to_us))

    def first_frame(self):
        return self.seek(self.start_us)

    def last_frame(self):
        return self.seek(self.end_us)
