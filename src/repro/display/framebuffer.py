"""Pixel framebuffer.

The display server owns the authoritative framebuffer; viewers and playback
reconstruct their own copies from the command stream.  Replay fidelity in the
paper means the reconstructed screen is exactly what the user saw — here we
enforce that literally: tests assert reconstructed framebuffers are
bit-for-bit equal to the original (:meth:`Framebuffer.checksum`).

Pixels are 32-bit values (0x00RRGGBB); the simulation never interprets the
channels, so any packing works.
"""

import hashlib
import struct

import numpy as np

from repro.common.errors import DisplayError
from repro.display.commands import Region


class Framebuffer:
    """A ``height`` x ``width`` array of uint32 pixels."""

    def __init__(self, width, height, fill=0):
        if width <= 0 or height <= 0:
            raise DisplayError("framebuffer dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.pixels = np.full((self.height, self.width), fill, dtype=np.uint32)

    @property
    def nbytes(self):
        """Size of the raw pixel data in bytes."""
        return self.pixels.nbytes

    @property
    def bounds(self):
        return Region(0, 0, self.width, self.height)

    # ------------------------------------------------------------------ #
    # Drawing primitives (used by the display commands)

    def _clip(self, region):
        clipped = region.clipped(self.width, self.height)
        return clipped

    def fill(self, region, color):
        r = self._clip(region)
        if r.is_empty():
            return
        self.pixels[r.y : r.y2, r.x : r.x2] = np.uint32(color)

    def blit(self, region, block):
        """Copy a ``(h, w)`` uint32 block into ``region`` (clipped)."""
        r = self._clip(region)
        if r.is_empty():
            return
        # Offset into the source block if the region was clipped.
        oy, ox = r.y - region.y, r.x - region.x
        self.pixels[r.y : r.y2, r.x : r.x2] = block[oy : oy + r.h, ox : ox + r.w]

    def copy(self, src, dst):
        """Copy the ``src`` rectangle's pixels to ``dst`` (same size)."""
        if (src.w, src.h) != (dst.w, dst.h):
            raise DisplayError("copy source and destination sizes differ")
        s = self._clip(src)
        if s.is_empty():
            return
        block = self.pixels[s.y : s.y2, s.x : s.x2].copy()
        shifted = Region(dst.x + (s.x - src.x), dst.y + (s.y - src.y), s.w, s.h)
        self.blit(shifted, block)

    def pattern_fill(self, region, pattern):
        r = self._clip(region)
        if r.is_empty():
            return
        ph, pw = pattern.shape
        reps_y = -(-r.h // ph)
        reps_x = -(-r.w // pw)
        tiled = np.tile(pattern, (reps_y, reps_x))
        # Keep the pattern phase anchored to the *unclipped* region origin.
        oy = (r.y - region.y) % ph
        ox = (r.x - region.x) % pw
        self.pixels[r.y : r.y2, r.x : r.x2] = tiled[oy : oy + r.h, ox : ox + r.w]

    def read(self, region):
        """Return a copy of the pixels in ``region`` (must be in bounds)."""
        if not self.bounds.contains(region):
            raise DisplayError("read outside framebuffer bounds: %r" % (region,))
        return self.pixels[region.y : region.y2, region.x : region.x2].copy()

    # ------------------------------------------------------------------ #
    # Snapshots

    def checksum(self):
        """A stable digest of the full screen contents."""
        return hashlib.sha1(self.pixels.tobytes()).hexdigest()

    def snapshot_bytes(self):
        """Serialize the full framebuffer (used for keyframe screenshots)."""
        header = struct.pack("<II", self.width, self.height)
        return header + self.pixels.tobytes()

    @classmethod
    def from_snapshot(cls, data):
        width, height = struct.unpack_from("<II", data)
        fb = cls(width, height)
        raw = data[8 : 8 + width * height * 4]
        if len(raw) != width * height * 4:
            raise DisplayError("truncated framebuffer snapshot")
        fb.pixels = (
            np.frombuffer(raw, dtype=np.uint32).reshape(height, width).copy()
        )
        return fb

    def clone(self):
        fb = Framebuffer(self.width, self.height)
        fb.pixels = self.pixels.copy()
        return fb

    def scaled(self, factor):
        """Nearest-neighbour rescale (THINC screen scaling, section 4.1)."""
        if factor == 1.0:
            return self.clone()
        new_w = max(1, int(self.width * factor))
        new_h = max(1, int(self.height * factor))
        ys = np.linspace(0, self.height - 1, new_h).astype(int)
        xs = np.linspace(0, self.width - 1, new_w).astype(int)
        fb = Framebuffer(new_w, new_h)
        fb.pixels = self.pixels[np.ix_(ys, xs)].copy()
        return fb

    def __eq__(self, other):
        return (
            isinstance(other, Framebuffer)
            and self.width == other.width
            and self.height == other.height
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self):  # pragma: no cover - framebuffers are not dict keys
        return id(self)

    def __repr__(self):
        return "Framebuffer(%dx%d)" % (self.width, self.height)
