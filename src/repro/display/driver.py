"""Virtual display driver.

"Instead of providing a real driver for a particular display hardware,
DejaView introduces a virtual display driver that intercepts drawing
commands, records them, and redirects them to the DejaView client for
display" (section 3).

The driver:

* owns the authoritative server framebuffer and rasterizes every command
  into it (all persistent display state lives server-side);
* keeps a pending-command queue with THINC's queueing/merging behaviour —
  an opaque command that fully covers a queued command replaces it, so when
  update frequency is limited "only the result of the last update is
  logged" (section 4.1);
* fans the flushed command stream out to registered sinks (the live viewer
  and the display recorder), optionally rescaled per sink for
  reduced-resolution recording or small-screen viewing;
* tracks display activity statistics which the checkpoint policy consumes
  (section 5.1.3: checkpoints are triggered by display updates).
"""

from dataclasses import dataclass, field

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import DisplayError
from repro.display.commands import Region
from repro.display.framebuffer import Framebuffer


@dataclass
class DisplayActivity:
    """Aggregate display activity since the last policy inspection."""

    command_count: int = 0
    changed_area: int = 0
    screen_area: int = 0
    fullscreen_updates: int = 0
    bounds: Region = field(default_factory=lambda: Region(0, 0, 0, 0))

    @property
    def changed_fraction(self):
        """Changed screen fraction; >1 means the screen changed repeatedly."""
        if self.screen_area == 0:
            return 0.0
        return self.changed_area / self.screen_area

    def merge_command(self, command, screen_area):
        self.command_count += 1
        self.changed_area += command.region.area
        self.screen_area = screen_area
        if command.region.area >= screen_area:
            self.fullscreen_updates += 1
        self.bounds = self.bounds.union_bounds(command.region)


class VirtualDisplayDriver:
    """The THINC-style virtual display driver with recording hooks."""

    def __init__(self, width, height, clock=None, costs=DEFAULT_COSTS):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.framebuffer = Framebuffer(width, height)
        self._queue = []
        self._sinks = []  # list of (sink, scale)
        self._activity = DisplayActivity(screen_area=width * height)
        self.total_commands = 0
        self.total_payload_bytes = 0

    # ------------------------------------------------------------------ #
    # Sink management

    def attach_sink(self, sink, scale=1.0):
        """Register a command consumer (viewer, recorder).

        ``scale`` rescales commands for this sink only, implementing
        independent record/view resolutions (section 4.1).
        """
        if scale <= 0:
            raise DisplayError("sink scale must be positive")
        self._sinks.append((sink, scale))
        return sink

    def detach_sink(self, sink):
        self._sinks = [(s, f) for (s, f) in self._sinks if s is not sink]

    # ------------------------------------------------------------------ #
    # Drawing path

    def submit(self, command):
        """Accept one drawing command from an application.

        The command is rasterized into the server framebuffer immediately
        (the user must see it) and queued for sink delivery at the next
        :meth:`flush`.
        """
        clipped = command.region.clipped(
            self.framebuffer.width, self.framebuffer.height
        )
        if clipped.is_empty():
            return
        command.apply(self.framebuffer)
        self.clock.advance_us(
            self.costs.display_cmd_base_us
            + command.payload_size * self.costs.display_us_per_payload_byte
        )
        self._merge_into_queue(command)
        self._activity.merge_command(command, self.framebuffer.bounds.area)
        self.total_commands += 1
        self.total_payload_bytes += command.payload_size

    def _merge_into_queue(self, command):
        """THINC queue merging: drop queued commands fully covered by an
        incoming opaque command — only the last update's result matters."""
        if command.OPAQUE:
            self._queue = [
                queued
                for queued in self._queue
                if not command.region.contains(queued.region)
            ]
        self._queue.append(command)

    def flush(self):
        """Deliver the merged queue to every sink; returns commands sent."""
        if not self._queue:
            return 0
        commands = self._queue
        self._queue = []
        timestamp_us = self.clock.now_us
        for sink, scale in self._sinks:
            if scale == 1.0:
                delivery = commands
            else:
                delivery = [cmd.scaled(scale) for cmd in commands]
            sink.handle_commands(delivery, timestamp_us)
        return len(commands)

    @property
    def pending_count(self):
        """Commands queued but not yet flushed (tests THINC merging)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Activity statistics (consumed by the checkpoint policy)

    def drain_activity(self):
        """Return accumulated activity stats and reset the accumulator."""
        activity = self._activity
        self._activity = DisplayActivity(
            screen_area=self.framebuffer.bounds.area
        )
        return activity

    def peek_activity(self):
        return self._activity
