"""Wire/log codec for display commands.

The same encoding serves both the viewer connection and the on-disk display
record ("both streams use the same set of commands", section 4.1).  Each
encoded command is a TLV record whose tag is the command type and whose
payload starts with a little-endian ``u64`` timestamp in simulated
microseconds followed by the command's own payload.
"""

import struct

from repro.common.errors import DisplayError
from repro.common.serial import RecordReader, RecordWriter, scan_valid_prefix
from repro.display.commands import COMMAND_TYPES

STREAM_KIND_DISPLAY = 0x0D15
"""Stream-kind header value for display command logs."""

SCREENSHOT_TAG = 100
"""Record tag for full-framebuffer keyframes within a screenshot stream."""

_TS = struct.Struct("<Q")


def encode_command(command, timestamp_us):
    """Encode one command with its timestamp; returns ``(tag, payload)``."""
    if command.TAG not in COMMAND_TYPES:
        raise DisplayError("unknown command type %r" % (command,))
    return command.TAG, _TS.pack(timestamp_us) + command.encode_payload()


def decode_command(tag, payload):
    """Inverse of :func:`encode_command`; returns ``(command, timestamp_us)``."""
    cls = COMMAND_TYPES.get(tag)
    if cls is None:
        raise DisplayError("unknown display command tag %d" % tag)
    (timestamp_us,) = _TS.unpack_from(payload)
    command = cls.decode_payload(payload[_TS.size :])
    return command, timestamp_us


class CommandLogWriter:
    """Appends timestamped commands to a display log stream."""

    def __init__(self, fileobj=None):
        self._writer = RecordWriter(fileobj, kind=STREAM_KIND_DISPLAY)
        self.command_count = 0

    @property
    def bytes_written(self):
        return self._writer.bytes_written

    def append(self, command, timestamp_us):
        """Write one command; returns its byte offset in the stream."""
        tag, payload = encode_command(command, timestamp_us)
        offset = self._writer.write(tag, payload)
        self.command_count += 1
        return offset

    def append_torn(self, command, timestamp_us):
        """Write a deliberately torn record — the bytes a crash
        mid-append leaves behind (fault injection only).  Not counted as
        a logged command."""
        tag, payload = encode_command(command, timestamp_us)
        return self._writer.write_torn(tag, payload)

    def recover(self):
        """Truncate any torn tail off the log; returns bytes dropped.
        ``command_count`` is recounted from the surviving records."""
        end_offset, records = scan_valid_prefix(
            self.getvalue(), expect_kind=STREAM_KIND_DISPLAY)
        dropped = self._writer.truncate_to(end_offset)
        self.command_count = len(records)
        return dropped

    def getvalue(self):
        return self._writer.getvalue()


class CommandLogReader:
    """Iterates ``(command, timestamp_us, offset)`` triples from a log."""

    def __init__(self, data):
        self._reader = RecordReader(data, expect_kind=STREAM_KIND_DISPLAY)

    def seek_to(self, offset):
        self._reader.seek_to(offset)
        return self

    def __iter__(self):
        return self

    def __next__(self):
        tag, payload, offset = next(self._reader)
        command, timestamp_us = decode_command(tag, payload)
        return command, timestamp_us, offset
