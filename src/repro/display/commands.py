"""THINC display command set.

THINC translates all drawing into a small number of low-level commands that
map directly onto operations video hardware implements (Baratto et al.,
SOSP 2005).  DejaView records this command stream, so the command set is the
unit of both recording and playback:

========  ==================================================================
RAW       Uncompressed pixel data for a region (the fallback).
COPY      Copy a screen region to another location (scrolling, window move).
SFILL     Fill a region with a single solid color.
PFILL     Tile a region with a small pattern.
BITMAP    Expand a 1-bit-per-pixel bitmap into fg/bg colors (text glyphs).
========  ==================================================================

Every command knows how to apply itself to a
:class:`~repro.display.framebuffer.Framebuffer`, how large its encoded
payload is (for storage accounting), whether it is *opaque* (fully
determines the pixels of its target region — the property command pruning
relies on), and how to rescale itself for reduced-resolution recording.
"""

import struct
from dataclasses import dataclass

import numpy as np

from repro.common.errors import DisplayError


@dataclass(frozen=True, order=True)
class Region:
    """An axis-aligned rectangle on the screen, in pixels.

    ``x``/``y`` is the top-left corner; ``w``/``h`` the extent.  Regions are
    immutable and hashable so they can key caches and sets.
    """

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self):
        if self.w < 0 or self.h < 0:
            raise DisplayError("region extent must be non-negative: %r" % (self,))

    @property
    def area(self):
        return self.w * self.h

    @property
    def x2(self):
        """One past the right edge."""
        return self.x + self.w

    @property
    def y2(self):
        """One past the bottom edge."""
        return self.y + self.h

    def is_empty(self):
        return self.w == 0 or self.h == 0

    def contains(self, other):
        """True if ``other`` lies entirely within this region."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def intersects(self, other):
        return not (
            other.x >= self.x2
            or other.x2 <= self.x
            or other.y >= self.y2
            or other.y2 <= self.y
        )

    def intersection(self, other):
        """The overlapping region, or an empty region when disjoint."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x or y2 <= y:
            return Region(x, y, 0, 0)
        return Region(x, y, x2 - x, y2 - y)

    def union_bounds(self, other):
        """Smallest region covering both."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Region(x, y, x2 - x, y2 - y)

    def scaled(self, factor):
        """Scale by ``factor`` (e.g. 0.5 to halve resolution), snapping the
        corners outward so no covered pixel is lost."""
        if factor <= 0:
            raise DisplayError("scale factor must be positive")
        x = int(self.x * factor)
        y = int(self.y * factor)
        x2 = int(-(-self.x2 * factor // 1))  # ceil
        y2 = int(-(-self.y2 * factor // 1))
        return Region(x, y, max(0, x2 - x), max(0, y2 - y))

    def clipped(self, width, height):
        """Clip to a ``width`` x ``height`` screen."""
        return self.intersection(Region(0, 0, width, height))


_REGION = struct.Struct("<iiII")


def _pack_region(region):
    return _REGION.pack(region.x, region.y, region.w, region.h)


def _unpack_region(data, offset=0):
    x, y, w, h = _REGION.unpack_from(data, offset)
    return Region(x, y, w, h), offset + _REGION.size


class DisplayCommand:
    """Base class for THINC display commands.

    Subclasses define:

    * :attr:`TAG` -- the wire tag used by :mod:`repro.display.protocol`.
    * :meth:`apply` -- rasterize into a framebuffer.
    * :meth:`encode_payload` / :meth:`decode_payload` -- the codec.
    * :meth:`scaled` -- resolution scaling for reduced-quality recording.
    """

    TAG = None
    #: Whether the command's output fully determines every pixel of its
    #: region.  COPY is *not* opaque for pruning purposes: its output depends
    #: on prior screen contents, so commands under it cannot be discarded.
    OPAQUE = True

    __slots__ = ("region",)

    def __init__(self, region):
        self.region = region

    @property
    def payload_size(self):
        """Encoded payload size in bytes (storage accounting)."""
        return len(self.encode_payload())

    def apply(self, framebuffer):
        raise NotImplementedError

    def encode_payload(self):
        raise NotImplementedError

    @classmethod
    def decode_payload(cls, data):
        raise NotImplementedError

    def scaled(self, factor):
        raise NotImplementedError

    def __repr__(self):
        return "%s(region=%r)" % (type(self).__name__, self.region)

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.region == other.region
            and self.encode_payload() == other.encode_payload()
        )

    def __hash__(self):
        return hash((type(self).__name__, self.region))


class RawCmd(DisplayCommand):
    """Uncompressed pixel data for a region.

    ``pixels`` is a ``(h, w)`` uint32 array.  RAW is THINC's fallback for
    content no other command represents well (photographs, video frames).
    """

    TAG = 1
    OPAQUE = True

    __slots__ = ("pixels",)

    def __init__(self, region, pixels):
        super().__init__(region)
        pixels = np.ascontiguousarray(pixels, dtype=np.uint32)
        if pixels.shape != (region.h, region.w):
            raise DisplayError(
                "pixel block %r does not match region %r"
                % (pixels.shape, region)
            )
        self.pixels = pixels

    def apply(self, framebuffer):
        framebuffer.blit(self.region, self.pixels)

    def encode_payload(self):
        return _pack_region(self.region) + self.pixels.tobytes()

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        expected = region.w * region.h * 4
        raw = data[off : off + expected]
        if len(raw) != expected:
            raise DisplayError("truncated RAW payload")
        pixels = np.frombuffer(raw, dtype=np.uint32).reshape(region.h, region.w)
        return cls(region, pixels)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        new_region = Region(
            int(self.region.x * factor),
            int(self.region.y * factor),
            max(1, int(self.region.w * factor)),
            max(1, int(self.region.h * factor)),
        )
        ys = np.linspace(0, self.region.h - 1, new_region.h).astype(int)
        xs = np.linspace(0, self.region.w - 1, new_region.w).astype(int)
        return RawCmd(new_region, self.pixels[np.ix_(ys, xs)])


class CopyCmd(DisplayCommand):
    """Copy the pixels currently in ``src`` to ``region`` (the destination).

    Used for scrolling and window movement.  The command is cheap to encode
    (two rectangles) but depends on current screen state, so it cannot be
    treated as opaque by the pruning pass and it pins earlier commands.
    """

    TAG = 2
    OPAQUE = False

    __slots__ = ("src",)

    def __init__(self, region, src):
        if (region.w, region.h) != (src.w, src.h):
            raise DisplayError("copy source and destination sizes differ")
        super().__init__(region)
        self.src = src

    def apply(self, framebuffer):
        framebuffer.copy(self.src, self.region)

    def encode_payload(self):
        return _pack_region(self.region) + _pack_region(self.src)

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        src, _ = _unpack_region(data, off)
        return cls(region, src)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        dst = self.region.scaled(factor)
        src = Region(
            int(self.src.x * factor), int(self.src.y * factor), dst.w, dst.h
        )
        return CopyCmd(dst, src)


class SolidFillCmd(DisplayCommand):
    """Fill a region with one solid color (e.g. the desktop background)."""

    TAG = 3
    OPAQUE = True

    __slots__ = ("color",)

    def __init__(self, region, color):
        super().__init__(region)
        self.color = int(color) & 0xFFFFFFFF

    def apply(self, framebuffer):
        framebuffer.fill(self.region, self.color)

    def encode_payload(self):
        return _pack_region(self.region) + struct.pack("<I", self.color)

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        (color,) = struct.unpack_from("<I", data, off)
        return cls(region, color)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        return SolidFillCmd(self.region.scaled(factor), self.color)


class PatternFillCmd(DisplayCommand):
    """Tile a region with a small pattern (window decorations, hatching).

    ``pattern`` is a ``(ph, pw)`` uint32 array, tiled with its (0, 0) texel
    anchored at the region's top-left corner.
    """

    TAG = 4
    OPAQUE = True

    __slots__ = ("pattern",)

    def __init__(self, region, pattern):
        super().__init__(region)
        pattern = np.ascontiguousarray(pattern, dtype=np.uint32)
        if pattern.ndim != 2 or pattern.size == 0:
            raise DisplayError("pattern must be a non-empty 2-D array")
        self.pattern = pattern

    def apply(self, framebuffer):
        framebuffer.pattern_fill(self.region, self.pattern)

    def encode_payload(self):
        ph, pw = self.pattern.shape
        return (
            _pack_region(self.region)
            + struct.pack("<II", ph, pw)
            + self.pattern.tobytes()
        )

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        ph, pw = struct.unpack_from("<II", data, off)
        off += 8
        raw = data[off : off + ph * pw * 4]
        pattern = np.frombuffer(raw, dtype=np.uint32).reshape(ph, pw)
        return cls(region, pattern)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        # The pattern itself is kept at native size; only the region scales.
        return PatternFillCmd(self.region.scaled(factor), self.pattern)


class BitmapCmd(DisplayCommand):
    """Expand a 1-bpp bitmap into foreground/background colors.

    This is how text glyphs travel in THINC.  ``bits`` is a ``(h, w)`` bool
    array; True pixels take ``fg``, False pixels take ``bg``.
    """

    TAG = 5
    OPAQUE = True

    __slots__ = ("bits", "fg", "bg")

    def __init__(self, region, bits, fg, bg):
        super().__init__(region)
        bits = np.ascontiguousarray(bits, dtype=bool)
        if bits.shape != (region.h, region.w):
            raise DisplayError("bitmap shape does not match region")
        self.bits = bits
        self.fg = int(fg) & 0xFFFFFFFF
        self.bg = int(bg) & 0xFFFFFFFF

    def apply(self, framebuffer):
        block = np.where(self.bits, np.uint32(self.fg), np.uint32(self.bg))
        framebuffer.blit(self.region, block)

    def encode_payload(self):
        packed = np.packbits(self.bits, axis=None).tobytes()
        return (
            _pack_region(self.region)
            + struct.pack("<II", self.fg, self.bg)
            + packed
        )

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        fg, bg = struct.unpack_from("<II", data, off)
        off += 8
        nbits = region.w * region.h
        packed = np.frombuffer(data[off:], dtype=np.uint8)
        bits = np.unpackbits(packed, count=nbits).astype(bool)
        return cls(region, bits.reshape(region.h, region.w), fg, bg)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        new_region = Region(
            int(self.region.x * factor),
            int(self.region.y * factor),
            max(1, int(self.region.w * factor)),
            max(1, int(self.region.h * factor)),
        )
        ys = np.linspace(0, self.region.h - 1, new_region.h).astype(int)
        xs = np.linspace(0, self.region.w - 1, new_region.w).astype(int)
        return BitmapCmd(new_region, self.bits[np.ix_(ys, xs)], self.fg, self.bg)


class VideoFrameCmd(DisplayCommand):
    """One video frame in planar YUV 4:2:0 (12 bits per pixel).

    THINC provides a dedicated video primitive so full-screen playback
    needs only one modest command per frame ("it requires only one command
    for each video frame, resulting in 24 commands per second", section 6)
    instead of a 32-bpp RAW covering the screen.  Only the luma plane is
    rasterized into the (RGB) framebuffer; chroma travels in the payload
    for size fidelity.
    """

    TAG = 6
    OPAQUE = True

    __slots__ = ("luma", "chroma")

    def __init__(self, region, luma, chroma=None):
        super().__init__(region)
        luma = np.ascontiguousarray(luma, dtype=np.uint8)
        if luma.shape != (region.h, region.w):
            raise DisplayError("luma plane does not match region")
        self.luma = luma
        expected_chroma = (region.h // 2) * (region.w // 2) * 2
        if chroma is None:
            chroma = bytes(expected_chroma)
        chroma = bytes(chroma)
        if len(chroma) != expected_chroma:
            raise DisplayError("chroma planes have the wrong size")
        self.chroma = chroma

    def apply(self, framebuffer):
        y = self.luma.astype(np.uint32)
        block = y | (y << 8) | (y << 16)
        framebuffer.blit(self.region, block)

    def encode_payload(self):
        return _pack_region(self.region) + self.luma.tobytes() + self.chroma

    @classmethod
    def decode_payload(cls, data):
        region, off = _unpack_region(data)
        nluma = region.w * region.h
        luma = np.frombuffer(
            data[off : off + nluma], dtype=np.uint8
        ).reshape(region.h, region.w)
        chroma = data[off + nluma :]
        return cls(region, luma, chroma)

    def scaled(self, factor):
        if factor == 1.0:
            return self
        new_region = Region(
            int(self.region.x * factor),
            int(self.region.y * factor),
            max(2, int(self.region.w * factor) & ~1),
            max(2, int(self.region.h * factor) & ~1),
        )
        ys = np.linspace(0, self.region.h - 1, new_region.h).astype(int)
        xs = np.linspace(0, self.region.w - 1, new_region.w).astype(int)
        return VideoFrameCmd(new_region, self.luma[np.ix_(ys, xs)])


COMMAND_TYPES = {
    cls.TAG: cls
    for cls in (RawCmd, CopyCmd, SolidFillCmd, PatternFillCmd, BitmapCmd,
                VideoFrameCmd)
}
