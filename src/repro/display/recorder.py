"""Display recorder (section 4.1).

The recorder is a driver sink.  It appends every display command to an
append-only log ("recorded commands specify a particular operation to be
performed on the current contents of the screen") and periodically writes a
full screenshot keyframe, "only if the screen has changed enough since the
previous one".  Screenshots are self-contained independent frames from which
playback can start; commands are dependent frames — the MPEG analogy the
paper draws.

The recorder maintains its *own* framebuffer, reconstructed purely from the
commands it receives.  This keeps it honest: if the driver's scaling or the
codec ever corrupted the stream, the recorder's screenshots would diverge
from the server's screen and the round-trip tests would fail.
"""

import struct
from dataclasses import dataclass

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.faults import InjectedCrash, resolve_faults
from repro.common.serial import RecordWriter, scan_valid_prefix
from repro.common.telemetry import resolve_telemetry
from repro.common.units import seconds
from repro.display.commands import Region
from repro.display.framebuffer import Framebuffer
from repro.display.protocol import SCREENSHOT_TAG, CommandLogWriter
from repro.display.timeline import TimelineEntry, TimelineIndex

STREAM_KIND_SCREENSHOTS = 0x0D16

FP_LOG_APPEND = "recorder.log.append"
FP_SHOT_MID_WRITE = "recorder.screenshot.mid_write"


@dataclass
class RecorderConfig:
    """Tunable recording quality knobs (section 2: "users can choose to
    trade-off record quality versus storage consumption")."""

    screenshot_interval_us: int = seconds(600)
    """Minimum simulated time between keyframes (default 10 minutes)."""

    screenshot_min_change_fraction: float = 0.02
    """Skip the keyframe unless at least this fraction of the screen
    changed since the previous one."""


@dataclass
class DisplayRecord:
    """The finished record: everything playback needs."""

    log_bytes: bytes
    screenshot_bytes: bytes
    timeline: TimelineIndex
    width: int
    height: int
    start_us: int
    end_us: int
    command_count: int

    @property
    def duration_us(self):
        return self.end_us - self.start_us

    @property
    def total_bytes(self):
        return (
            len(self.log_bytes)
            + len(self.screenshot_bytes)
            + self.timeline.nbytes
        )


class DisplayRecorder:
    """Driver sink that produces a :class:`DisplayRecord`."""

    def __init__(self, width, height, clock=None, costs=DEFAULT_COSTS,
                 config=None, telemetry=None, faults=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.config = config if config is not None else RecorderConfig()
        self.telemetry = resolve_telemetry(telemetry)
        self.faults = resolve_faults(faults)
        metrics = self.telemetry.metrics
        self._m_commands = metrics.counter("display.commands_logged")
        self._m_log_bytes = metrics.counter("display.log_bytes")
        self._m_keyframes = metrics.counter("display.keyframes")
        self._m_keyframe_bytes = metrics.counter("display.keyframe_bytes")
        self._m_torn_dropped = metrics.counter("display.torn_records_dropped")
        self.framebuffer = Framebuffer(width, height)
        self._log = CommandLogWriter()
        self._shots = RecordWriter(kind=STREAM_KIND_SCREENSHOTS)
        self.timeline = TimelineIndex()
        # "changed enough" tracks the bounding box of changes since the
        # previous keyframe, so a blinking cursor or ticking clock never
        # triggers one no matter how long it blinks.
        self._changed_bounds = Region(0, 0, 0, 0)
        self._last_shot_us = None
        self._start_us = self.clock.now_us
        self._end_us = self.clock.now_us
        # The initial keyframe provides "the initial state of the display
        # that subsequent recorded commands modify" (section 4.1).
        self._take_screenshot(force=True)

    # ------------------------------------------------------------------ #
    # Sink interface

    def handle_commands(self, commands, timestamp_us):
        for command in commands:
            try:
                # A transient fault raises here, before the command is
                # applied or logged: the command is simply lost in
                # transit and framebuffer and log stay consistent.
                self.faults.check(FP_LOG_APPEND)
            except InjectedCrash:
                # Crash mid-append: a torn TLV record at the log tail.
                self._log.append_torn(command, timestamp_us)
                raise
            command.apply(self.framebuffer)
            self._log.append(command, timestamp_us)
            self._m_commands.inc()
            self._m_log_bytes.inc(command.payload_size)
            self.clock.advance_us(
                self.costs.display_record_cmd_us
                + command.payload_size * self.costs.display_log_us_per_byte
            )
            self._changed_bounds = self._changed_bounds.union_bounds(
                command.region
            )
        self._end_us = max(self._end_us, timestamp_us)
        self._maybe_screenshot(timestamp_us)

    # ------------------------------------------------------------------ #
    # Screenshots

    def _maybe_screenshot(self, now_us):
        due = (
            self._last_shot_us is None
            or now_us - self._last_shot_us >= self.config.screenshot_interval_us
        )
        changed_fraction = (
            self._changed_bounds.area / self.framebuffer.bounds.area
        )
        if due and changed_fraction >= self.config.screenshot_min_change_fraction:
            self._take_screenshot()

    def _take_screenshot(self, force=False):
        """Write a keyframe + timeline entry.  ``force`` bypasses the
        change-fraction gate (used for the initial frame)."""
        now_us = self.clock.now_us
        snapshot = self.framebuffer.snapshot_bytes()
        payload = struct.pack("<Q", now_us) + snapshot
        try:
            # A transient fault skips this keyframe (raises before any
            # write); a later screenshot resynchronizes the stream.
            self.faults.check(FP_SHOT_MID_WRITE)
        except InjectedCrash:
            # Crash mid-write: a torn keyframe with no timeline entry.
            self._shots.write_torn(SCREENSHOT_TAG, payload)
            raise
        shot_offset = self._shots.write(SCREENSHOT_TAG, payload)
        self._m_keyframes.inc()
        self._m_keyframe_bytes.inc(len(snapshot))
        self.clock.advance_us(len(snapshot) * self.costs.screenshot_us_per_byte)
        self.timeline.append(
            TimelineEntry(
                time_us=now_us,
                screenshot_offset=shot_offset,
                command_offset=self._log.bytes_written,
            )
        )
        self._last_shot_us = now_us
        self._changed_bounds = Region(0, 0, 0, 0)

    def force_screenshot(self):
        """Public hook: take a keyframe now regardless of thresholds."""
        self._take_screenshot(force=True)

    # ------------------------------------------------------------------ #
    # Crash recovery

    def recover(self):
        """Post-crash repair of the display streams.

        Scans both streams from the tail, truncates torn records,
        recounts commands, drops timeline entries whose offsets dangle
        past the surviving data (torn writes only ever invalidate the
        tail), and takes a fresh keyframe so continued recording is
        anchored to a clean, self-contained frame.
        """
        log_dropped = self._log.recover()
        shot_end, shot_records = scan_valid_prefix(
            self._shots.getvalue(), expect_kind=STREAM_KIND_SCREENSHOTS)
        shots_dropped = self._shots.truncate_to(shot_end)
        valid_offsets = {offset for _tag, _payload, offset in shot_records}
        log_end = self._log.bytes_written
        dangling = self.timeline.truncate_tail(
            lambda entry: entry.screenshot_offset in valid_offsets
            and entry.command_offset <= log_end
        )
        torn_records = (1 if log_dropped else 0) + (1 if shots_dropped else 0)
        self._m_torn_dropped.inc(torn_records)
        self._last_shot_us = self.timeline.last_time_us
        # The recovery scan reads both stream tails once.
        self.clock.advance_us(self.costs.disk_read_us(
            max(log_dropped + shots_dropped, 1), sequential=True))
        # Re-anchor the stream: whatever the torn tail lost, playback of
        # everything from here on starts at a clean keyframe.
        self._changed_bounds = self.framebuffer.bounds
        self._take_screenshot(force=True)
        return {
            "log_bytes_dropped": log_dropped,
            "screenshot_bytes_dropped": shots_dropped,
            "timeline_entries_dropped": len(dangling),
            "command_count": self._log.command_count,
        }

    # ------------------------------------------------------------------ #
    # Accounting / output

    @property
    def log_nbytes(self):
        return self._log.bytes_written

    @property
    def screenshot_nbytes(self):
        return self._shots.bytes_written

    @property
    def total_nbytes(self):
        return self.log_nbytes + self.screenshot_nbytes + self.timeline.nbytes

    @property
    def command_count(self):
        return self._log.command_count

    def finalize(self):
        """Close the record and return the playback-ready bundle."""
        return DisplayRecord(
            log_bytes=self._log.getvalue(),
            screenshot_bytes=self._shots.getvalue(),
            timeline=self.timeline,
            width=self.framebuffer.width,
            height=self.framebuffer.height,
            start_us=self._start_us,
            end_us=self._end_us,
            command_count=self._log.command_count,
        )
