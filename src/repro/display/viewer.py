"""Stateless display viewer (client).

"All persistent display state is maintained by the display server; clients
are simple and stateless" (section 3).  The viewer applies the commands it
receives to a local framebuffer; it never talks back to the server except to
forward input events.  Tests use the viewer to verify that the command
stream alone reconstructs the server's screen bit-for-bit.

The viewer can run at a reduced resolution (e.g. a PDA-sized screen) while
the driver records at full resolution — the driver scales per sink, so a
viewer attached with ``scale=0.25`` coexists with a full-fidelity recorder.
"""

from repro.common.costs import DEFAULT_COSTS
from repro.display.framebuffer import Framebuffer


class Viewer:
    """A display sink that mirrors the desktop into its own framebuffer."""

    def __init__(self, width, height, clock=None, costs=DEFAULT_COSTS):
        self.framebuffer = Framebuffer(width, height)
        self.clock = clock
        self.costs = costs
        self.commands_received = 0
        self.last_update_us = None
        self._paused = False
        self._held = []  # command batches buffered while paused

    def handle_commands(self, commands, timestamp_us):
        """Sink interface: rasterize the batch into the local framebuffer.

        While paused, batches are held and applied on resume — "pause the
        display during live execution to view an item of interest"
        (section 2) freezes the *viewer*, never the desktop.
        """
        if self._paused:
            self._held.append((list(commands), timestamp_us))
            return
        self._apply(commands, timestamp_us)

    def _apply(self, commands, timestamp_us):
        for command in commands:
            command.apply(self.framebuffer)
            if self.clock is not None:
                # The viewer competes for the same CPU as the server when
                # they are co-located (the web benchmark in section 6 shows
                # this contention).
                self.clock.advance_us(
                    self.costs.display_cmd_base_us
                    + command.payload_size
                    * self.costs.display_us_per_payload_byte
                )
        self.commands_received += len(commands)
        self.last_update_us = timestamp_us

    # ------------------------------------------------------------------ #
    # Pause / resume (the slider's pause button)

    @property
    def paused(self):
        return self._paused

    def pause(self):
        """Freeze the viewer; the live session keeps running."""
        self._paused = True

    def resume(self):
        """Catch up on everything that happened while paused."""
        self._paused = False
        held, self._held = self._held, []
        for commands, timestamp_us in held:
            self._apply(commands, timestamp_us)
        return len(held)

    def checksum(self):
        return self.framebuffer.checksum()
