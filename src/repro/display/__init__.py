"""Virtual display subsystem (paper section 4).

DejaView's display stack is based on THINC: applications draw through a
virtual display *driver* which translates drawing into a small set of
low-level display protocol commands.  The driver duplicates the command
stream to any number of sinks — the live viewer and the display recorder —
and keeps the authoritative framebuffer ("all persistent display state is
maintained by the display server; clients are simple and stateless").

Modules
-------
commands
    The THINC command set (RAW, COPY, SFILL, PFILL, BITMAP) and screen
    regions.
framebuffer
    A numpy-backed pixel framebuffer; replay correctness is checked
    bit-for-bit against it.
protocol
    Wire/log codec for commands (TLV payloads).
driver
    The virtual display driver: command queueing and merging, screen
    scaling, sink fan-out.
viewer
    A stateless client that reconstructs the display from the command
    stream.
recorder
    Append-only command log + periodic screenshots + timeline index
    (section 4.1).
timeline
    Fixed-size-entry timeline file with binary search (section 4.1).
playback
    Seek / play / fast-forward / rewind with command pruning
    (section 4.3).
"""

from repro.display.commands import (
    BitmapCmd,
    CopyCmd,
    DisplayCommand,
    PatternFillCmd,
    RawCmd,
    Region,
    SolidFillCmd,
    VideoFrameCmd,
)
from repro.display.driver import VirtualDisplayDriver
from repro.display.framebuffer import Framebuffer
from repro.display.playback import PlaybackEngine, PlaybackStats, SubstreamPlayer
from repro.display.recorder import DisplayRecorder, RecorderConfig
from repro.display.screencast import ScreencastRecorder
from repro.display.timeline import TimelineEntry, TimelineIndex
from repro.display.viewer import Viewer

__all__ = [
    "Region",
    "DisplayCommand",
    "RawCmd",
    "CopyCmd",
    "SolidFillCmd",
    "PatternFillCmd",
    "BitmapCmd",
    "VideoFrameCmd",
    "Framebuffer",
    "VirtualDisplayDriver",
    "Viewer",
    "DisplayRecorder",
    "RecorderConfig",
    "ScreencastRecorder",
    "TimelineIndex",
    "TimelineEntry",
    "PlaybackEngine",
    "PlaybackStats",
    "SubstreamPlayer",
]
